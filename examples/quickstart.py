"""Quickstart: robust vs nominal physical design via the ``repro.api`` facade.

One ``RunConfig`` describes the whole run — schema scale, workload, seed,
and the parallelism knob — and one ``RobustDesignSession`` owns the stack.
The session designs with CliffGuard on last month's queries, then the
script compares that design against the nominal (DBD-style) one on the
*next* month — the scenario from the paper's introduction.

Run:  python examples/quickstart.py
      REPRO_BACKEND=process REPRO_JOBS=4 python examples/quickstart.py
"""

from repro import RobustDesignSession, RunConfig


def main() -> None:
    # 1. Describe the run.  backend="auto" honors REPRO_BACKEND/REPRO_JOBS;
    #    pass backend="process", jobs=4 to pin the parallel backend in code.
    config = RunConfig(
        workload="R1",
        days=196,
        queries_per_day=15,
        n_samples=12,
        seed=42,
    )

    with RobustDesignSession(config) as session:
        schema = session.context.schema
        print(f"schema: {len(schema.tables)} tables, {schema.total_columns} columns")
        queries = session.context.trace("R1")
        windows = session.context.trace_windows("R1")
        print(f"trace: {len(queries)} queries in {len(windows)} windows")
        print(f"robustness knob Γ = {session.gamma:.5f} (average past drift)")

        # 2. Design on last month (the session restricts the sampler's
        #    perturbation pool to the past), evaluate on this month.
        train, test = windows[-2], windows[-1]
        outcome = session.design(train)
        nominal_design = session.nominal.design(train)

        report = outcome.report
        print(
            f"CliffGuard ran {report.iterations} iterations on the "
            f"{report.backend} backend ({report.eval_wall_seconds:.1f}s costing)"
        )

        print("\n                     next-month avg    next-month max   structures")
        for label, design in (
            ("nominal", nominal_design),
            ("CliffGuard", outcome.design),
        ):
            cost = session.adapter.workload_cost(test, design)
            print(
                f"{label:>12s} design:   {cost.average_ms:9.1f} ms    "
                f"{cost.max_ms:10.1f} ms   {len(session.adapter.structures(design)):6d}"
            )

        no_design = session.adapter.workload_cost(
            test, session.adapter.empty_design()
        )
        print(
            f"{'no':>12s} design:   {no_design.average_ms:9.1f} ms    "
            f"{no_design.max_ms:10.1f} ms        0"
        )


if __name__ == "__main__":
    main()
