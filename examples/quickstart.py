"""Quickstart: robust vs nominal physical design in ~60 lines.

Builds the star schema, generates a drifting workload, designs with the
nominal (DBD-style) designer and with CliffGuard, then compares both
designs on the *next* month's queries — the scenario from the paper's
introduction.

Run:  python examples/quickstart.py
"""

from repro import (
    CliffGuard,
    ColumnarAdapter,
    ColumnarCostModel,
    ColumnarNominalDesigner,
    NeighborhoodSampler,
    TraceGenerator,
    WorkloadDistance,
    build_star_schema,
    default_budget_bytes,
    gamma_from_history,
    r1_profile,
    split_windows,
)
from repro.core.knob import drift_history


def main() -> None:
    # 1. A wide multi-fact star schema (the substrate the engines share).
    schema, roles = build_star_schema()
    print(f"schema: {len(schema.tables)} tables, {schema.total_columns} columns")

    # 2. Six months of drifting OLAP queries, split into 28-day windows.
    trace = TraceGenerator(schema, roles, r1_profile(queries_per_day=15), seed=42)
    queries = trace.generate(days=196)
    windows = split_windows(queries, 28)
    print(f"trace: {len(queries)} queries in {len(windows)} windows")

    # 3. The engine stack: cost model + adapter + nominal designer.
    adapter = ColumnarAdapter(
        ColumnarCostModel(schema), default_budget_bytes(schema, 0.5)
    )
    nominal = ColumnarNominalDesigner(adapter)

    # 4. Pick Γ from observed drift (the paper's simplest knob strategy),
    #    and build the robust designer around the nominal one.
    distance = WorkloadDistance(schema.total_columns)
    gamma = gamma_from_history(drift_history(windows, distance), "avg")
    print(f"robustness knob Γ = {gamma:.5f} (average past drift)")

    train, test = windows[-2], windows[-1]
    sampler = NeighborhoodSampler(
        distance,
        schema,
        pool=[q for q in queries if q.timestamp < train.span_days[0]],
        seed=7,
    )
    robust = CliffGuard(nominal, adapter, sampler, gamma, n_samples=12)

    # 5. Design on last month, evaluate on this month.
    nominal_design = nominal.design(train)
    robust_design = robust.design(train)

    print("\n                     next-month avg    next-month max   structures")
    for label, design in (("nominal", nominal_design), ("CliffGuard", robust_design)):
        report = adapter.workload_cost(test, design)
        print(
            f"{label:>12s} design:   {report.average_ms:9.1f} ms    "
            f"{report.max_ms:10.1f} ms   {len(adapter.structures(design)):6d}"
        )

    no_design = adapter.workload_cost(test, adapter.empty_design())
    print(
        f"{'no':>12s} design:   {no_design.average_ms:9.1f} ms    "
        f"{no_design.max_ms:10.1f} ms        0"
    )


if __name__ == "__main__":
    main()
