"""Drift-aware operations: monitor the workload, re-design on alarm.

Combines the streaming :class:`WorkloadMonitor` (the paper's suggested
"workload monitoring" application of δ) with the re-design scheduler: the
database is re-designed only when the observed workload has drifted past
the robustness knob Γ the current design was built with — instead of on a
blind monthly timer.

Run:  python examples/drift_monitoring.py
"""

from repro import (
    ColumnarAdapter,
    ColumnarCostModel,
    ColumnarNominalDesigner,
    TraceGenerator,
    WorkloadDistance,
    build_star_schema,
    default_budget_bytes,
    r1_profile,
    split_windows,
)
from repro.harness.scheduler import (
    DriftTriggeredPolicy,
    PeriodicPolicy,
    scheduled_replay,
)
from repro.workload.monitor import WorkloadMonitor


def main() -> None:
    schema, roles = build_star_schema()
    trace = TraceGenerator(schema, roles, r1_profile(queries_per_day=15), seed=31)
    queries = trace.generate(days=280)
    windows = split_windows(queries, 28)
    distance = WorkloadDistance(schema.total_columns)

    # 1. Stream the trace through the monitor and show the alarms.
    drift = [distance(windows[i], windows[i + 1]) for i in range(len(windows) - 1)]
    threshold = sum(drift) / len(drift)
    monitor = WorkloadMonitor(distance, threshold=threshold, window_days=28)
    warmup = [q for q in queries if q.timestamp < 28]
    monitor.observe_many(warmup)
    monitor.rebase()
    alarms = monitor.observe_many(q for q in queries if q.timestamp >= 28)
    print(f"observed {len(queries)} queries; drift threshold δ > {threshold:.5f}")
    for alarm in alarms[:6]:
        print(f"  day {alarm.at_day:6.1f}: δ = {alarm.distance:.5f}  → re-design advised")
    if len(alarms) > 6:
        print(f"  … and {len(alarms) - 6} more alarms")

    # 2. Compare re-design policies end to end.
    adapter = ColumnarAdapter(
        ColumnarCostModel(schema), default_budget_bytes(schema, 0.5)
    )
    nominal = ColumnarNominalDesigner(adapter)
    print("\nreplaying the trace under three re-design policies…")
    policies = {
        "monthly (paper practice)": PeriodicPolicy(every=1),
        "quarterly": PeriodicPolicy(every=3),
        "drift-triggered": DriftTriggeredPolicy(distance, threshold),
    }
    for label, policy in policies.items():
        outcome = scheduled_replay(windows, nominal, adapter, policy)
        print(
            f"  {label:26s}: avg {outcome.mean_average_ms:8.1f} ms over "
            f"{len(outcome.per_window_avg_ms)} windows, "
            f"{outcome.redesign_count} re-designs, "
            f"deployment {outcome.total_deployment_seconds / 3600:.1f} h"
        )
    print(
        "\nReading: the drift-triggered policy spends deployment hours only"
        " when the workload actually moved, landing between the monthly"
        " and quarterly timers on both cost and latency."
    )


if __name__ == "__main__":
    main()
