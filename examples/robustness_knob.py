"""The robustness knob Γ: trading nominal optimality for robustness.

Sweeps Γ from 0 (purely nominal) to several multiples of the observed
drift and shows how CliffGuard's next-window latency responds — the
Section 6.5 experiment (Figures 8–9) as a runnable script, driven through
the ``repro.api`` facade.  Each Γ is an independent replay, so the sweep
fans out across workers when a parallel backend is selected.

Run:  python examples/robustness_knob.py
      REPRO_BACKEND=process REPRO_JOBS=4 python examples/robustness_knob.py
"""

from repro import RobustDesignSession, RunConfig
from repro.harness.reporting import format_series, format_table


def main() -> None:
    config = RunConfig(
        workload="R1",
        days=196,
        queries_per_day=15,
        n_samples=10,
        max_transitions=1,
        skip_transitions=4,
    )
    with RobustDesignSession(config) as session:
        base_gamma = session.gamma
        print(f"observed average drift between windows: δ ≈ {base_gamma:.5f}")

        gammas = [0.0, 0.5 * base_gamma, base_gamma, 3 * base_gamma, 8 * base_gamma]
        sweep = session.sweep(gammas=gammas)
        nominal = session.replay(which=["ExistingDesigner"]).run("ExistingDesigner")

    print()
    print(
        format_table(
            ["Γ (× observed drift)", "Avg latency (ms)", "Max latency (ms)"],
            [
                [f"{gamma / base_gamma:.1f}x" if base_gamma else "0", avg, mx]
                for gamma, (avg, mx) in sorted(sweep.items())
            ]
            + [["nominal designer", nominal.mean_average_ms, nominal.mean_max_ms]],
            title="Effect of the robustness knob (workload R1)",
        )
    )
    print()
    print(
        format_series(
            "Γ multiple",
            "avg latency",
            [
                (f"{gamma / base_gamma:.1f}x", avg)
                for gamma, (avg, mx) in sorted(sweep.items())
            ],
        )
    )
    print()
    print(
        "Reading: Γ = 0 reproduces the nominal design; moderate Γ buys"
        " robustness against drift; an extreme Γ is conservative but —"
        " per the paper's Section 6.5 — never much worse than nominal,"
        " because the moved workload always keeps the original queries."
    )


if __name__ == "__main__":
    main()
