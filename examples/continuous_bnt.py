"""The geometry of robust optimization: Algorithm 1 on a 2-D surface.

Reproduces the story of the paper's Figures 2–4 on a closed-form cost
surface: the nominal optimum sits at the bottom of a valley next to a
cliff; the robust optimum backs the whole Γ-disc away from the cliff.
Prints the descent trajectory and an ASCII rendering of the surface.

Run:  python examples/continuous_bnt.py
"""

import numpy as np

from repro.core.bnt import bnt_minimize, find_worst_neighbors


def cliff_surface(x: np.ndarray) -> float:
    """A bowl with a steep wall to the right of x0 = 0.3 (Figure 2's D1)."""
    a, b = float(x[0]), float(x[1])
    return 0.5 * a * a + 0.5 * b * b + 40.0 * max(0.0, a - 0.3) ** 2


def render_surface() -> str:
    rows = []
    for b in np.linspace(1.5, -1.5, 13):
        row = []
        for a in np.linspace(-2.0, 2.0, 41):
            value = cliff_surface(np.array([a, b]))
            shades = " .:-=+*#%@"
            row.append(shades[min(int(value / 1.2), len(shades) - 1)])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    gamma = 0.5
    print("cost surface (darker = more expensive; cliff on the right):\n")
    print(render_surface())

    nominal = np.zeros(2)  # the bowl's nominal optimum
    rng = np.random.default_rng(0)
    _, nominal_worst = find_worst_neighbors(cliff_surface, nominal, gamma, rng)
    print(f"\nnominal optimum x = (0, 0): cost {cliff_surface(nominal):.3f}, "
          f"worst case within Γ={gamma}: {nominal_worst:.3f}")

    result = bnt_minimize(cliff_surface, np.array([0.55, 0.8]), gamma=gamma, seed=1)
    print(f"\nBNT robust search from (0.55, 0.8):")
    for i, (x, worst) in enumerate(zip(result.history, result.worst_case_history)):
        print(f"  step {i:2d}: x = ({x[0]: .3f}, {x[1]: .3f})   worst-case = {worst:8.3f}")
    print(
        f"\nconverged={result.converged} after {result.iterations} iterations: "
        f"x* = ({result.x[0]:.3f}, {result.x[1]:.3f}), worst-case {result.worst_case:.3f}"
    )
    print(
        "\nReading: the robust optimum sits to the LEFT of the nominal one —"
        " far enough that the entire Γ-disc clears the cliff, exactly the"
        " D1-vs-D2 trade of the paper's Figure 2."
    )


if __name__ == "__main__":
    main()
