"""Retail analytics under drift: the full designer zoo over six months.

Replays a drifting retail workload window by window, running all six
designers of the paper's Section 6.1 — NoDesign, the oracle
FutureKnowingDesigner, the nominal ExistingDesigner, the MajorityVote and
OptimalLocalSearch heuristics, and CliffGuard — and prints the Figure-7
style comparison.

Run:  python examples/retail_drift.py            (fast, ~2-4 min)
      python examples/retail_drift.py --full     (longer trace)
"""

import sys

from repro import RobustDesignSession, RunConfig
from repro.designers import registry
from repro.harness.reporting import format_table


def main() -> None:
    full = "--full" in sys.argv
    config = RunConfig(
        workload="R1",
        engine="columnar",
        days=364 if full else 196,
        queries_per_day=25 if full else 15,
        n_samples=16 if full else 10,
        max_transitions=None if full else 1,
        skip_transitions=4,
    )
    print(
        f"replaying {config.days} days of retail analytics "
        f"({config.queries_per_day} queries/day, 28-day windows)…"
    )

    # The per-designer replays fan out over the backend selected by
    # REPRO_BACKEND/REPRO_JOBS (backend="auto"); results are bit-identical
    # to the serial run at any worker count.
    with RobustDesignSession(config) as session:
        outcome = session.replay()

    print()
    print(
        format_table(
            ["Designer", "Avg latency (ms)", "Max latency (ms)", "Design time (s)"],
            [
                [
                    name,
                    outcome.run(name).mean_average_ms,
                    outcome.run(name).mean_max_ms,
                    outcome.run(name).mean_design_seconds,
                ]
                for name in registry.names()
            ],
            title="Designer comparison on the drifting retail workload (R1)",
        )
    )

    avg_speedup, max_speedup = outcome.speedup("ExistingDesigner", "CliffGuard")
    oracle_gap = (
        outcome.run("CliffGuard").mean_average_ms
        / outcome.run("FutureKnowingDesigner").mean_average_ms
    )
    print()
    print(f"CliffGuard vs nominal designer: {avg_speedup:.2f}x avg, {max_speedup:.2f}x max")
    print(f"CliffGuard is {oracle_gap:.1f}x away from the future-knowing oracle")


if __name__ == "__main__":
    main()
