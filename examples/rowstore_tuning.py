"""DBMS-X-style tuning: CliffGuard wrapped around an index/view advisor.

CliffGuard treats the designer as a black box, so the identical wrapper
that robustifies the columnar projection designer also robustifies a
row-store advisor recommending composite indices and materialized views —
the paper's DBMS-X experiment (Figure 10).

Run:  python examples/rowstore_tuning.py
"""

from repro import (
    CliffGuard,
    NeighborhoodSampler,
    RowstoreAdapter,
    RowstoreCostModel,
    RowstoreNominalDesigner,
    TraceGenerator,
    WorkloadDistance,
    build_star_schema,
    default_budget_bytes,
    gamma_from_history,
    r1_profile,
    split_windows,
)
from repro.core.knob import drift_history
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView


def main() -> None:
    schema, roles = build_star_schema()
    trace = TraceGenerator(schema, roles, r1_profile(queries_per_day=15), seed=11)
    queries = trace.generate(days=196)
    windows = split_windows(queries, 28)

    adapter = RowstoreAdapter(
        RowstoreCostModel(schema), default_budget_bytes(schema, 0.5)
    )
    advisor = RowstoreNominalDesigner(adapter)

    distance = WorkloadDistance(schema.total_columns)
    gamma = gamma_from_history(drift_history(windows, distance), "avg")
    train, test = windows[-2], windows[-1]
    sampler = NeighborhoodSampler(
        distance,
        schema,
        pool=[q for q in queries if q.timestamp < train.span_days[0]],
        seed=3,
    )
    robust = CliffGuard(advisor, adapter, sampler, gamma, n_samples=10)

    print("running the nominal advisor and CliffGuard…")
    nominal_design = advisor.design(train)
    robust_design = robust.design(train)

    def describe(design, label):
        indices = [s for s in adapter.structures(design) if isinstance(s, Index)]
        views = [s for s in adapter.structures(design) if isinstance(s, MaterializedView)]
        report = adapter.workload_cost(test, design)
        print(
            f"{label:>12s}: {len(indices):3d} indices, {len(views):3d} views | "
            f"next-month avg {report.average_ms:8.1f} ms, max {report.max_ms:9.1f} ms"
        )
        return indices, views

    describe(nominal_design, "advisor")
    indices, views = describe(robust_design, "CliffGuard")

    print("\nsample of CliffGuard's recommended DDL:")
    for structure in (indices[:3] + views[:2]):
        print("  " + structure.to_sql())

    empty = adapter.workload_cost(test, adapter.empty_design())
    print(f"\n(no design: avg {empty.average_ms:.1f} ms, max {empty.max_ms:.1f} ms)")


if __name__ == "__main__":
    main()
