"""A third design space: stratified samples for approximate querying.

The paper's Section 2 lists samples (BlinkDB-style) as a physical-design
object alongside projections and indices.  Because CliffGuard treats the
designer as a black box, the identical wrapper robustifies a
stratified-sample designer too: this script designs samples for one month
and shows how nominal vs robust sample sets fare on the next month.

Run:  python examples/approximate_designer.py
"""

from repro import (
    CliffGuard,
    NeighborhoodSampler,
    TraceGenerator,
    WorkloadDistance,
    build_star_schema,
    default_budget_bytes,
    gamma_from_history,
    r1_profile,
    split_windows,
)
from repro.core.knob import drift_history
from repro.designers.base import SamplesAdapter
from repro.designers.samples_nominal import SamplesNominalDesigner
from repro.samples.optimizer import SamplesCostModel


def main() -> None:
    schema, roles = build_star_schema()
    trace = TraceGenerator(schema, roles, r1_profile(queries_per_day=15), seed=23)
    queries = trace.generate(days=196)
    windows = split_windows(queries, 28)

    # Samples are small by construction: a 10%-of-data storage budget.
    adapter = SamplesAdapter(
        SamplesCostModel(schema), default_budget_bytes(schema, 0.10)
    )
    nominal = SamplesNominalDesigner(adapter)

    distance = WorkloadDistance(schema.total_columns)
    gamma = gamma_from_history(drift_history(windows, distance), "avg")
    train, test = windows[-2], windows[-1]
    sampler = NeighborhoodSampler(
        distance,
        schema,
        pool=[q for q in queries if q.timestamp < train.span_days[0]],
        seed=9,
    )
    robust = CliffGuard(nominal, adapter, sampler, gamma, n_samples=10)

    print("designing stratified-sample sets…")
    nominal_design = nominal.design(train)
    robust_design = robust.design(train)

    for label, design in (("nominal", nominal_design), ("CliffGuard", robust_design)):
        report = adapter.workload_cost(test, design)
        print(
            f"{label:>12s}: {len(adapter.structures(design)):3d} samples "
            f"({adapter.design_price(design) / 1e9:.2f} GB) | "
            f"next-month avg {report.average_ms:9.1f} ms"
        )

    exact = adapter.workload_cost(test, adapter.empty_design())
    print(f"{'exact only':>12s}: avg {exact.average_ms:9.1f} ms (no samples)")

    print("\nsample DDL from CliffGuard's design:")
    for structure in adapter.structures(robust_design)[:4]:
        stats = adapter.cost_model.statistics[structure.table]
        print(
            f"  {structure.to_sql()}"
            f"   -- ~{structure.relative_error(stats) * 100:.0f}% rel. error"
        )


if __name__ == "__main__":
    main()
