"""CliffGuard: a principled framework for finding robust database designs.

A full reproduction of Mozafari, Goh, Yoon (SIGMOD 2015), including the
substrates the paper ran on: a columnar engine with Vertica-style
projections, a DBMS-X-style row store with indices and materialized views,
nominal designers for both, the workload distance metrics and
Γ-neighborhood sampler, the CliffGuard robust designer, the baseline
designers of Section 6.1, and a replay harness regenerating every table
and figure of the evaluation.

Quick start — the supported entry point is the :mod:`repro.api` facade::

    from repro import RobustDesignSession, RunConfig

    with RobustDesignSession(RunConfig(workload="R1", backend="process", jobs=4)) as s:
        outcome = s.design()       # robust design for the latest window
        comparison = s.replay()    # Figure 7: the designer comparison
        sweep = s.sweep()          # Figures 8-9: the robustness knob

Online tuning (design-as-a-service) runs through the same facade: pair
the batch ``RunConfig`` with a streaming ``ServeConfig`` and the session
becomes a crash-restartable daemon (docs/serving.md)::

    outcome = repro.serve_session(workload="R1").serve(max_queries=500)

The building blocks remain importable for hand-wired setups::

    from repro import (
        build_star_schema, r1_profile, TraceGenerator, split_windows,
        ColumnarCostModel, ColumnarAdapter, ColumnarNominalDesigner,
        WorkloadDistance, NeighborhoodSampler, CliffGuard,
    )

    schema, roles = build_star_schema()
    trace = TraceGenerator(schema, roles, r1_profile(), seed=1).generate(90)
    windows = split_windows(trace, 28)

    adapter = ColumnarAdapter(ColumnarCostModel(schema))
    nominal = ColumnarNominalDesigner(adapter)
    distance = WorkloadDistance(schema.total_columns)
    sampler = NeighborhoodSampler(distance, schema)

    robust = CliffGuard(nominal, adapter, sampler, gamma=0.001)
    design = robust.design(windows[0])
"""

from repro.catalog import Column, ColumnType, ForeignKey, Schema, Table
from repro.core import CliffGuard, bnt_minimize, gamma_from_history, move_workload
from repro.designers import (
    ColumnarAdapter,
    ColumnarNominalDesigner,
    FutureKnowingDesigner,
    MajorityVoteDesigner,
    NoDesign,
    OptimalLocalSearchDesigner,
    RowstoreAdapter,
    RowstoreNominalDesigner,
    SamplesAdapter,
    SamplesNominalDesigner,
    default_budget_bytes,
)
from repro.engine import (
    ColumnarCostModel,
    ColumnarDatabase,
    ColumnarExecutor,
    PhysicalDesign,
    Projection,
    SortColumn,
)
from repro.harness import replay
from repro.obs import (
    MetricsRegistry,
    RunTracer,
    get_metrics,
    set_tracer,
    trace_to,
    tracer,
)
from repro.rowstore import (
    Index,
    MaterializedView,
    RowstoreCostModel,
    RowstoreDatabase,
    RowstoreDesign,
    RowstoreExecutor,
)
from repro.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.samples import SampleDesign, SamplesCostModel, StratifiedSample
from repro.workload import (
    NeighborhoodSampler,
    TraceGenerator,
    Workload,
    WorkloadDistance,
    WorkloadQuery,
    build_star_schema,
    delta_euclidean,
    ecommerce_profile,
    htap_profile,
    oltp_profile,
    r1_profile,
    s1_profile,
    s2_profile,
    split_windows,
)

from repro.serve import (
    QuerySource,
    QueueSource,
    ServeConfig,
    SocketSource,
    TraceSource,
)

# The facade imports the experiment harness, which imports the designer and
# engine layers above — so it must come last.
from repro.api import (
    DesignOutcome,
    RobustDesignSession,
    RunConfig,
    ServeOutcome,
    serve_session,
)

__version__ = "1.3.0"

__all__ = [
    "CliffGuard",
    "DesignOutcome",
    "ExecutionBackend",
    "ProcessBackend",
    "QuerySource",
    "QueueSource",
    "RobustDesignSession",
    "RunConfig",
    "SerialBackend",
    "ServeConfig",
    "ServeOutcome",
    "SocketSource",
    "TraceSource",
    "ThreadBackend",
    "Column",
    "ColumnType",
    "ColumnarAdapter",
    "ColumnarCostModel",
    "ColumnarDatabase",
    "ColumnarExecutor",
    "ColumnarNominalDesigner",
    "ForeignKey",
    "FutureKnowingDesigner",
    "Index",
    "MajorityVoteDesigner",
    "MaterializedView",
    "MetricsRegistry",
    "NeighborhoodSampler",
    "NoDesign",
    "OptimalLocalSearchDesigner",
    "PhysicalDesign",
    "Projection",
    "RowstoreAdapter",
    "RowstoreCostModel",
    "RowstoreDatabase",
    "RowstoreDesign",
    "RowstoreExecutor",
    "RowstoreNominalDesigner",
    "RunTracer",
    "SampleDesign",
    "SamplesAdapter",
    "SamplesCostModel",
    "SamplesNominalDesigner",
    "Schema",
    "StratifiedSample",
    "SortColumn",
    "Table",
    "TraceGenerator",
    "Workload",
    "WorkloadDistance",
    "WorkloadQuery",
    "bnt_minimize",
    "build_star_schema",
    "default_budget_bytes",
    "delta_euclidean",
    "gamma_from_history",
    "get_metrics",
    "move_workload",
    "ecommerce_profile",
    "htap_profile",
    "oltp_profile",
    "r1_profile",
    "replay",
    "s1_profile",
    "s2_profile",
    "serve_session",
    "set_tracer",
    "split_windows",
    "trace_to",
    "tracer",
]
