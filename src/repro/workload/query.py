"""Workload queries: SQL text with a timestamp and a frequency weight."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.analyzer import QueryTemplate, extract_template


@dataclass(frozen=True)
class WorkloadQuery:
    """One query occurrence (or a weighted group of identical occurrences).

    ``timestamp`` is measured in fractional days since the trace start —
    windowing only ever needs differences, so an epoch-less float keeps the
    generators and tests simple.  ``frequency`` is the occurrence weight
    (identical SQL may be collapsed into one entry with frequency > 1).
    """

    sql: str
    timestamp: float = 0.0
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")

    @property
    def template(self) -> QueryTemplate:
        """Clause-wise column sets (cached globally by SQL text)."""
        return extract_template(self.sql)

    def with_frequency(self, frequency: float) -> "WorkloadQuery":
        """Copy with a different weight."""
        return WorkloadQuery(sql=self.sql, timestamp=self.timestamp, frequency=frequency)
