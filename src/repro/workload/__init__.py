"""Workload substrate: queries, workloads, drift, distances, and sampling.

* :mod:`repro.workload.query` — timestamped, weighted workload queries,
* :mod:`repro.workload.workload` — workload containers and template vectors,
* :mod:`repro.workload.windows` — time-windowing of query streams,
* :mod:`repro.workload.distance` — the paper's δ metrics (Section 5 and
  Appendix C),
* :mod:`repro.workload.sampler` — Γ-neighborhood sampling (Appendix B),
* :mod:`repro.workload.generator` — R1/S1/S2-style drifting trace
  generators (Section 6.1's workloads, rebuilt synthetically).
"""

from repro.workload.distance import (
    LatencyAwareDistance,
    WorkloadDistance,
    delta_euclidean,
)
from repro.workload.families import (
    ecommerce_profile,
    htap_profile,
    oltp_profile,
)
from repro.workload.generator import (
    DriftProfile,
    TraceGenerator,
    build_star_schema,
    r1_profile,
    s1_profile,
    s2_profile,
)
from repro.workload.monitor import DriftAlarm, WorkloadMonitor
from repro.workload.query import WorkloadQuery
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.windows import split_windows
from repro.workload.workload import Workload

__all__ = [
    "DriftAlarm",
    "DriftProfile",
    "LatencyAwareDistance",
    "NeighborhoodSampler",
    "TraceGenerator",
    "Workload",
    "WorkloadMonitor",
    "WorkloadDistance",
    "WorkloadQuery",
    "build_star_schema",
    "delta_euclidean",
    "ecommerce_profile",
    "htap_profile",
    "oltp_profile",
    "r1_profile",
    "s1_profile",
    "s2_profile",
    "split_windows",
]
