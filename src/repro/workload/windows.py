"""Time-windowing of query streams.

The paper divides traces into fixed windows (7/14/21/28 days), designs at
the end of each window, and evaluates on the next one (Section 6.1).
"""

from __future__ import annotations

import math

from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload


def split_windows(
    queries: list[WorkloadQuery] | Workload,
    window_days: float,
    start_day: float | None = None,
) -> list[Workload]:
    """Split ``queries`` into consecutive windows of ``window_days``.

    Windows are aligned at ``start_day`` (default: the first timestamp).
    Empty trailing windows are dropped; empty interior windows are kept so
    window indices stay aligned to calendar time.
    """
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    items = list(queries)
    if not items:
        return []
    items.sort(key=lambda q: q.timestamp)
    first = items[0].timestamp if start_day is None else start_day
    last = items[-1].timestamp
    count = max(1, int(math.floor((last - first) / window_days)) + 1)
    buckets: list[list[WorkloadQuery]] = [[] for _ in range(count)]
    for query in items:
        idx = int((query.timestamp - first) // window_days)
        if 0 <= idx < count:
            buckets[idx].append(query)
    while buckets and not buckets[-1]:
        buckets.pop()
    return [Workload(bucket) for bucket in buckets]


def shared_template_fraction(window_a: Workload, window_b: Workload) -> float:
    """Fraction of ``window_a``'s query mass whose template also occurs in
    ``window_b`` (the quantity plotted in the paper's Figure 5).

    Templates here are the full clause-wise 4-tuples, matching the paper's
    definition ("stripping away the query details except for the sets of
    columns used in the select, where, group by, and order by clauses").
    """
    vector_a = window_a.template_vector("separate")
    if not vector_a:
        return 0.0
    templates_b = set(window_b.template_vector("separate"))
    shared = sum(w for key, w in vector_a.items() if key in templates_b)
    return shared
