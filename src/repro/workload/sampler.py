"""Γ-neighborhood sampling (paper Appendix B, Algorithm 4).

To explore the uncertainty region, CliffGuard needs ``n`` perturbed
workloads ``W_i`` with ``δ(W0, W_i) ≤ Γ``.  Algorithm 4 reduces this to
sampling a workload at one exact distance ``α``:

1. find a query set ``Q`` disjoint from ``W0`` (by template) with
   ``β = δ(W0, Q) > α``;
2. set ``λ = sqrt(α / β)`` and ``c = n·λ / (k·(1 − λ))`` where ``n`` is
   ``W0``'s query count and ``k = |Q|``;
3. return ``W1 = W0 ⊎ ⌊c⌋`` copies of every query in ``Q``.

Because ``δ_euclidean`` is quadratic in the frequency-difference vector,
the mixture puts exactly a ``λ`` fraction of mass on ``Q``'s templates, so
``δ(W0, W1) = λ² · β = α`` (up to the integer rounding of ``⌊c⌋``).

Perturbation queries mix a historical pool (distinct templates from the
query log, most recent first — recurrence is the predictable part of real
drift) with *template mutations* of ``W0``'s own queries (1–3 referenced
columns swapped for co-occurring columns of the same table — the novel
part).  Historical candidates are weighted up by ``history_bias`` when
drawing a perturbation set.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np

from repro.catalog.schema import Schema
from repro.sql.analyzer import extract_template
from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    DeleteStatement,
    InsertStatement,
    OrderItem,
    SelectItem,
    UpdateStatement,
)
from repro.sql.formatter import format_statement
from repro.sql.parser import parse
from repro.workload.distance import WorkloadDistance
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

#: The paper reports finding a suitable Q "with a few trials for k ≤ 5";
#: we search larger query sets by default because real workload drift
#: spreads new mass over *many* templates, and a perturbation whose mass
#: rides on a single query is a heavily biased sample of the Γ-sphere
#: (the same finite-sample bias the paper's top-K worst-neighbor loosening
#: guards against, here on the sampling side).
MIN_QUERY_SET_SIZE = 16
MAX_QUERY_SET_SIZE = 48
ATTEMPTS_PER_SIZE = 8


class ColumnAffinity:
    """Column co-occurrence statistics learned from observed queries.

    Real workload drift swaps a column for a *related* column — one that
    analysts use together with the rest of the query's columns — not for an
    arbitrary column of the table.  The sampler learns that relatedness
    from the observable query history: ``counts[table][a][b]`` is how often
    columns ``a`` and ``b`` appeared in the same query template.
    """

    def __init__(self) -> None:
        self.counts: dict[str, dict[str, dict[str, float]]] = {}

    def observe(self, queries) -> None:
        """Accumulate co-occurrence from an iterable of workload queries."""
        for query in queries:
            try:
                template = query.template
            except ValueError:
                continue
            per_table: dict[str, list[str]] = {}
            for qualified in template.union:
                table, _, column = qualified.partition(".")
                if column:
                    per_table.setdefault(table, []).append(column)
            for table, columns in per_table.items():
                table_counts = self.counts.setdefault(table, {})
                for a in columns:
                    row = table_counts.setdefault(a, {})
                    for b in columns:
                        if a != b:
                            row[b] = row.get(b, 0.0) + 1.0

    def replacement_weights(
        self, table: str, context_columns: list[str], options: list[str]
    ) -> np.ndarray:
        """Sampling weights for replacement columns: 1 + total co-occurrence
        with the query's remaining columns.

        An empty ``options`` list (a single-column table offers no
        replacement) yields an empty weight array; normalizing it would
        divide zero by zero and return NaN with a RuntimeWarning.
        """
        weights = np.ones(len(options), dtype=np.float64)
        if not options:
            return weights
        table_counts = self.counts.get(table, {})
        for i, option in enumerate(options):
            for context in context_columns:
                weights[i] += table_counts.get(context, {}).get(option, 0.0)
        return weights / weights.sum()


def mutate_query(
    sql: str,
    schema: Schema,
    rng: np.random.Generator,
    affinity: ColumnAffinity | None = None,
) -> str | None:
    """Swap one referenced column for a sibling column of the same table.

    Returns the mutated SQL, or ``None`` when the query offers nothing to
    mutate.  With an :class:`ColumnAffinity`, the replacement is drawn from
    columns that co-occur with the query's other columns — the way real
    analytical queries actually drift (same shape, a related column).  The
    literal of a mutated predicate is kept as-is: template distances only
    see column sets.
    """
    try:
        stmt = parse(sql)
    except ValueError:
        return None
    table = schema.tables.get(stmt.table)
    if table is None:
        return None

    try:
        context_columns = [
            qualified.partition(".")[2] or qualified
            for qualified in extract_template(sql).union
        ]
    except ValueError:
        context_columns = []

    def sibling(name: str) -> str | None:
        options = [c for c in table.column_names if c != name]
        if not options:
            return None
        if affinity is not None:
            context = [c for c in context_columns if c != name]
            weights = affinity.replacement_weights(stmt.table, context, options)
            return options[int(rng.choice(len(options), p=weights))]
        return options[int(rng.integers(0, len(options)))]

    def swap_ref(ref: ColumnRef) -> ColumnRef | None:
        if ref.table is not None and ref.table != stmt.table:
            return None  # only mutate anchor-table references
        replacement = sibling(ref.name)
        if replacement is None:
            return None
        return ColumnRef(replacement, ref.table)

    if isinstance(stmt, (InsertStatement, UpdateStatement, DeleteStatement)):
        return _mutate_write(stmt, rng, swap_ref)

    # Collect mutation sites: (kind, position) pairs.  Select-list and
    # grouping sites are weighted up (entered twice) because analytical
    # drift changes the measures and breakdowns far more often than the
    # sticky business-key filters.
    sites: list[tuple[str, int]] = []
    for i, item in enumerate(stmt.select):
        if isinstance(item.expr, ColumnRef) or (
            isinstance(item.expr, Aggregate) and item.expr.column is not None
        ):
            sites.append(("select", i))
            sites.append(("select", i))
    sites.extend(("where", i) for i in range(len(stmt.where)))
    for i in range(len(stmt.group_by)):
        sites.append(("group", i))
        sites.append(("group", i))
    sites.extend(("order", i) for i in range(len(stmt.order_by)))
    if not sites:
        return None

    kind, pos = sites[int(rng.integers(0, len(sites)))]
    if kind == "select":
        item = stmt.select[pos]
        if isinstance(item.expr, Aggregate):
            new_ref = swap_ref(item.expr.column)
            if new_ref is None:
                return None
            new_expr: ColumnRef | Aggregate = dataclasses.replace(
                item.expr, column=new_ref
            )
        else:
            new_ref = swap_ref(item.expr)
            if new_ref is None:
                return None
            new_expr = new_ref
        select = list(stmt.select)
        select[pos] = SelectItem(expr=new_expr, alias=item.alias)
        stmt = dataclasses.replace(stmt, select=tuple(select))
    elif kind == "where":
        pred = stmt.where[pos]
        new_ref = swap_ref(pred.column)
        if new_ref is None:
            return None
        where = list(stmt.where)
        where[pos] = dataclasses.replace(pred, column=new_ref)
        stmt = dataclasses.replace(stmt, where=tuple(where))
    elif kind == "group":
        new_ref = swap_ref(stmt.group_by[pos])
        if new_ref is None:
            return None
        group = list(stmt.group_by)
        group[pos] = new_ref
        stmt = dataclasses.replace(stmt, group_by=tuple(group))
    else:
        item = stmt.order_by[pos]
        new_ref = swap_ref(item.column)
        if new_ref is None:
            return None
        order = list(stmt.order_by)
        order[pos] = OrderItem(column=new_ref, ascending=item.ascending)
        stmt = dataclasses.replace(stmt, order_by=tuple(order))
    return format_statement(stmt)


def _mutate_write(stmt, rng: np.random.Generator, swap_ref):
    """Template-mutate one DML statement (the write analogue of drift).

    Writes drift the same way reads do — the *column set* shifts: an
    insert starts populating a different attribute, an update rewrites a
    different measure, a delete filters on a different key.  Written
    columns are weighted up (entered twice) over locate predicates, and
    a swap that would collide with another referenced column is a failed
    attempt (``None``), mirroring the read path's contract.
    """
    if isinstance(stmt, InsertStatement):
        taken = {c.name for c in stmt.columns}
        pos = int(rng.integers(0, len(stmt.columns)))
        new_ref = swap_ref(stmt.columns[pos])
        if new_ref is None or new_ref.name in taken:
            return None
        columns = list(stmt.columns)
        columns[pos] = new_ref
        return format_statement(dataclasses.replace(stmt, columns=tuple(columns)))
    sites: list[tuple[str, int]] = []
    if isinstance(stmt, UpdateStatement):
        for i in range(len(stmt.assignments)):
            sites.append(("set", i))
            sites.append(("set", i))
    sites.extend(("where", i) for i in range(len(stmt.where)))
    if not sites:
        return None
    kind, pos = sites[int(rng.integers(0, len(sites)))]
    if kind == "set":
        taken = {a.column.name for a in stmt.assignments}
        assignment = stmt.assignments[pos]
        new_ref = swap_ref(assignment.column)
        if new_ref is None or new_ref.name in taken:
            return None
        assignments = list(stmt.assignments)
        assignments[pos] = dataclasses.replace(assignment, column=new_ref)
        stmt = dataclasses.replace(stmt, assignments=tuple(assignments))
    else:
        pred = stmt.where[pos]
        new_ref = swap_ref(pred.column)
        if new_ref is None:
            return None
        where = list(stmt.where)
        where[pos] = dataclasses.replace(pred, column=new_ref)
        stmt = dataclasses.replace(stmt, where=tuple(where))
    return format_statement(stmt)


class NeighborhoodSampler:
    """Samples perturbed workloads in the Γ-neighborhood of a workload."""

    def __init__(
        self,
        distance: WorkloadDistance,
        schema: Schema,
        pool: Sequence[WorkloadQuery] = (),
        seed: int = 0,
        recent_pool_size: int = 400,
        min_query_set: int = MIN_QUERY_SET_SIZE,
        max_query_set: int = MAX_QUERY_SET_SIZE,
        history_bias: float = 3.0,
    ):
        self.distance = distance
        self.schema = schema
        self.pool = list(pool)
        self.rng = np.random.default_rng(seed)
        self.recent_pool_size = recent_pool_size
        if not 1 <= min_query_set <= max_query_set:
            raise ValueError("need 1 <= min_query_set <= max_query_set")
        self.min_query_set = min_query_set
        self.max_query_set = max_query_set
        #: How much likelier a historical template is to enter a perturbed
        #: workload than a synthesized mutation.  Real drift is largely
        #: recurrence (the generator's revival channel), and recurrence is
        #: measurable from the query history, so the sampler leans on it.
        self.history_bias = history_bias
        self.affinity = ColumnAffinity()
        self.affinity.observe(self.pool)

    def extend_pool(self, queries: Sequence[WorkloadQuery]) -> None:
        """Add historical queries as perturbation candidates."""
        self.pool.extend(queries)
        self.affinity.observe(queries)

    def set_pool(self, queries: Sequence[WorkloadQuery]) -> None:
        """Replace the perturbation pool (e.g. with only-past queries)."""
        self.pool = list(queries)
        self.affinity = ColumnAffinity()
        self.affinity.observe(self.pool)

    # -- Algorithm 4 -------------------------------------------------------------

    def sample(self, base: Workload, gamma: float, count: int) -> list[Workload]:
        """``count`` workloads at uniformly random distances in ``[0, Γ]``."""
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        samples: list[Workload] = []
        for _ in range(count):
            alpha = float(self.rng.uniform(0.0, gamma))
            samples.append(self.sample_at(base, alpha))
        return samples

    def sample_at(self, base: Workload, alpha: float) -> Workload:
        """One workload at distance ≈ ``alpha`` from ``base``."""
        if alpha <= 0.0 or not base:
            return Workload(list(base))
        candidates, pool_count = self._candidate_queries(base)
        if not candidates:
            return Workload(list(base))
        base_count = max(base.total_weight, 1.0)
        best: Workload | None = None
        best_error = math.inf
        midpoint = (self.min_query_set + self.max_query_set) // 2
        sizes = sorted({self.min_query_set, midpoint, self.max_query_set})
        for k in sizes:
            for _ in range(ATTEMPTS_PER_SIZE):
                picks = self._pick_distinct(candidates, pool_count, k)
                if len(picks) < k:
                    break
                probe = Workload(picks)
                # The probe is template-disjoint from the base by
                # construction, so the decomposed fast path applies.
                beta = self.distance.disjoint_distance(base, probe)
                if beta <= alpha:
                    continue
                lam = math.sqrt(alpha / beta)
                if lam >= 1.0:
                    continue
                copies = math.floor(base_count * lam / (k * (1.0 - lam)))
                if copies < 1:
                    continue
                moved = Workload(
                    list(base)
                    + [q.with_frequency(q.frequency * copies) for q in picks]
                )
                # δ(base, moved) = μ²·β exactly, where μ is the probe's
                # mass fraction in the mixture (see the module docstring);
                # no extra O(T²) distance evaluation is needed.
                mass = k * copies
                mu = mass / (base_count + mass)
                achieved = mu * mu * beta
                error = abs(achieved - alpha)
                if error < best_error:
                    best, best_error = moved, error
                if error <= 0.1 * alpha:
                    return moved
            if best is not None:
                return best
        return best if best is not None else Workload(list(base))

    # -- candidate machinery -----------------------------------------------------

    def _candidate_queries(
        self, base: Workload
    ) -> tuple[list[WorkloadQuery], int]:
        """Pool queries (template-disjoint from ``base``) plus mutations.

        Returns the candidate list (historical templates first) and the
        count of historical entries, so picking can weight history up.

        Disjointness is checked under the *distance metric's* clause spec so
        the decomposed fast path in :meth:`WorkloadDistance.disjoint_distance`
        is exact.
        """
        from repro.workload.workload import template_key

        clauses = self.distance.clauses
        base_templates = self.distance.template_keys(base)
        seen: set = set()
        candidates: list[WorkloadQuery] = []
        # History first, most recent first: templates that ran before but
        # are absent from the current window are plausible comebacks, and
        # recently retired ones are the likeliest.  Deduplicating by
        # template lets the scan reach months back within the candidate
        # budget instead of stopping at the last few days.
        for query in reversed(self.pool):
            if len(candidates) >= self.recent_pool_size:
                break
            try:
                template = query.template
            except ValueError:
                continue
            if template.is_empty:
                continue
            key = template_key(template, clauses)
            if key in base_templates or key in seen:
                continue
            seen.add(key)
            candidates.append(query.with_frequency(1.0))
        pool_count = len(candidates)
        recent = self.pool[-self.recent_pool_size :]
        # Always add affinity-guided mutations of the base's own queries:
        # fresh drift looks like an existing query with one related column
        # swapped, which history alone cannot supply.
        base_queries = list(base)
        affinity = ColumnAffinity()
        affinity.observe(base_queries)
        affinity.observe(recent)
        for _ in range(400):
            source = base_queries[int(self.rng.integers(0, len(base_queries)))]
            # Future drift is several mutation steps away from the current
            # window, so perturbation queries are mutated 1-3 times.
            depth = int(self.rng.integers(1, 4))
            mutated: str | None = source.sql
            for _ in range(depth):
                mutated = mutate_query(mutated, self.schema, self.rng, affinity)
                if mutated is None:
                    break
            if mutated is None:
                continue
            template = extract_template(mutated)
            if template.is_empty:
                continue
            key = template_key(template, clauses)
            if key in base_templates or key in seen:
                continue
            seen.add(key)
            candidates.append(WorkloadQuery(sql=mutated))
            if len(candidates) >= self.recent_pool_size + self.max_query_set * 4:
                break
        return candidates, pool_count

    def _pick_distinct(
        self, candidates: list[WorkloadQuery], pool_count: int, k: int
    ) -> list[WorkloadQuery]:
        """Sample ``k`` distinct candidates, historical ones weighted up."""
        if len(candidates) < k:
            return []
        weights = np.ones(len(candidates), dtype=np.float64)
        weights[:pool_count] = self.history_bias
        weights /= weights.sum()
        picks = self.rng.choice(len(candidates), size=k, replace=False, p=weights)
        return [candidates[int(i)] for i in picks]
