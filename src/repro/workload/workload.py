"""Workload containers and template-frequency vectors.

The paper models a workload ``W`` as a sparse vector ``V_W`` whose
coordinates are query templates (column sets) and whose entries are
normalized occurrence frequencies (Section 5).  :class:`Workload` carries
the raw queries and materializes those vectors on demand.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.sql.analyzer import CLAUSES, QueryTemplate
from repro.workload.query import WorkloadQuery

#: Clause specifications: either a subset of SWGO clauses whose union forms
#: the template key, or the sentinel "separate" for clause-wise 4-tuples.
ClauseSpec = tuple[str, ...]
SEPARATE = "separate"

#: Template-vector keys: a flat column set, or a 4-tuple of clause sets.
VectorKey = frozenset[str] | tuple[frozenset[str], ...]


def template_key(template: QueryTemplate, clauses: ClauseSpec | str) -> VectorKey:
    """Map a template to its vector coordinate under a clause spec."""
    if clauses == SEPARATE:
        return tuple(template.clause(name) for name in CLAUSES)
    return template.restricted(tuple(clauses))


class Workload:
    """An immutable-ish sequence of weighted queries."""

    def __init__(self, queries: Iterable[WorkloadQuery] = ()):
        self.queries: list[WorkloadQuery] = list(queries)
        self._vectors: dict[object, dict[VectorKey, float]] = {}

    # -- basic container behaviour -------------------------------------------------

    def __getstate__(self) -> dict:
        # The template-vector cache is derived data keyed by frozensets,
        # whose pickle byte order is hash-randomized — persisting it
        # would make otherwise-equal checkpoints differ byte-wise (and
        # bloat them).  Recomputed on demand after unpickling.
        return {"queries": self.queries}

    def __setstate__(self, state: dict) -> None:
        self.queries = state["queries"]
        self._vectors = {}

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[WorkloadQuery]:
        return iter(self.queries)

    def __bool__(self) -> bool:
        return bool(self.queries)

    @property
    def total_weight(self) -> float:
        """Sum of query frequencies."""
        return sum(q.frequency for q in self.queries)

    @property
    def span_days(self) -> tuple[float, float]:
        """(first, last) timestamp, or (0, 0) when empty."""
        if not self.queries:
            return 0.0, 0.0
        timestamps = [q.timestamp for q in self.queries]
        return min(timestamps), max(timestamps)

    # -- construction helpers --------------------------------------------------------

    @classmethod
    def from_sql(cls, statements: Iterable[str]) -> "Workload":
        """Build a workload of unit-frequency queries from SQL strings."""
        return cls(WorkloadQuery(sql=s) for s in statements)

    def collapsed(self) -> "Workload":
        """Collapse identical SQL into single entries with summed weight."""
        weights: dict[str, float] = defaultdict(float)
        first_seen: dict[str, WorkloadQuery] = {}
        for query in self.queries:
            weights[query.sql] += query.frequency
            first_seen.setdefault(query.sql, query)
        return Workload(
            WorkloadQuery(
                sql=sql,
                timestamp=first_seen[sql].timestamp,
                frequency=weight,
            )
            for sql, weight in weights.items()
        )

    def merged_with(self, other: "Workload") -> "Workload":
        """Plain union of the two query lists (weights kept as-is)."""
        return Workload([*self.queries, *other.queries])

    def reweighted(self, weights: dict[str, float]) -> "Workload":
        """Replace per-SQL weights (queries absent from ``weights`` drop)."""
        result = []
        for query in self.collapsed():
            weight = weights.get(query.sql)
            if weight is not None and weight > 0:
                result.append(query.with_frequency(weight))
        return Workload(result)

    # -- template machinery ------------------------------------------------------------

    def templates(self, clauses: ClauseSpec | str = tuple(CLAUSES)) -> set[VectorKey]:
        """The distinct template keys present (empty templates excluded)."""
        return set(self.template_vector(clauses))

    def template_vector(
        self, clauses: ClauseSpec | str = tuple(CLAUSES)
    ) -> dict[VectorKey, float]:
        """The paper's ``V_W``: normalized template-frequency vector.

        Queries referencing no columns at all are ignored (the paper drops
        trivia like ``SELECT version()``).  The vector is cached per clause
        spec.
        """
        cache_key = clauses if isinstance(clauses, str) else tuple(clauses)
        cached = self._vectors.get(cache_key)
        if cached is not None:
            return cached
        raw: dict[VectorKey, float] = defaultdict(float)
        total = 0.0
        for query in self.queries:
            template = query.template
            if template.is_empty:
                continue
            key = template_key(template, clauses)
            if not _key_nonempty(key):
                continue
            raw[key] += query.frequency
            total += query.frequency
        vector = (
            {key: weight / total for key, weight in raw.items()} if total else {}
        )
        self._vectors[cache_key] = vector
        return vector

    def query_weight(self, sql: str) -> float:
        """Normalized weight of one SQL text within this workload."""
        total = self.total_weight
        if total == 0:
            return 0.0
        weight = sum(q.frequency for q in self.queries if q.sql == sql)
        return weight / total

    def normalized_weights(self) -> dict[str, float]:
        """Normalized weight per distinct SQL text."""
        total = self.total_weight
        if total == 0:
            return {}
        weights: dict[str, float] = defaultdict(float)
        for query in self.queries:
            weights[query.sql] += query.frequency
        return {sql: w / total for sql, w in weights.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.span_days
        return (
            f"Workload({len(self.queries)} queries, weight={self.total_weight:.0f},"
            f" days=[{lo:.1f}, {hi:.1f}])"
        )


def _key_nonempty(key: VectorKey) -> bool:
    if isinstance(key, tuple):
        return any(part for part in key)
    return bool(key)
