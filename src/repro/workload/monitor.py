"""Online workload-drift monitoring.

Section 5 of the paper notes that quantifying SQL-workload change "will
likely find many other applications beyond robust physical designs, e.g.,
in workload monitoring".  This module is that application: a streaming
monitor that maintains a reference window and a sliding current window,
computes δ between them as queries arrive, and raises drift alarms that
can drive re-design scheduling
(:class:`repro.harness.scheduler.DriftTriggeredPolicy`) or alerting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.workload.distance import WorkloadDistance
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload


@dataclass
class DriftAlarm:
    """One threshold crossing."""

    at_day: float
    distance: float
    threshold: float


@dataclass
class DriftReading:
    """One δ measurement of the sliding window against the reference."""

    at_day: float
    distance: float


class WorkloadMonitor:
    """Streaming drift monitor over a sliding query window.

    Queries are observed in timestamp order.  The monitor keeps the last
    ``window_days`` of queries as the *current* window; the *reference*
    window is set explicitly (typically the workload the live design was
    built for) and re-anchored via :meth:`rebase`.  Every
    ``measure_every_days`` of trace time a δ reading is taken; readings
    above ``threshold`` raise a :class:`DriftAlarm` (with a refractory
    period so a sustained drift produces one alarm, not a storm).
    """

    def __init__(
        self,
        distance: WorkloadDistance,
        threshold: float,
        window_days: float = 28.0,
        measure_every_days: float = 1.0,
        refractory_days: float = 7.0,
        max_log_entries: int | None = None,
    ):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if window_days <= 0 or measure_every_days <= 0:
            raise ValueError("window and measurement periods must be positive")
        if max_log_entries is not None and max_log_entries < 1:
            raise ValueError("max_log_entries must be positive (or None)")
        self.distance = distance
        self.threshold = threshold
        self.window_days = window_days
        self.measure_every_days = measure_every_days
        self.refractory_days = refractory_days
        #: Retention bound on the in-memory ``readings``/``alarms`` logs.
        #: Alarm/measure decisions depend only on the cadence anchors, so
        #: trimming old entries never changes future behavior — it only
        #: keeps long-stream checkpoints (which embed both logs) bounded.
        self.max_log_entries = max_log_entries
        self._current: deque[WorkloadQuery] = deque()
        self._reference: Workload | None = None
        self._last_measure: float | None = None
        self._last_alarm: float | None = None
        self.readings: list[DriftReading] = []
        self.alarms: list[DriftAlarm] = []
        #: Lifetime totals — unlike the bounded logs, these never shrink.
        self.readings_total = 0
        self.alarms_total = 0

    # -- reference management ----------------------------------------------------

    def rebase(self, reference: Workload | None = None) -> None:
        """Anchor the reference window (default: the current window).

        Starts a fresh monitoring epoch against the new reference: both
        the alarm refractory anchor and the measurement cadence anchor
        are cleared, so the first post-rebase observation measures (and
        may alarm) immediately instead of inheriting the previous
        epoch's timers.  The accumulated ``readings`` and ``alarms``
        logs are *not* cleared — they span epochs by design (slice them
        by ``at_day`` to isolate one epoch).
        """
        if reference is None:
            reference = Workload(list(self._current))
        self._reference = reference
        self._last_alarm = None
        self._last_measure = None

    @property
    def current_window(self) -> Workload:
        """The sliding window's contents."""
        return Workload(list(self._current))

    # -- streaming ------------------------------------------------------------------

    def observe(self, query: WorkloadQuery) -> DriftAlarm | None:
        """Feed one query; returns an alarm if this observation raised one.

        Queries must arrive in non-decreasing timestamp order.
        """
        if self._current and query.timestamp < self._current[-1].timestamp:
            raise ValueError("queries must be observed in timestamp order")
        self._current.append(query)
        horizon = query.timestamp - self.window_days
        while self._current and self._current[0].timestamp < horizon:
            self._current.popleft()

        if self._reference is None:
            return None
        if (
            self._last_measure is not None
            and query.timestamp - self._last_measure < self.measure_every_days
        ):
            return None
        self._last_measure = query.timestamp
        measured = self.distance(self._reference, self.current_window)
        self.readings.append(DriftReading(at_day=query.timestamp, distance=measured))
        self.readings_total += 1
        self._trim_logs()
        if measured > self.threshold:
            in_refractory = (
                self._last_alarm is not None
                and query.timestamp - self._last_alarm < self.refractory_days
            )
            if not in_refractory:
                self._last_alarm = query.timestamp
                alarm = DriftAlarm(
                    at_day=query.timestamp,
                    distance=measured,
                    threshold=self.threshold,
                )
                self.alarms.append(alarm)
                self.alarms_total += 1
                self._trim_logs()
                return alarm
        return None

    def _trim_logs(self) -> None:
        """Drop the oldest log entries beyond the retention bound."""
        cap = self.max_log_entries
        if cap is None:
            return
        if len(self.readings) > cap:
            del self.readings[: len(self.readings) - cap]
        if len(self.alarms) > cap:
            del self.alarms[: len(self.alarms) - cap]

    def observe_many(self, queries) -> list[DriftAlarm]:
        """Feed a sequence of queries; returns all alarms raised."""
        alarms = []
        for query in queries:
            alarm = self.observe(query)
            if alarm is not None:
                alarms.append(alarm)
        return alarms

    # -- checkpointing --------------------------------------------------------------

    def state(self) -> dict:
        """Snapshot everything :meth:`observe` depends on or appends to.

        Captures the sliding window, the reference anchor, both cadence
        anchors, and the accumulated reading/alarm logs — a monitor
        restored from this snapshot observes the rest of a stream
        exactly as the uninterrupted monitor would have
        (:mod:`repro.state`'s resume-equivalence contract).  The
        configuration knobs are *not* captured; they come from the run
        config on rebuild.
        """
        return {
            "current": list(self._current),
            "reference": self._reference,
            "last_measure": self._last_measure,
            "last_alarm": self._last_alarm,
            "readings": list(self.readings),
            "alarms": list(self.alarms),
            "readings_total": self.readings_total,
            "alarms_total": self.alarms_total,
        }

    def restore(self, state: dict) -> None:
        """Restore what :meth:`state` captured.

        The totals keys default to the log lengths so checkpoints written
        before the retention bound existed restore unchanged.
        """
        self._current = deque(state["current"])
        self._reference = state["reference"]
        self._last_measure = state["last_measure"]
        self._last_alarm = state["last_alarm"]
        self.readings = list(state["readings"])
        self.alarms = list(state["alarms"])
        self.readings_total = state.get("readings_total", len(self.readings))
        self.alarms_total = state.get("alarms_total", len(self.alarms))
