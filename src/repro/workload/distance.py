"""Workload distance metrics (paper Section 5 and Appendix C).

``δ_euclidean`` (Equation 9) treats a workload as a sparse template-
frequency vector ``V_W`` and computes::

    δ(W1, W2) = |V_W1 − V_W2| × S × |V_W1 − V_W2|^T

where ``|·|`` is the element-wise absolute difference and ``S`` is the
similarity matrix whose ``(i, j)`` entry is the Hamming distance between
the binary column-set encodings of templates ``i`` and ``j`` divided by
``2·n`` (``n`` = total columns in the database).  Although ``V_W`` is
conceptually ``(2^n − 1)``-dimensional, both vectors are extremely sparse,
so the computation runs in ``O(T² · n)`` over observed templates only —
exactly the paper's complexity claim.

Variants:

* ``δ_separate`` — clause-wise 4-tuple keys (Figure 11's "Euc-separate"),
* clause-restricted unions (Figure 11's "Euc-union (S)", "(W)", ...),
* ``δ_latency`` (Appendix C, Equation 11) — blends a latency-difference
  term ``R`` with weight ``ω``.

Implementation notes: templates are encoded as fixed-width ``uint64`` bit
arrays, so every Hamming distance is a vectorized XOR + popcount; the
quadratic form is evaluated in chunked numpy.  For the sampler's hot path
(``W0`` vs. a template-disjoint probe ``Q``) the form decomposes as
``δ = q(V_W0) + 2·cross(W0, Q) + q(V_Q)`` with the per-workload self term
``q(·)`` cached, cutting the cost from ``O(T0²)`` to ``O(T0·k)`` per probe.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

import numpy as np

from repro.obs import get_metrics
from repro.sql.analyzer import CLAUSES
from repro.workload.workload import SEPARATE, ClauseSpec, VectorKey, Workload

#: The paper's default clause spec: union of select, where, group, order.
SWGO: ClauseSpec = tuple(CLAUSES)

#: Budget (in xor-ed words) per numpy chunk of the pairwise computation.
_CHUNK_WORD_BUDGET = 4_000_000

#: Bound on the per-workload self-term / baseline-cost caches.  A replay
#: touches a handful of live workloads at a time (the base window plus a
#: Γ-neighborhood), so a few hundred entries keep every hot hit while a
#: months-long ``scheduled_replay``/monitor run can no longer grow the
#: caches — and their strong references to dead workloads — without bound.
_WORKLOAD_CACHE_ENTRIES = 512


def _require_bitwise_count(module=np) -> None:
    """Fail fast (with an actionable message) on numpy < 2.0.

    The Hamming kernel uses ``np.bitwise_count`` (added in numpy 2.0);
    without this guard an old numpy surfaces as an ``AttributeError``
    deep inside the first distance computation instead of at import.
    """
    if not hasattr(module, "bitwise_count"):
        version = getattr(module, "__version__", "unknown")
        raise ImportError(
            "repro.workload.distance requires numpy >= 2.0 "
            f"(np.bitwise_count is missing; installed numpy is {version}). "
            "Upgrade with: pip install 'numpy>=2.0'"
        )


_require_bitwise_count()


class _PerWorkloadCache:
    """Small LRU keyed by workload object identity.

    Entries keep the workload itself alongside the value so an ``id``
    reused by a new object after garbage collection can never alias a
    stale entry.  Evictions are counted in the process-wide metrics
    registry under ``counter_name``.
    """

    def __init__(self, counter_name: str, max_entries: int = _WORKLOAD_CACHE_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.counter_name = counter_name
        self._entries: OrderedDict[int, tuple[Workload, float]] = OrderedDict()

    def get(self, workload: Workload) -> float | None:
        cached = self._entries.get(id(workload))
        if cached is not None and cached[0] is workload:
            self._entries.move_to_end(id(workload))
            return cached[1]
        return None

    def put(self, workload: Workload, value: float) -> None:
        self._entries[id(workload)] = (workload, value)
        self._entries.move_to_end(id(workload))
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            get_metrics().counter(self.counter_name).inc()

    def __len__(self) -> int:
        return len(self._entries)


def _template_order(key: VectorKey) -> tuple:
    """A canonical sort key for template keys.

    Set/frozenset iteration order follows string hashing, which is
    randomized per process (``PYTHONHASHSEED``); anything that turns a
    set of templates into a float summation order must sort first, or
    the same distance computed in two processes differs in the last ulp
    — which breaks cross-process bit-reproducibility (and with it
    checkpoint run keys, see docs/state.md).
    """
    if isinstance(key, tuple):
        return tuple(tuple(sorted(columns)) for columns in key)
    return (tuple(sorted(key)),)


class WorkloadDistance:
    """Configurable ``δ_euclidean`` / ``δ_separate`` distance.

    ``total_columns`` is the database's column count ``n``; it normalizes
    the similarity matrix so distances are comparable across schemas.
    """

    def __init__(
        self,
        total_columns: int,
        clauses: ClauseSpec | str = SWGO,
    ):
        if total_columns <= 0:
            raise ValueError("total_columns must be positive")
        self.total_columns = total_columns
        self.clauses = clauses
        slots = 4 if clauses == SEPARATE else 1
        self._words = (slots * total_columns + 63) // 64
        self._column_bits: dict[str, int] = {}
        self._mask_cache: dict[VectorKey, np.ndarray] = {}
        self._self_terms = _PerWorkloadCache("distance.self_term_evictions")

    # -- encoding ---------------------------------------------------------------

    def _column_bit(self, name: str) -> int:
        bit = self._column_bits.get(name)
        if bit is None:
            bit = len(self._column_bits)
            if bit >= self.total_columns:
                raise ValueError(
                    f"saw more than total_columns={self.total_columns} distinct columns"
                )
            self._column_bits[name] = bit
        return bit

    def _encode(self, key: VectorKey) -> np.ndarray:
        """uint64 bit-array encoding of a template key."""
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        mask = np.zeros(self._words, dtype=np.uint64)

        def set_bit(position: int) -> None:
            mask[position >> 6] |= np.uint64(1) << np.uint64(position & 63)

        if isinstance(key, tuple):
            for slot, columns in enumerate(key):
                offset = slot * self.total_columns
                for name in columns:
                    set_bit(offset + self._column_bit(name))
        else:
            for name in key:
                set_bit(self._column_bit(name))
        self._mask_cache[key] = mask
        return mask

    def _encode_vector(
        self, vector: dict[VectorKey, float]
    ) -> tuple[np.ndarray, np.ndarray]:
        keys = list(vector.keys())
        masks = (
            np.stack([self._encode(k) for k in keys])
            if keys
            else np.zeros((0, self._words), dtype=np.uint64)
        )
        weights = np.array([vector[k] for k in keys], dtype=np.float64)
        return masks, weights

    # -- quadratic-form machinery ----------------------------------------------------

    def _weighted_pair_sum(
        self,
        masks_a: np.ndarray,
        weights_a: np.ndarray,
        masks_b: np.ndarray,
        weights_b: np.ndarray,
    ) -> float:
        """``Σ_i Σ_j a_i b_j · hamming(mask_a_i, mask_b_j)`` (chunked)."""
        if weights_a.size == 0 or weights_b.size == 0:
            return 0.0
        rows_per_chunk = max(1, _CHUNK_WORD_BUDGET // max(1, weights_b.size * self._words))
        total = 0.0
        for start in range(0, weights_a.size, rows_per_chunk):
            stop = start + rows_per_chunk
            xored = masks_a[start:stop, None, :] ^ masks_b[None, :, :]
            hamming = np.bitwise_count(xored).sum(axis=2, dtype=np.int64)
            total += float(
                weights_a[start:stop] @ hamming.astype(np.float64) @ weights_b
            )
        return total

    def _quadratic(self, masks: np.ndarray, weights: np.ndarray) -> float:
        """``d S d`` (up to the /2n normalization) for one diff vector."""
        return self._weighted_pair_sum(masks, weights, masks, weights)

    def _normalize(self, raw: float) -> float:
        return raw / (2.0 * self.total_columns)

    # -- the metric ---------------------------------------------------------------

    def __call__(self, first: Workload, second: Workload) -> float:
        """Compute the distance between two workloads."""
        vector_a = first.template_vector(self.clauses)
        vector_b = second.template_vector(self.clauses)
        diff: dict[VectorKey, float] = {}
        # Sorted, not raw set order: the union's iteration order follows
        # per-process hash randomization, and it decides the float
        # summation order downstream (see _template_order).
        for key in sorted(vector_a.keys() | vector_b.keys(), key=_template_order):
            delta = abs(vector_a.get(key, 0.0) - vector_b.get(key, 0.0))
            if delta > 0.0:
                diff[key] = delta
        masks, weights = self._encode_vector(diff)
        return self._normalize(self._quadratic(masks, weights))

    # -- the sampler fast path -------------------------------------------------------

    def self_term(self, workload: Workload) -> float:
        """``V_W × S × V_W^T`` (cached per workload object, bounded LRU)."""
        cached = self._self_terms.get(workload)
        if cached is not None:
            return cached
        masks, weights = self._encode_vector(workload.template_vector(self.clauses))
        value = self._normalize(self._quadratic(masks, weights))
        self._self_terms.put(workload, value)
        return value

    def cross_term(self, first: Workload, second: Workload) -> float:
        """``V_W1 × S × V_W2^T``."""
        masks_a, weights_a = self._encode_vector(first.template_vector(self.clauses))
        masks_b, weights_b = self._encode_vector(second.template_vector(self.clauses))
        return self._normalize(
            self._weighted_pair_sum(masks_a, weights_a, masks_b, weights_b)
        )

    def disjoint_distance(self, base: Workload, probe: Workload) -> float:
        """δ between workloads with template-disjoint supports.

        With disjoint supports the absolute difference vector is just the
        concatenation of the two vectors, so
        ``δ = q(base) + 2·cross + q(probe)`` with the base self term cached
        — the sampler's ``O(T0·k)`` fast path.
        """
        return (
            self.self_term(base)
            + 2.0 * self.cross_term(base, probe)
            + self.self_term(probe)
        )

    def template_keys(self, workload: Workload) -> set[VectorKey]:
        """The workload's template keys under this metric's clause spec."""
        return set(workload.template_vector(self.clauses))


def delta_euclidean(
    first: Workload,
    second: Workload,
    total_columns: int,
    clauses: ClauseSpec | str = SWGO,
) -> float:
    """One-shot ``δ_euclidean`` (prefer :class:`WorkloadDistance` in loops —
    it caches template encodings across calls)."""
    return WorkloadDistance(total_columns, clauses)(first, second)


class LatencyAwareDistance:
    """``δ_latency`` (Appendix C)::

        δ_latency(W1, W2) = (1 − ω) · δ_euclidean(W1, W2) + ω · R(W1, W2)
        R(W1, W2) = |f(W1, ∅) − f(W2, ∅)| / |f(W1, ∅) + f(W2, ∅)|

    ``f(W, ∅)`` is the total latency of ``W`` under the empty design (no
    projections/indices — the design-independent baseline).  ``ω`` tunes
    how much the latency term matters; the paper finds ``ω = 0.2`` yields a
    monotonic relationship with actual performance while ``ω = 0.1`` does
    not (Figure 16).
    """

    def __init__(
        self,
        base: WorkloadDistance,
        baseline_cost: Callable[[Workload], float],
        omega: float = 0.2,
    ):
        if not 0.0 <= omega <= 1.0:
            raise ValueError("omega must be in [0, 1]")
        self.base = base
        self.baseline_cost = baseline_cost
        self.omega = omega
        self._cost_cache = _PerWorkloadCache("distance.cost_cache_evictions")

    def _cost(self, workload: Workload) -> float:
        cached = self._cost_cache.get(workload)
        if cached is not None:
            return cached
        cost = self.baseline_cost(workload)
        self._cost_cache.put(workload, cost)
        return cost

    def latency_term(self, first: Workload, second: Workload) -> float:
        """The ``R`` component alone."""
        cost_a = self._cost(first)
        cost_b = self._cost(second)
        denominator = abs(cost_a + cost_b)
        if denominator == 0.0:
            return 0.0
        return abs(cost_a - cost_b) / denominator

    def __call__(self, first: Workload, second: Workload) -> float:
        structural = self.base(first, second)
        return (1.0 - self.omega) * structural + self.omega * self.latency_term(
            first, second
        )
