"""Mixed read/write workload families.

The paper's R1/S1/S2 traces are read-only; these families add the write
pressure real deployments carry, so robustness experiments can show the
other side of the cliff: a design that wins on reads can lose badly once
every extra structure must be maintained against a stream of DML.

Each family is a :class:`~repro.workload.generator.DriftProfile` with a
``query_distribution`` read/write mix plus family-specific drift shapes:

* :func:`oltp_profile` — write-dominated point work (orders, payments):
  low churn, short queries, writes outnumber reads.
* :func:`ecommerce_profile` — read-mostly with flash-sale write bursts
  and a seasonal demand sinusoid (~quarterly).
* :func:`htap_profile` — R1-style analytical drift over a transactional
  substrate: 70% reads under the full churn machinery, 30% writes.

All three cap the revival archive (``archive_cap``) so week-long streams
hold memory flat.
"""

from __future__ import annotations

from repro.workload.generator import DriftProfile

__all__ = ["ecommerce_profile", "htap_profile", "oltp_profile"]


def oltp_profile(**overrides) -> DriftProfile:
    """Write-heavy transactional mix: inserts and updates dominate."""
    params = dict(
        name="OLTP",
        mixture_sigma=0.02,
        burst_probability=0.0,
        churn_rate=0.01,
        core_mass=0.5,
        core_churn_rate=0.001,
        trivial_fraction=0.0,
        query_distribution={
            "select": 0.35,
            "insert": 0.35,
            "update": 0.20,
            "delete": 0.10,
        },
        archive_cap=512,
    )
    params.update(overrides)
    return DriftProfile(**params)


def ecommerce_profile(**overrides) -> DriftProfile:
    """Read-mostly storefront with flash sales and a seasonal cycle."""
    params = dict(
        name="ECOMMERCE",
        mixture_sigma=0.05,
        burst_probability=0.02,
        churn_rate=0.08,
        core_mass=0.35,
        core_churn_rate=0.005,
        revival_probability=0.6,
        query_distribution={
            "select": 0.60,
            "insert": 0.25,
            "update": 0.10,
            "delete": 0.05,
        },
        flash_sale_probability=0.04,
        flash_sale_write_boost=3.0,
        seasonal_period_days=91.0,
        seasonal_amplitude=0.5,
        archive_cap=512,
    )
    params.update(overrides)
    return DriftProfile(**params)


def htap_profile(**overrides) -> DriftProfile:
    """R1-style analytical drift riding on a transactional write stream."""
    params = dict(
        name="HTAP",
        mixture_sigma=0.05,
        burst_probability=0.03,
        churn_rate=0.35,
        churn_volatility=0.60,
        core_mass=0.30,
        core_churn_rate=0.02,
        revival_probability=0.95,
        revival_halflife_days=60.0,
        query_distribution={
            "select": 0.70,
            "insert": 0.20,
            "update": 0.07,
            "delete": 0.03,
        },
        archive_cap=512,
    )
    params.update(overrides)
    return DriftProfile(**params)
