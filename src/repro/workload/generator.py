"""Drifting OLAP trace generators (the paper's R1 / S1 / S2 workloads).

The paper's R1 is a proprietary 430K-query, 12-month trace from a Vertica
customer with 310 tables.  We rebuild its *published statistics* over a
wide synthetic star schema:

* **Template-sharing decay** (Figure 5): ≈51% of query mass shared between
  consecutive 7-day windows, ≈35% for 28-day windows, <10% beyond ~2.5
  months.  Drift is implemented as *template mutation*: a live template
  dies and is replaced by a copy with one or two columns swapped — which is
  how real analytical queries actually evolve.
* **Small δ between consecutive windows** (Table 1: ~1e-4…3e-3): mutation
  drift moves query mass between templates that are *similar* (Hamming
  distance 1–2 columns), and the schema is wide (hundreds of columns), so
  the similarity matrix entries — Hamming / 2n — are small.  Both effects
  are properties of the real trace the paper highlights.
* A topic mixture whose weights follow a random walk (with occasional
  bursts for R1) adds frequency drift between unrelated templates.

``S1`` dials churn and mixture drift to near zero (the paper's static
workload); ``S2`` uses constant, uniform drift spanning the same δ range
as R1 (the paper's uniformly drifting workload).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import Column, ForeignKey, Schema, Table
from repro.catalog.types import ColumnType
from repro.workload.query import WorkloadQuery

# -- the star schema -----------------------------------------------------------


@dataclass
class StarRoles:
    """Column roles for one fact table's query templates."""

    fact: str
    measures: list[str]  # aggregation targets
    eq_columns: list[str]  # low-cardinality: equality filters, grouping
    range_columns: list[str]  # orderable, higher-cardinality: range filters
    dimensions: dict[str, tuple[str, str]]  # dim table -> (fact fk, dim key)
    dim_eq_columns: dict[str, list[str]]  # dim table -> filter/group columns


@dataclass
class WorkloadRoles:
    """Roles across the whole schema: one :class:`StarRoles` per fact table.

    The paper's customer ran analytics over hundreds of tables; spreading
    the workload over several fact tables also keeps each projection small
    relative to the storage budget, as it was on the real system.
    """

    facts: list[StarRoles]
    dimensions: dict[str, tuple[str, str]]
    dim_eq_columns: dict[str, list[str]]

    @property
    def primary(self) -> StarRoles:
        return self.facts[0]

    # Convenience delegation so single-fact call sites keep working.
    @property
    def fact(self) -> str:
        return self.primary.fact

    @property
    def measures(self) -> list[str]:
        return self.primary.measures

    @property
    def eq_columns(self) -> list[str]:
        return self.primary.eq_columns

    @property
    def range_columns(self) -> list[str]:
        return self.primary.range_columns


def build_star_schema(
    fact_tables: int = 8,
    fact_rows: int = 12_000_000,
    fact_attributes: int = 48,
    legacy_tables: int = 150,
    legacy_columns: int = 28,
    seed: int = 7,
) -> tuple[Schema, WorkloadRoles]:
    """A wide retail-style multi-fact star schema plus legacy tables.

    The width matters twice: the paper's R1 customer schema had **310
    tables**, and (a) the tiny δ values in its Table 1 (1e-4…3e-3) are a
    direct consequence of the ``/ 2n`` normalization over a very wide
    column universe most of which the live workload never touches — the
    ``legacy_tables`` play that role; (b) each projection/index covers a
    small slice of the total data, so a one-third-of-data budget buys many
    structures — the multiple ``fact_tables`` play that role.
    """
    rng = np.random.default_rng(seed)
    schema = Schema()

    dimensions: dict[str, tuple[str, str]] = {}
    dim_eq: dict[str, list[str]] = {}

    def add_dimension(name: str, key: str, rows: int, attributes: int, prefix: str) -> None:
        columns = [Column(key, ColumnType.INT, ndv=rows)]
        filters: list[str] = []
        for i in range(attributes):
            column_name = f"{prefix}_{i:02d}"
            ndv = int(rng.integers(3, 100))
            columns.append(Column(column_name, ColumnType.INT, ndv=ndv, skew=0.4))
            filters.append(column_name)
        schema.add_table(Table(name, columns, row_count=rows))
        dimensions[name] = (key, key)
        dim_eq[name] = filters

    add_dimension("dim_customer", "customer_id", 1_000_000, 30, "c")
    add_dimension("dim_product", "product_id", 50_000, 30, "p")
    add_dimension("dim_store", "store_id", 500, 15, "s")
    add_dimension("dim_date", "date_id", 3_650, 10, "d")

    facts: list[StarRoles] = []
    for f in range(fact_tables):
        fact_name = f"fact_{f:02d}"
        fact_columns: list[Column] = [
            Column("customer_id", ColumnType.INT, ndv=1_000_000),
            Column("product_id", ColumnType.INT, ndv=50_000),
            Column("store_id", ColumnType.INT, ndv=500),
            Column("date_id", ColumnType.DATE, ndv=3_650),
        ]
        measures: list[str] = []
        for i in range(10):
            name = f"m_{i:02d}"
            measures.append(name)
            fact_columns.append(Column(name, ColumnType.FLOAT, ndv=100_000))
        eq_columns: list[str] = ["store_id"]
        range_columns: list[str] = ["date_id"]
        for i in range(fact_attributes):
            name = f"attr_{i:02d}"
            if i % 3 == 0:
                ndv = int(rng.integers(4, 64))
                fact_columns.append(Column(name, ColumnType.INT, ndv=ndv, skew=0.5))
                eq_columns.append(name)
            elif i % 3 == 1:
                ndv = int(rng.integers(200, 5_000))
                fact_columns.append(Column(name, ColumnType.INT, ndv=ndv))
                range_columns.append(name)
            else:
                ndv = int(rng.integers(64, 512))
                fact_columns.append(Column(name, ColumnType.INT, ndv=ndv, skew=0.8))
                eq_columns.append(name)
        schema.add_table(
            Table(
                fact_name,
                fact_columns,
                row_count=fact_rows,
                foreign_keys=[
                    ForeignKey("customer_id", "dim_customer", "customer_id"),
                    ForeignKey("product_id", "dim_product", "product_id"),
                    ForeignKey("store_id", "dim_store", "store_id"),
                    ForeignKey("date_id", "dim_date", "date_id"),
                ],
            )
        )
        facts.append(
            StarRoles(
                fact=fact_name,
                measures=measures,
                eq_columns=eq_columns,
                range_columns=range_columns,
                dimensions=dimensions,
                dim_eq_columns=dim_eq,
            )
        )

    # The legacy long tail: tables that exist in the catalog (and widen the
    # column universe the distance metric normalizes over) but are not part
    # of the live analytical workload.
    for t in range(legacy_tables):
        columns = [
            Column(f"lg{t:03d}_c{i:02d}", ColumnType.INT, ndv=100)
            for i in range(legacy_columns)
        ]
        schema.add_table(Table(f"legacy_{t:03d}", columns, row_count=1_000))

    return schema, WorkloadRoles(
        facts=facts, dimensions=dimensions, dim_eq_columns=dim_eq
    )


# -- template specs ----------------------------------------------------------------


@dataclass(frozen=True)
class TemplateSpec:
    """A query shape: which columns play which roles.

    Literals are sampled at emission time; two emissions of the same spec
    share a template (the paper strips literals when templating).
    """

    measures: tuple[str, ...]
    eq_filters: tuple[str, ...]
    range_filters: tuple[str, ...]
    group_by: tuple[str, ...]
    order_by: str | None
    join_dim: str | None
    dim_filter: str | None
    dim_group: str | None

    def instantiate(
        self, roles: StarRoles, schema: Schema, rng: np.random.Generator
    ) -> str:
        """Render one concrete SQL query from this spec."""
        fact = roles.fact
        table = schema.table(fact)
        select_parts: list[str] = []
        group_cols: list[str] = [f"{fact}.{c}" for c in self.group_by]
        if self.join_dim and self.dim_group:
            group_cols.append(f"{self.join_dim}.{self.dim_group}")
        select_parts.extend(group_cols)
        for i, measure in enumerate(self.measures):
            func = ("SUM", "AVG", "MIN", "MAX")[i % 4]
            select_parts.append(f"{func}({fact}.{measure}) AS agg_{i}")
        if not select_parts:
            select_parts.append("COUNT(*)")

        where_parts: list[str] = []
        for name in self.eq_filters:
            ndv = table.column(name).ndv
            value = int(rng.integers(0, max(ndv, 1)))
            where_parts.append(f"{fact}.{name} = {value}")
        for name in self.range_filters:
            ndv = max(table.column(name).ndv, 2)
            span = max(1, int(ndv * float(rng.uniform(0.01, 0.15))))
            low = int(rng.integers(0, max(ndv - span, 1)))
            where_parts.append(f"{fact}.{name} BETWEEN {low} AND {low + span}")

        sql = f"SELECT {', '.join(select_parts)} FROM {fact}"
        if self.join_dim:
            fk, key = roles.dimensions[self.join_dim]
            sql += f" JOIN {self.join_dim} ON {fact}.{fk} = {self.join_dim}.{key}"
            if self.dim_filter:
                dim_table = schema.table(self.join_dim)
                ndv = dim_table.column(self.dim_filter).ndv
                value = int(rng.integers(0, max(ndv, 1)))
                where_parts.append(f"{self.join_dim}.{self.dim_filter} = {value}")
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        if group_cols:
            sql += " GROUP BY " + ", ".join(group_cols)
        if self.order_by:
            sql += f" ORDER BY {fact}.{self.order_by} DESC"
        sql += " LIMIT 1000"
        return sql


def restrict_roles(
    roles: StarRoles,
    rng: np.random.Generator,
    eq_pool: int = 5,
    range_pool: int = 2,
    measure_pool: int = 3,
) -> StarRoles:
    """A narrowed view of the roles: one topic's "business area".

    Real analytical topics revolve around a handful of columns; narrowing
    each topic's pool makes intra-topic templates similar (small Hamming
    distances), which is what keeps the paper's δ values tiny even when
    most query mass churns between windows.
    """
    return StarRoles(
        fact=roles.fact,
        measures=[
            str(m)
            for m in rng.choice(
                roles.measures, size=min(measure_pool, len(roles.measures)), replace=False
            )
        ],
        eq_columns=[
            str(c)
            for c in rng.choice(
                roles.eq_columns, size=min(eq_pool, len(roles.eq_columns)), replace=False
            )
        ],
        range_columns=[
            str(c)
            for c in rng.choice(
                roles.range_columns,
                size=min(range_pool, len(roles.range_columns)),
                replace=False,
            )
        ],
        dimensions=roles.dimensions,
        dim_eq_columns=roles.dim_eq_columns,
    )


def _random_spec(
    roles: StarRoles, rng: np.random.Generator, allow_join: bool = True
) -> TemplateSpec:
    """Draw a fresh template spec."""
    measures = tuple(
        rng.choice(roles.measures, size=int(rng.integers(1, 3)), replace=False)
    )
    eq_count = int(rng.integers(0, 3))
    eq_filters = tuple(
        rng.choice(roles.eq_columns, size=eq_count, replace=False)
    ) if eq_count else ()
    range_count = int(rng.integers(0, 2)) if eq_filters else 1
    range_filters = tuple(
        rng.choice(roles.range_columns, size=range_count, replace=False)
    ) if range_count else ()
    group_count = int(rng.integers(0, 3))
    group_pool = [c for c in roles.eq_columns if c not in eq_filters]
    group_by = tuple(
        rng.choice(group_pool, size=min(group_count, len(group_pool)), replace=False)
    ) if group_count else ()
    order_by = None
    if group_by and rng.random() < 0.4:
        order_by = str(rng.choice(list(group_by)))
    join_dim = None
    dim_filter = None
    dim_group = None
    if allow_join and rng.random() < 0.25:
        join_dim = str(rng.choice(sorted(roles.dimensions)))
        filters = roles.dim_eq_columns[join_dim]
        if filters and rng.random() < 0.7:
            dim_filter = str(rng.choice(filters))
        if filters and rng.random() < 0.3:
            dim_group = str(rng.choice(filters))
    return TemplateSpec(
        measures=tuple(str(m) for m in measures),
        eq_filters=tuple(str(c) for c in eq_filters),
        range_filters=tuple(str(c) for c in range_filters),
        group_by=tuple(str(c) for c in group_by),
        order_by=order_by,
        join_dim=join_dim,
        dim_filter=dim_filter,
        dim_group=dim_group,
    )


def _mutate_spec(
    spec: TemplateSpec, roles: StarRoles, rng: np.random.Generator
) -> TemplateSpec:
    """Swap 1–2 columns of a spec for same-role siblings (drift step).

    The mutation mix mirrors how analytical queries actually evolve: the
    *measures and groupings* change most often (a new KPI, a different
    breakdown), while the selective filters — the business keys analysts
    slice by — are stickier.
    """
    swaps = int(rng.integers(1, 3))
    mutated = spec
    for _ in range(swaps):
        choice = rng.random()
        if choice < 0.15 and mutated.eq_filters:
            pool = [c for c in roles.eq_columns if c not in mutated.eq_filters]
            if pool:
                filters = list(mutated.eq_filters)
                filters[int(rng.integers(0, len(filters)))] = str(rng.choice(pool))
                mutated = dataclasses.replace(mutated, eq_filters=tuple(filters))
        elif choice < 0.25 and mutated.range_filters:
            pool = [c for c in roles.range_columns if c not in mutated.range_filters]
            if pool:
                filters = list(mutated.range_filters)
                filters[int(rng.integers(0, len(filters)))] = str(rng.choice(pool))
                mutated = dataclasses.replace(mutated, range_filters=tuple(filters))
        elif choice < 0.60 and mutated.group_by:
            pool = [
                c
                for c in roles.eq_columns
                if c not in mutated.group_by and c not in mutated.eq_filters
            ]
            if pool:
                groups = list(mutated.group_by)
                index = int(rng.integers(0, len(groups)))
                replaced = groups[index]
                groups[index] = str(rng.choice(pool))
                order_by = mutated.order_by
                if order_by == replaced:
                    order_by = groups[index]
                mutated = dataclasses.replace(
                    mutated, group_by=tuple(groups), order_by=order_by
                )
        else:
            pool = [m for m in roles.measures if m not in mutated.measures]
            if pool and mutated.measures:
                measures = list(mutated.measures)
                measures[int(rng.integers(0, len(measures)))] = str(rng.choice(pool))
                mutated = dataclasses.replace(mutated, measures=tuple(measures))
    return mutated


# -- drift profiles -------------------------------------------------------------------


@dataclass
class DriftProfile:
    """Knobs controlling how a trace drifts over time."""

    name: str
    topic_count: int = 8
    templates_per_topic: int = 10
    queries_per_day: int = 60
    #: Std-dev of the daily random walk on topic weights (log-space).
    mixture_sigma: float = 0.1
    #: Per-day probability that some topic bursts to several times its weight.
    burst_probability: float = 0.0
    #: Per-template, per-day probability of dying and being reborn mutated.
    churn_rate: float = 0.02
    #: Std-dev of the slow log-space random walk modulating the churn rate
    #: (turbulent vs. quiet periods; widens the min–max δ spread of Table 1).
    churn_volatility: float = 0.0
    #: Mean-reversion factor of the churn walk (closer to 1 = slower regime
    #: changes, i.e. month-scale quiet/turbulent periods).
    churn_reversion: float = 0.98
    #: When set, the base churn rate ramps linearly from lo to hi across
    #: the generated period (S2's "uniform drift" construction).
    churn_range: tuple[float, float] | None = None
    #: When a template churns, probability that its replacement is a
    #: *revival* of a previously retired template rather than a fresh
    #: mutant.  Real analytical workloads recur — monthly reports and
    #: seasonal analyses come back — which is exactly why sampling the
    #: Γ-neighborhood from the historical query pool captures part of the
    #: future (and why a designer that only sees the last window cannot).
    revival_probability: float = 0.0
    #: Revivals prefer templates retired a while ago (monthly reports and
    #: seasonal analyses come back after a dormancy, not the next day):
    #: only templates dead at least ``revival_min_age_days`` are eligible,
    #: weighted by ``exp(-(age - min_age) / revival_halflife)`` beyond it.
    revival_halflife_days: float = 60.0
    revival_min_age_days: float = 25.0
    #: Fraction of query mass drawn from a stable "core" of reporting
    #: templates that barely churn (real workloads keep a repetitive core
    #: under a drifting exploratory tail).
    core_mass: float = 0.3
    #: Number of core templates.
    core_templates: int = 10
    #: Per-core-template, per-day churn probability.
    core_churn_rate: float = 0.002
    #: Fraction of emitted queries that are trivial full scans (filtered out
    #: by the harness, mirroring the paper's 515-of-15.5K benefit filter).
    trivial_fraction: float = 0.03
    #: Read/write statement mix, e.g. ``{"select": 0.7, "insert": 0.2,
    #: "update": 0.07, "delete": 0.03}``.  ``None`` (the default) emits a
    #: pure-select trace and draws no extra randomness, so pre-existing
    #: profiles produce byte-identical streams.
    query_distribution: dict[str, float] | None = None
    #: Per-day probability of a flash-sale burst starting: for its 1–3 day
    #: duration the write share of ``query_distribution`` is multiplied by
    #: ``flash_sale_write_boost`` (then renormalized).
    flash_sale_probability: float = 0.0
    flash_sale_write_boost: float = 3.0
    #: When > 0, a deterministic seasonal sinusoid of this period (days)
    #: modulates the write share by ``1 ± seasonal_amplitude`` — the
    #: slow demand cycle of the e-commerce family.
    seasonal_period_days: float = 0.0
    seasonal_amplitude: float = 0.0
    #: Hard cap on each topic's revival archive (oldest entries beyond the
    #: retention horizon are always pruned; the cap bounds pathological
    #: churn bursts).  ``None`` keeps only the horizon-based pruning.
    archive_cap: int | None = None


def r1_profile(**overrides) -> DriftProfile:
    """The real-workload analogue: moderate drift, bursts, heavy tail churn
    over a stable reporting core, with turbulent and quiet periods."""
    params = dict(
        name="R1",
        mixture_sigma=0.05,
        burst_probability=0.03,
        churn_rate=0.35,
        churn_volatility=0.60,
        core_mass=0.30,
        core_churn_rate=0.02,
        revival_probability=0.95,
        revival_halflife_days=60.0,
    )
    params.update(overrides)
    return DriftProfile(**params)


def s1_profile(**overrides) -> DriftProfile:
    """The static workload: negligible drift (paper: δ in [0.1m, m])."""
    params = dict(
        name="S1",
        mixture_sigma=0.01,
        burst_probability=0.0,
        churn_rate=0.002,
        core_mass=0.5,
        core_churn_rate=0.0,
    )
    params.update(overrides)
    return DriftProfile(**params)


def s2_profile(**overrides) -> DriftProfile:
    """The uniformly drifting workload: constant churn spanning [m, M] of
    R1's range, with no bursts or volatility (paper Table 1)."""
    params = dict(
        name="S2",
        mixture_sigma=0.05,
        burst_probability=0.0,
        churn_range=(0.03, 0.80),
        churn_volatility=0.0,
        core_mass=0.25,
        core_churn_rate=0.02,
        revival_probability=0.95,
        revival_halflife_days=60.0,
    )
    params.update(overrides)
    return DriftProfile(**params)


# -- the generator ------------------------------------------------------------------------


class TraceGenerator:
    """Generates a timestamped query stream from a drift profile."""

    def __init__(
        self,
        schema: Schema,
        roles: WorkloadRoles | StarRoles,
        profile: DriftProfile,
        seed: int = 0,
        total_days: int | None = None,
    ):
        self.schema = schema
        if isinstance(roles, StarRoles):
            roles = WorkloadRoles(
                facts=[roles],
                dimensions=roles.dimensions,
                dim_eq_columns=roles.dim_eq_columns,
            )
        self.roles = roles
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        # Each topic is a narrowed "business area" anchored on one fact
        # table (round-robin); churn then moves templates within that area,
        # keeping Hamming drift small.
        self._topic_roles: list[StarRoles] = [
            restrict_roles(roles.facts[t % len(roles.facts)], self.rng)
            for t in range(profile.topic_count)
        ]
        self._topics: list[list[TemplateSpec]] = [
            [
                _random_spec(topic_roles, self.rng)
                for _ in range(profile.templates_per_topic)
            ]
            for topic_roles in self._topic_roles
        ]
        core_roles = restrict_roles(roles.facts[0], self.rng, eq_pool=6, range_pool=3)
        self._core_roles = core_roles
        self._core: list[TemplateSpec] = [
            _random_spec(core_roles, self.rng) for _ in range(profile.core_templates)
        ]
        self._log_weights = self.rng.normal(0.0, 0.3, size=profile.topic_count)
        self._burst_topic: int | None = None
        self._burst_days_left = 0
        #: Per-topic archive of retired templates: (spec, retirement day).
        self._archive: list[list[tuple[TemplateSpec, float]]] = [
            [] for _ in range(profile.topic_count)
        ]
        self._day = 0.0
        # Start the churn regime walk from its stationary distribution so
        # the first windows are as varied as later ones.
        if profile.churn_volatility > 0 and profile.churn_reversion < 1:
            stationary = profile.churn_volatility / math.sqrt(
                1.0 - profile.churn_reversion**2
            )
            self._log_churn_multiplier = float(self.rng.normal(0.0, stationary))
        else:
            self._log_churn_multiplier = 0.0
        self._progress = 0.0  # fraction of the generation period elapsed
        #: Overall period length for progress-anchored shapes (S2's churn
        #: ramp).  Derived from the *first* ``generate`` call when not
        #: given, so chunked generation matches one long call.
        self._total_days = total_days
        self._anchor_day: float | None = None
        self._flash_days_left = 0

    def _advance_day(self) -> None:
        profile = self.profile
        self._log_weights += self.rng.normal(0.0, profile.mixture_sigma, len(self._log_weights))
        if self._burst_days_left > 0:
            self._burst_days_left -= 1
            if self._burst_days_left == 0:
                self._burst_topic = None
        elif profile.burst_probability > 0 and self.rng.random() < profile.burst_probability:
            self._burst_topic = int(self.rng.integers(0, profile.topic_count))
            self._burst_days_left = int(self.rng.integers(2, 6))
        if profile.churn_volatility > 0:
            self._log_churn_multiplier += float(
                self.rng.normal(0.0, profile.churn_volatility)
            )
            self._log_churn_multiplier *= profile.churn_reversion
        if profile.churn_range is not None:
            lo, hi = profile.churn_range
            base = lo + (hi - lo) * self._progress
        else:
            base = profile.churn_rate
        churn = min(1.0, base * math.exp(self._log_churn_multiplier))
        for t, (topic_roles, topic) in enumerate(zip(self._topic_roles, self._topics)):
            for i, spec in enumerate(topic):
                if self.rng.random() < churn:
                    self._archive[t].append((spec, self._day))
                    topic[i] = self._replacement(t, spec, topic_roles)
        self._prune_archives()
        for i, spec in enumerate(self._core):
            if self.rng.random() < profile.core_churn_rate:
                self._core[i] = _mutate_spec(spec, self._core_roles, self.rng)
        if profile.flash_sale_probability > 0:
            if self._flash_days_left > 0:
                self._flash_days_left -= 1
            elif self.rng.random() < profile.flash_sale_probability:
                self._flash_days_left = int(self.rng.integers(1, 4))

    def _prune_archives(self) -> None:
        """Bound the revival archives (draws no randomness).

        Entries older than the retention horizon have revival weight below
        ``e^-6`` — practically unreachable — yet before this fix every
        retired template was kept forever, growing each archive linearly
        with stream length.  Archives are appended in day order, so the
        prefix is the oldest.
        """
        profile = self.profile
        horizon = profile.revival_min_age_days + 6.0 * profile.revival_halflife_days
        cutoff = self._day - horizon
        for archive in self._archive:
            drop = 0
            while drop < len(archive) and archive[drop][1] < cutoff:
                drop += 1
            if drop:
                del archive[:drop]
            cap = profile.archive_cap
            if cap is not None and len(archive) > cap:
                del archive[: len(archive) - cap]

    def _replacement(
        self, topic_index: int, dying: TemplateSpec, topic_roles: StarRoles
    ) -> TemplateSpec:
        """The spec that replaces a churned one: a revival or a mutant.

        Revivals model the recurring nature of real analytical work —
        monthly reports and seasonal analyses come back — and prefer
        recently retired templates (age-weighted by the profile's
        half-life).  The rest of the churn is genuinely novel: a mutant of
        the dying spec.
        """
        profile = self.profile
        archive = self._archive[topic_index]
        if (
            profile.revival_probability > 0
            and archive
            and self.rng.random() < profile.revival_probability
        ):
            ages = np.array([self._day - died for _, died in archive], dtype=np.float64)
            mature = ages - profile.revival_min_age_days
            weights = np.where(
                mature >= 0,
                np.exp(-np.maximum(mature, 0.0) / max(profile.revival_halflife_days, 1e-9)),
                0.0,
            )
            total = weights.sum()
            if total > 0:
                pick = int(self.rng.choice(len(archive), p=weights / total))
                revived, _ = archive.pop(pick)
                return revived
        return _mutate_spec(dying, topic_roles, self.rng)

    def _topic_weights(self) -> np.ndarray:
        weights = np.exp(self._log_weights - self._log_weights.max())
        if self._burst_topic is not None:
            weights = weights.copy()
            weights[self._burst_topic] *= 5.0
        return weights / weights.sum()

    def _day_write_mix(self) -> list[tuple[str, float]] | None:
        """Today's statement mix as a cumulative distribution (or None).

        Flash-sale bursts and the seasonal sinusoid scale the write share
        before renormalizing; the sinusoid is a deterministic function of
        ``self._day``, so it costs no randomness.
        """
        profile = self.profile
        dist = profile.query_distribution
        if not dist:
            return None
        mix = {k: max(float(v), 0.0) for k, v in dist.items()}
        boost = 1.0
        if self._flash_days_left > 0:
            boost *= profile.flash_sale_write_boost
        if profile.seasonal_period_days > 0:
            boost *= 1.0 + profile.seasonal_amplitude * math.sin(
                2.0 * math.pi * self._day / profile.seasonal_period_days
            )
        if boost != 1.0:
            for kind in ("insert", "update", "delete"):
                if kind in mix:
                    mix[kind] *= max(boost, 0.0)
        total = sum(mix.values())
        if total <= 0:
            return None
        cumulative: list[tuple[str, float]] = []
        running = 0.0
        for kind, share in mix.items():
            running += share / total
            cumulative.append((kind, running))
        return cumulative

    def _draw_kind(self, cumulative: list[tuple[str, float]]) -> str:
        roll = float(self.rng.random())
        for kind, edge in cumulative:
            if roll < edge:
                return kind
        return cumulative[-1][0]

    def _write_sql(self, kind: str, spec: TemplateSpec, roles: StarRoles) -> str:
        """Render one DML statement shaped by ``spec``'s business area."""
        fact = roles.fact
        table = self.schema.table(fact)
        rng = self.rng
        if kind == "insert":
            columns = list(
                dict.fromkeys(
                    list(spec.eq_filters)
                    + list(spec.range_filters)
                    + list(spec.measures)
                )
            ) or list(roles.measures[:1])
            rows = []
            for _ in range(int(rng.integers(1, 4))):
                values = [
                    int(rng.integers(0, max(table.column(c).ndv, 1)))
                    for c in columns
                ]
                rows.append("(" + ", ".join(str(v) for v in values) + ")")
            return (
                f"INSERT INTO {fact} ({', '.join(columns)}) "
                f"VALUES {', '.join(rows)}"
            )
        where_parts: list[str] = []
        for name in spec.eq_filters:
            ndv = table.column(name).ndv
            where_parts.append(f"{name} = {int(rng.integers(0, max(ndv, 1)))}")
        for name in spec.range_filters:
            ndv = max(table.column(name).ndv, 2)
            span = max(1, int(ndv * float(rng.uniform(0.01, 0.15))))
            low = int(rng.integers(0, max(ndv - span, 1)))
            where_parts.append(f"{name} BETWEEN {low} AND {low + span}")
        where = f" WHERE {' AND '.join(where_parts)}" if where_parts else ""
        if kind == "update":
            targets = list(spec.measures) or list(roles.measures[:1])
            assignments = ", ".join(
                f"{m} = {int(rng.integers(0, max(table.column(m).ndv, 1)))}"
                for m in targets
            )
            return f"UPDATE {fact} SET {assignments}{where}"
        return f"DELETE FROM {fact}{where}"

    def generate(self, days: int, start_day: float = 0.0) -> list[WorkloadQuery]:
        """Emit ``days`` days of queries starting at ``start_day``.

        Progress-anchored drift shapes (S2's churn ramp) measure progress
        against the *overall* period — anchored at the first call's
        ``start_day`` and spanning ``total_days`` (defaulting to the first
        call's ``days``) — so generating 60 days in one call or in six
        10-day chunks walks the same trajectory.
        """
        queries: list[WorkloadQuery] = []
        profile = self.profile
        if self._anchor_day is None:
            self._anchor_day = start_day
        if self._total_days is None:
            self._total_days = days
        for day in range(days):
            self._day = start_day + day
            elapsed = self._day - self._anchor_day
            self._progress = min(
                max(elapsed / max(self._total_days - 1, 1), 0.0), 1.0
            )
            self._advance_day()
            weights = self._topic_weights()
            write_mix = self._day_write_mix()
            for _ in range(profile.queries_per_day):
                timestamp = start_day + day + float(self.rng.uniform(0.0, 1.0))
                kind = "select" if write_mix is None else self._draw_kind(write_mix)
                if kind != "select":
                    topic = int(self.rng.choice(profile.topic_count, p=weights))
                    specs = self._topics[topic]
                    spec = specs[int(self.rng.integers(0, len(specs)))]
                    spec_roles = self._topic_roles[topic]
                    queries.append(
                        WorkloadQuery(
                            sql=self._write_sql(kind, spec, spec_roles),
                            timestamp=timestamp,
                        )
                    )
                    continue
                if self.rng.random() < profile.trivial_fraction:
                    queries.append(
                        WorkloadQuery(
                            sql=f"SELECT * FROM {self.roles.fact} LIMIT 100",
                            timestamp=timestamp,
                        )
                    )
                    continue
                if self._core and self.rng.random() < profile.core_mass:
                    spec = self._core[int(self.rng.integers(0, len(self._core)))]
                    spec_roles = self._core_roles
                else:
                    topic = int(self.rng.choice(profile.topic_count, p=weights))
                    specs = self._topics[topic]
                    spec = specs[int(self.rng.integers(0, len(specs)))]
                    spec_roles = self._topic_roles[topic]
                sql = spec.instantiate(spec_roles, self.schema, self.rng)
                queries.append(WorkloadQuery(sql=sql, timestamp=timestamp))
        queries.sort(key=lambda q: q.timestamp)
        return queries
