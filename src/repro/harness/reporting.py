"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, float]],
    title: str | None = None,
    bar_width: int = 40,
) -> str:
    """An ASCII bar series (one bar per x value)."""
    values = [v for _, v in points]
    peak = max(values, default=0.0)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{x_label} vs {y_label}")
    x_width = max((len(_fmt(x)) for x, _ in points), default=1)
    for x, v in points:
        filled = int(round(bar_width * (v / peak))) if peak > 0 else 0
        lines.append(f"{_fmt(x).rjust(x_width)} | {'#' * filled} {_fmt(v)}")
    return "\n".join(lines)


def format_costing_stats(stats, title: str | None = None) -> str:
    """Render a :class:`repro.costing.CostServiceStats` as a counter table."""
    return format_table(["Counter", "Value"], stats.rows(), title=title)


def format_metrics(registry, title: str | None = None) -> str:
    """Render a :class:`repro.obs.MetricsRegistry` as a name-sorted table."""
    rows = [[s.name, s.kind, s.value] for s in registry.samples()]
    if not rows:
        rows = [["(no metrics recorded)", "", ""]]
    return format_table(["Metric", "Kind", "Value"], rows, title=title)


def format_designer_effort(result, title: str | None = None) -> str:
    """Designer-effort table for a :class:`~repro.harness.replay.ReplayResult`:
    query-cost evaluations requested, raw cost-model calls paid, and the
    evaluation-service cache hit rate, per designer."""
    rows = [
        [
            name,
            run.total_query_cost_calls,
            run.total_raw_cost_model_calls,
            run.mean_cache_hit_rate,
        ]
        for name, run in result.runs.items()
    ]
    return format_table(
        ["Designer", "Cost calls", "Raw model calls", "Cache hit rate"],
        rows,
        title=title,
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.5f}"
    return str(value)
