"""Export experiment results as CSV or JSON.

The benchmarks print fixed-width text; downstream users plotting the
figures want machine-readable data.  These helpers serialize
:class:`~repro.harness.replay.ReplayResult` objects and generic
series/tables without any third-party dependency.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence

from repro.harness.replay import ReplayResult


def replay_to_rows(result: ReplayResult) -> list[dict]:
    """Flatten a replay result to one dict per (designer, window)."""
    rows: list[dict] = []
    for name, run in result.runs.items():
        for window in run.windows:
            rows.append(
                {
                    "workload": result.workload_name,
                    "designer": name,
                    "window": window.window_index,
                    "average_ms": window.average_ms,
                    "max_ms": window.max_ms,
                    "design_seconds": window.design_seconds,
                    "design_price_bytes": window.design_price_bytes,
                    "structure_count": window.structure_count,
                }
            )
    return rows


def replay_to_csv(result: ReplayResult) -> str:
    """Render a replay result as CSV text."""
    rows = replay_to_rows(result)
    buffer = io.StringIO()
    if not rows:
        return ""
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def replay_to_json(result: ReplayResult, indent: int | None = 2) -> str:
    """Render a replay result as JSON text, including per-designer means."""
    payload = {
        "workload": result.workload_name,
        "designers": {
            name: {
                "mean_average_ms": run.mean_average_ms,
                "mean_max_ms": run.mean_max_ms,
                "mean_design_seconds": run.mean_design_seconds,
                "windows": [
                    {
                        "window": w.window_index,
                        "average_ms": w.average_ms,
                        "max_ms": w.max_ms,
                    }
                    for w in run.windows
                ],
            }
            for name, run in result.runs.items()
        },
    }
    return json.dumps(payload, indent=indent)


def series_to_csv(
    x_label: str, y_label: str, points: Sequence[tuple[object, float]]
) -> str:
    """Render an (x, y) series — a figure's data — as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([x_label, y_label])
    for x, y in points:
        writer.writerow([x, y])
    return buffer.getvalue()


def table_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a generic table — a paper table's data — as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()
