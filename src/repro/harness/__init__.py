"""Evaluation harness: windowed replay, experiments, reporting.

* :mod:`repro.harness.replay` — the design→deploy→evaluate replay loop of
  Section 6.1 (design on window ``W_i``, evaluate on ``W_{i+1}``),
* :mod:`repro.harness.experiments` — one entry point per paper table and
  figure,
* :mod:`repro.harness.reporting` — fixed-width tables and ASCII series.
"""

from repro.harness.replay import (
    DesignerRun,
    ReplayResult,
    WindowOutcome,
    beneficial_queries,
    replay,
)
from repro.harness.export import replay_to_csv, replay_to_json
from repro.harness.reporting import format_series, format_table
from repro.harness.scheduler import (
    DriftTriggeredPolicy,
    PeriodicPolicy,
    scheduled_replay,
)

__all__ = [
    "DesignerRun",
    "DriftTriggeredPolicy",
    "PeriodicPolicy",
    "ReplayResult",
    "WindowOutcome",
    "beneficial_queries",
    "format_series",
    "format_table",
    "replay",
    "replay_to_csv",
    "replay_to_json",
    "scheduled_replay",
]
