"""The windowed design→evaluate replay loop (paper Section 6.1).

Queries are split into fixed windows ``W_0, W_1, …``; at the end of each
window every designer produces a design from ``W_i`` (the oracle
:class:`~repro.designers.future_knowing.FutureKnowingDesigner` gets
``W_{i+1}`` instead), and the design is evaluated on ``W_{i+1}``.
Reported numbers are the per-window average and maximum query latencies,
averaged over all windows — exactly the bars of Figures 7, 10, and 15.

Evaluation is restricted to *beneficial* queries: the paper keeps only
queries "for which there existed an ideal design (no matter how expensive)
that could improve on their bare table-scan latency by at least a factor
of 3×" (515 of R1's 15.5K parseable queries).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.costing.service import workload_fingerprint
from repro.designers.base import DesignAdapter, Designer
from repro.obs import tracer
from repro.serve.sources import QuerySource, as_windows
from repro.state import (
    RunCheckpointer,
    costing_state,
    designer_state,
    restore_costing,
    restore_designer,
    run_key,
)
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

#: The paper's benefit threshold for including a query in the evaluation.
BENEFIT_FACTOR = 3.0


def beneficial_queries(
    adapter: DesignAdapter,
    candidate_source,
    workload: Workload,
    factor: float = BENEFIT_FACTOR,
) -> Workload:
    """Queries whose ideal dedicated structure beats the bare scan ≥ ``factor``×.

    ``candidate_source`` is any object with a ``generate_candidates``
    method (a nominal designer); the ideal cost of a query is its best cost
    across the candidates generated for that query alone.
    """
    parseable: list[tuple[WorkloadQuery, object]] = []
    for query in workload.collapsed():
        try:
            profile = adapter.profile(query.sql)
        except ValueError:
            continue
        parseable.append((query, profile))
    if not parseable:
        return Workload([])
    # One batched sweep prices every base cost (vectorized when the
    # costing service has a kernel for this substrate); the per-query
    # candidate matrices below reuse the same compiled machinery.
    (base_report,) = adapter.workload_costs_batch(
        [adapter.empty_design()], [query.sql for query, _ in parseable]
    )
    service = adapter.costing
    kernel = getattr(service, "kernel", None)
    kept: list[WorkloadQuery] = []
    for (query, profile), base in zip(parseable, base_report.per_query_ms):
        candidates = candidate_source.generate_candidates(Workload([query]))
        if kernel is not None and candidates:
            _, matrix = service.candidate_costs(
                [profile], candidates, adapter.make_design
            )
            # Unservable cells are inf and off-table cells equal the base
            # cost, so folding in ``base`` reproduces the scalar minimum.
            best = min(base, float(matrix[:, 0].min()))
        else:
            best = base
            for candidate in candidates:
                single = adapter.make_design([candidate])
                cost = adapter.query_cost(profile, single)
                if cost < best:
                    best = cost
        if best > 0 and base / best >= factor:
            kept.append(query)
    return Workload(kept)


@dataclass
class WindowOutcome:
    """One designer's result on one train→test window transition."""

    window_index: int
    average_ms: float
    max_ms: float
    design_seconds: float
    design_price_bytes: int
    structure_count: int
    #: Query-cost evaluations this designer requested for this window
    #: (duplicates collapsed by the batched API counted back in).
    query_cost_calls: int = 0
    #: Raw cost-model invocations actually paid (cache misses only).
    raw_cost_model_calls: int = 0
    #: Fraction of lookups served from the evaluation service's cache.
    cache_hit_rate: float = 0.0
    #: Per-query observed costs under the window's active design
    #: (``sql -> ms``).  Recorded only for online-learning designers
    #: (``learns_online``) — it is the reward signal their ``observe``
    #: hook consumes — so checkpoint sizes for the classic zoo stay flat.
    observed_query_ms: dict[str, float] | None = None


@dataclass
class DesignerRun:
    """All window outcomes for one designer."""

    name: str
    windows: list[WindowOutcome] = field(default_factory=list)
    #: Designer-reported counters (``designer.stats()``), refreshed after
    #: every window; ``None`` for designers that report none.  The bandit
    #: surfaces its rounds/observations/safety-fallback counts and model
    #: digest here, and they travel through backend fan-out intact.
    stats: dict | None = None

    @property
    def mean_average_ms(self) -> float:
        """Average latency, averaged over windows (the paper's "Avg")."""
        if not self.windows:
            return 0.0
        return sum(w.average_ms for w in self.windows) / len(self.windows)

    @property
    def mean_max_ms(self) -> float:
        """Max latency, averaged over windows (the paper's "Max")."""
        if not self.windows:
            return 0.0
        return sum(w.max_ms for w in self.windows) / len(self.windows)

    @property
    def mean_design_seconds(self) -> float:
        """Wall-clock designer time per window (Figure 14's design bar)."""
        if not self.windows:
            return 0.0
        return sum(w.design_seconds for w in self.windows) / len(self.windows)

    @property
    def total_query_cost_calls(self) -> int:
        """Designer effort: query-cost evaluations across all windows."""
        return sum(w.query_cost_calls for w in self.windows)

    @property
    def total_raw_cost_model_calls(self) -> int:
        """Raw cost-model invocations actually paid across all windows."""
        return sum(w.raw_cost_model_calls for w in self.windows)

    @property
    def mean_cache_hit_rate(self) -> float:
        """Average per-window cache hit rate (0 when uninstrumented)."""
        if not self.windows:
            return 0.0
        return sum(w.cache_hit_rate for w in self.windows) / len(self.windows)


@dataclass
class ReplayResult:
    """Replay outcomes for a set of designers over one trace."""

    workload_name: str
    runs: dict[str, DesignerRun] = field(default_factory=dict)
    evaluated_query_counts: list[int] = field(default_factory=list)

    def run(self, name: str) -> DesignerRun:
        return self.runs[name]

    def speedup(self, baseline: str, target: str) -> tuple[float, float]:
        """(avg, max) latency improvement factors of ``target`` over
        ``baseline``."""
        base = self.runs[baseline]
        other = self.runs[target]
        avg = base.mean_average_ms / other.mean_average_ms if other.mean_average_ms else float("inf")
        mx = base.mean_max_ms / other.mean_max_ms if other.mean_max_ms else float("inf")
        return avg, mx


def replay(
    windows: "QuerySource | list[Workload]",
    designers: dict[str, Designer],
    adapter: DesignAdapter,
    candidate_source=None,
    benefit_factor: float = BENEFIT_FACTOR,
    workload_name: str = "workload",
    max_transitions: int | None = None,
    skip_transitions: int = 0,
    before_transition=None,
    checkpointer: RunCheckpointer | None = None,
    state_key: str | None = None,
) -> ReplayResult:
    """Run the full replay; see the module docstring for the protocol.

    ``windows`` is a bounded :class:`~repro.serve.sources.QuerySource`
    (typically a :class:`~repro.serve.sources.TraceSource` carrying its
    window length).  Passing a raw ``list[Workload]`` still works but is
    deprecated — batch and serve share one source-of-queries abstraction.

    ``candidate_source`` (a nominal designer) drives the beneficial-query
    filter; pass ``None`` to evaluate on every parseable query.

    ``skip_transitions`` drops the first transitions from the evaluation —
    the trace generators model recurring workloads, so early windows have
    no history for anyone to exploit and would only add noise.

    ``before_transition(i, train, test)`` is called before each transition;
    experiments use it to refresh sampler pools with only-past queries (so
    neighborhood sampling never peeks at the future).

    ``checkpointer`` snapshots the partial result after every completed
    window transition (plus each designer's sampler stream and the warm
    cost cache) and resumes from the latest snapshot; a resumed replay is
    bit-identical to an uninterrupted one (docs/state.md).  ``state_key``
    overrides the derived run-identity key when the caller already knows
    its run configuration digest.
    """
    windows = as_windows(windows)
    if checkpointer is not None and state_key is None:
        state_key = run_key(
            "replay",
            workload_name,
            sorted(designers),
            benefit_factor,
            max_transitions,
            skip_transitions,
            # Windows are Workload containers, so the fingerprints are
            # identity-memoized (same digest as hashing the query list).
            [workload_fingerprint(window) for window in windows],
        )
    state = (
        checkpointer.load("replay", state_key) if checkpointer is not None else None
    )
    if state is not None:
        result = state["result"]
        for name, designer in designers.items():
            restore_designer(designer, state["designers"].get(name))
        restore_costing(adapter, state["costing"])
        start = state["next_transition"]
    else:
        result = ReplayResult(workload_name=workload_name)
        for name in designers:
            result.runs[name] = DesignerRun(name=name)
        start = skip_transitions

    transitions = len(windows) - 1
    if max_transitions is not None:
        transitions = min(transitions, skip_transitions + max_transitions)

    for i in range(start, transitions):
        train, test = windows[i], windows[i + 1]
        if not train or not test:
            continue
        if before_transition is not None:
            before_transition(i, train, test)
        if candidate_source is not None:
            evaluation = beneficial_queries(
                adapter, candidate_source, test, benefit_factor
            )
        else:
            evaluation = test.collapsed()
        if not evaluation:
            continue
        # One arena compile serves every designer's evaluation pass on
        # this window (the costing service binds it per design).
        prepare = getattr(getattr(adapter, "costing", None), "prepare_workload", None)
        if prepare is not None:
            prepare(evaluation)
        result.evaluated_query_counts.append(len(evaluation))
        t = tracer()
        if t.enabled:
            t.emit(
                "window",
                workload=workload_name,
                index=i,
                train_queries=len(train),
                evaluated_queries=len(evaluation),
            )
        for name, designer in designers.items():
            input_window = test if getattr(designer, "is_oracle", False) else train
            service = getattr(adapter, "costing", None)
            baseline = service.stats.snapshot() if service is not None else None
            started = time.perf_counter()
            design = designer.design(input_window)
            design_seconds = time.perf_counter() - started
            report = adapter.workload_cost(evaluation, design)
            if service is not None:
                delta = service.stats.since(baseline)
                query_calls = delta.query_requests + delta.dedup_saved
                raw_calls = delta.raw_model_calls
                hit_rate = delta.hit_rate
            else:
                query_calls = raw_calls = 0
                hit_rate = 0.0
            outcome = WindowOutcome(
                window_index=i,
                average_ms=report.average_ms,
                max_ms=report.max_ms,
                design_seconds=design_seconds,
                design_price_bytes=adapter.design_price(design),
                structure_count=len(adapter.structures(design)),
                query_cost_calls=query_calls,
                raw_cost_model_calls=raw_calls,
                cache_hit_rate=hit_rate,
            )
            if getattr(designer, "learns_online", False):
                # The observed per-query costs are the learner's reward
                # signal; the evaluation pass just priced them, so this
                # drains the memo cache (outside the effort delta above,
                # keeping the classic counters unchanged).
                observed: dict[str, float] = {}
                for query in evaluation:
                    try:
                        profile = adapter.profile(query.sql)
                    except ValueError:
                        continue
                    observed[query.sql] = adapter.query_cost(profile, design)
                outcome.observed_query_ms = observed
                designer.observe(evaluation, design, observed)
            result.runs[name].windows.append(outcome)
            stats = getattr(designer, "stats", None)
            if callable(stats):
                result.runs[name].stats = stats()
            if t.enabled:
                t.emit(
                    "redesign",
                    workload=workload_name,
                    window=i,
                    designer=name,
                    avg_ms=outcome.average_ms,
                    max_ms=outcome.max_ms,
                    price_bytes=outcome.design_price_bytes,
                    structures=outcome.structure_count,
                    seconds=design_seconds,
                )
        if checkpointer is not None:
            checkpointer.step(
                "replay",
                state_key,
                lambda: {
                    "next_transition": i + 1,
                    "result": result,
                    "designers": {
                        name: designer_state(d) for name, d in designers.items()
                    },
                    "costing": costing_state(adapter),
                },
            )
    return result
