"""Re-design scheduling: how often must the database be re-designed?

The paper's introduction argues (claim (d)) that "a robust design can
significantly reduce operational costs by requiring less frequent database
re-designs", and its Section 6.4 notes the nominal designer's slight edge
over NoDesign "would quickly fade away if the database were to be
re-designed less frequently".  This module makes that claim executable:

* :class:`PeriodicPolicy` — re-design every N windows (the paper's monthly
  tuning practice is ``every=1``),
* :class:`DriftTriggeredPolicy` — re-design only when the workload has
  drifted more than a δ threshold since the design was built (what a
  drift-aware DBA would do),
* :func:`scheduled_replay` — replay a trace under a policy, accounting for
  both query latency and the (dominant, Figure 14) deployment cost of each
  re-design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.designers.base import DesignAdapter, Designer
from repro.workload.workload import Workload


class RedesignPolicy(abc.ABC):
    """Decides, at each window boundary, whether to re-design."""

    @abc.abstractmethod
    def should_redesign(
        self, window_index: int, design_window: Workload | None, current: Workload
    ) -> bool:
        """``design_window`` is the workload the active design was built
        for (``None`` before the first design)."""


class PeriodicPolicy(RedesignPolicy):
    """Re-design every ``every`` windows (the classic monthly re-tune)."""

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every

    def should_redesign(self, window_index, design_window, current):
        if design_window is None:
            return True
        return window_index % self.every == 0


class DriftTriggeredPolicy(RedesignPolicy):
    """Re-design when δ(design workload, current workload) exceeds a
    threshold — drift-aware operations."""

    def __init__(self, distance, threshold: float):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.distance = distance
        self.threshold = threshold
        self.triggers: list[int] = []

    def should_redesign(self, window_index, design_window, current):
        if design_window is None:
            return True
        if self.distance(design_window, current) > self.threshold:
            self.triggers.append(window_index)
            return True
        return False


@dataclass
class ScheduleOutcome:
    """Result of one scheduled replay."""

    designer: str
    per_window_avg_ms: list[float] = field(default_factory=list)
    redesign_windows: list[int] = field(default_factory=list)
    total_deployment_seconds: float = 0.0

    @property
    def redesign_count(self) -> int:
        return len(self.redesign_windows)

    @property
    def mean_average_ms(self) -> float:
        if not self.per_window_avg_ms:
            return 0.0
        return sum(self.per_window_avg_ms) / len(self.per_window_avg_ms)


#: Deployment throughput (matches repro.engine.design.DEPLOY_SECONDS_PER_GB).
DEPLOY_SECONDS_PER_GB = 360.0


def scheduled_replay(
    windows: list[Workload],
    designer: Designer,
    adapter: DesignAdapter,
    policy: RedesignPolicy,
    evaluation_windows: list[Workload] | None = None,
    before_design=None,
) -> ScheduleOutcome:
    """Replay ``windows`` re-designing only when ``policy`` says so.

    The design built from window ``i`` serves window ``i+1`` (and later
    windows until the next re-design).  ``evaluation_windows`` optionally
    substitutes filtered workloads for latency measurement.
    ``before_design(i)`` is called before each re-design (e.g. to refresh
    sampler pools).
    """
    outcome = ScheduleOutcome(designer=designer.name)
    evaluation = evaluation_windows or windows
    design = None
    design_window: Workload | None = None
    for i in range(len(windows) - 1):
        train, test = windows[i], evaluation[i + 1]
        if not train or not test:
            continue
        if policy.should_redesign(i, design_window, train):
            if before_design is not None:
                before_design(i)
            design = designer.design(train)
            design_window = train
            outcome.redesign_windows.append(i)
            outcome.total_deployment_seconds += (
                adapter.design_price(design) / 1e9 * DEPLOY_SECONDS_PER_GB
            )
        outcome.per_window_avg_ms.append(
            adapter.workload_cost(test, design).average_ms
        )
    return outcome
