"""Re-design scheduling: how often must the database be re-designed?

The paper's introduction argues (claim (d)) that "a robust design can
significantly reduce operational costs by requiring less frequent database
re-designs", and its Section 6.4 notes the nominal designer's slight edge
over NoDesign "would quickly fade away if the database were to be
re-designed less frequently".  This module makes that claim executable:

* :class:`PeriodicPolicy` — re-design every N windows (the paper's monthly
  tuning practice is ``every=1``),
* :class:`DriftTriggeredPolicy` — re-design only when the workload has
  drifted more than a δ threshold since the design was built (what a
  drift-aware DBA would do),
* :func:`scheduled_replay` — replay a trace under a policy, accounting for
  both query latency and the (dominant, Figure 14) deployment cost of each
  re-design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.designers.base import DesignAdapter, Designer
from repro.obs import tracer
from repro.workload.workload import Workload


class RedesignPolicy(abc.ABC):
    """Decides, at each window boundary, whether to re-design."""

    @abc.abstractmethod
    def should_redesign(
        self, window_index: int, design_window: Workload | None, current: Workload
    ) -> bool:
        """``design_window`` is the workload the active design was built
        for (``None`` before the first design)."""

    def reset(self) -> None:
        """Forget any per-replay state (anchors, trigger logs).

        :func:`scheduled_replay` calls this before every replay so one
        policy object can be reused across runs without leaking state
        from the previous trace.
        """


class PeriodicPolicy(RedesignPolicy):
    """Re-design every ``every`` windows (the classic monthly re-tune).

    The period is anchored at the **last re-design**, not at window 0:
    when the leading windows of a trace are empty (``scheduled_replay``
    skips them without consulting the policy), anchoring at zero would
    silently shorten the first period — e.g. with ``every=4`` and the
    first design at window 3, a ``window_index % every`` rule would
    re-design again at window 4.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self._last_redesign: int | None = None

    def reset(self) -> None:
        self._last_redesign = None

    def should_redesign(self, window_index, design_window, current):
        if design_window is None or self._last_redesign is None:
            self._last_redesign = window_index
            return True
        if window_index - self._last_redesign >= self.every:
            self._last_redesign = window_index
            return True
        return False


class DriftTriggeredPolicy(RedesignPolicy):
    """Re-design when δ(design workload, current workload) exceeds a
    threshold — drift-aware operations.

    ``triggers`` records the window indices that fired since the last
    :meth:`reset`; :func:`scheduled_replay` resets per replay (and
    copies the triggers onto its :class:`ScheduleOutcome`), so a policy
    object reused across replays never mixes trigger indices from
    different runs.
    """

    def __init__(self, distance, threshold: float):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.distance = distance
        self.threshold = threshold
        self.triggers: list[int] = []

    def reset(self) -> None:
        self.triggers = []

    def should_redesign(self, window_index, design_window, current):
        if design_window is None:
            return True
        if self.distance(design_window, current) > self.threshold:
            self.triggers.append(window_index)
            return True
        return False


@dataclass
class ScheduleOutcome:
    """Result of one scheduled replay."""

    designer: str
    per_window_avg_ms: list[float] = field(default_factory=list)
    redesign_windows: list[int] = field(default_factory=list)
    total_deployment_seconds: float = 0.0
    #: Window indices where a drift-triggered policy fired during *this*
    #: replay (empty for policies without triggers, e.g. periodic).
    drift_triggers: list[int] = field(default_factory=list)

    @property
    def redesign_count(self) -> int:
        return len(self.redesign_windows)

    @property
    def mean_average_ms(self) -> float:
        if not self.per_window_avg_ms:
            return 0.0
        return sum(self.per_window_avg_ms) / len(self.per_window_avg_ms)


#: Deployment throughput (matches repro.engine.design.DEPLOY_SECONDS_PER_GB).
DEPLOY_SECONDS_PER_GB = 360.0


def scheduled_replay(
    windows: list[Workload],
    designer: Designer,
    adapter: DesignAdapter,
    policy: RedesignPolicy,
    evaluation_windows: list[Workload] | None = None,
    before_design=None,
) -> ScheduleOutcome:
    """Replay ``windows`` re-designing only when ``policy`` says so.

    The design built from window ``i`` serves window ``i+1`` (and later
    windows until the next re-design).  ``evaluation_windows`` optionally
    substitutes filtered workloads for latency measurement.
    ``before_design(i)`` is called before each re-design (e.g. to refresh
    sampler pools).

    The policy's per-replay state (period anchor, drift-trigger log) is
    reset on entry, so one policy object can drive several replays; the
    triggers a :class:`DriftTriggeredPolicy` fired during *this* replay
    are returned on the outcome's ``drift_triggers``.
    """
    outcome = ScheduleOutcome(designer=designer.name)
    policy.reset()
    evaluation = evaluation_windows or windows
    design = None
    design_window: Workload | None = None
    t = tracer()
    for i in range(len(windows) - 1):
        train, test = windows[i], evaluation[i + 1]
        if not train or not test:
            continue
        if policy.should_redesign(i, design_window, train):
            if before_design is not None:
                before_design(i)
            design = designer.design(train)
            design_window = train
            outcome.redesign_windows.append(i)
            deployment = adapter.design_price(design) / 1e9 * DEPLOY_SECONDS_PER_GB
            outcome.total_deployment_seconds += deployment
            if t.enabled:
                t.emit(
                    "redesign",
                    designer=designer.name,
                    window=i,
                    policy=type(policy).__name__,
                    deployment_seconds=deployment,
                )
        average_ms = adapter.workload_cost(test, design).average_ms
        outcome.per_window_avg_ms.append(average_ms)
        if t.enabled:
            t.emit(
                "window",
                designer=designer.name,
                index=i,
                avg_ms=average_ms,
                redesigned=bool(outcome.redesign_windows)
                and outcome.redesign_windows[-1] == i,
            )
    outcome.drift_triggers = list(getattr(policy, "triggers", ()))
    return outcome
