"""Re-design scheduling: how often must the database be re-designed?

The paper's introduction argues (claim (d)) that "a robust design can
significantly reduce operational costs by requiring less frequent database
re-designs", and its Section 6.4 notes the nominal designer's slight edge
over NoDesign "would quickly fade away if the database were to be
re-designed less frequently".  This module makes that claim executable:

* :class:`PeriodicPolicy` — re-design every N windows (the paper's monthly
  tuning practice is ``every=1``),
* :class:`DriftTriggeredPolicy` — re-design only when the workload has
  drifted more than a δ threshold since the design was built (what a
  drift-aware DBA would do),
* :func:`scheduled_replay` — replay a trace under a policy, accounting for
  both query latency and the (dominant, Figure 14) deployment cost of each
  re-design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.costing.service import workload_fingerprint
from repro.designers.base import DesignAdapter, Designer
from repro.obs import tracer
from repro.serve.sources import QuerySource, as_windows
from repro.state import (
    RunCheckpointer,
    costing_state,
    designer_state,
    restore_costing,
    restore_designer,
    run_key,
)
from repro.workload.workload import Workload


class RedesignPolicy(abc.ABC):
    """Decides, at each window boundary, whether to re-design."""

    @abc.abstractmethod
    def should_redesign(
        self, window_index: int, design_window: Workload | None, current: Workload
    ) -> bool:
        """``design_window`` is the workload the active design was built
        for (``None`` before the first design)."""

    def reset(self) -> None:
        """Forget any per-replay state (anchors, trigger logs).

        :func:`scheduled_replay` calls this before every replay so one
        policy object can be reused across runs without leaking state
        from the previous trace.
        """

    def state(self) -> dict:
        """Snapshot the per-replay state :meth:`reset` would clear.

        Checkpoint/resume (docs/state.md) persists this mid-replay so a
        resumed :func:`scheduled_replay` makes the same re-design
        decisions the uninterrupted run would have.  Stateless policies
        return an empty dict.
        """
        return {}

    def restore(self, state: dict) -> None:
        """Restore what :meth:`state` captured."""


class PeriodicPolicy(RedesignPolicy):
    """Re-design every ``every`` windows (the classic monthly re-tune).

    The period is anchored at the **last re-design**, not at window 0:
    when the leading windows of a trace are empty (``scheduled_replay``
    skips them without consulting the policy), anchoring at zero would
    silently shorten the first period — e.g. with ``every=4`` and the
    first design at window 3, a ``window_index % every`` rule would
    re-design again at window 4.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self._last_redesign: int | None = None

    def reset(self) -> None:
        self._last_redesign = None

    def state(self) -> dict:
        return {"last_redesign": self._last_redesign}

    def restore(self, state: dict) -> None:
        self._last_redesign = state["last_redesign"]

    def should_redesign(self, window_index, design_window, current):
        if design_window is None or self._last_redesign is None:
            self._last_redesign = window_index
            return True
        if window_index - self._last_redesign >= self.every:
            self._last_redesign = window_index
            return True
        return False


class DriftTriggeredPolicy(RedesignPolicy):
    """Re-design when δ(design workload, current workload) exceeds a
    threshold — drift-aware operations.

    ``triggers`` records the window indices that fired since the last
    :meth:`reset`; :func:`scheduled_replay` resets per replay (and
    copies the triggers onto its :class:`ScheduleOutcome`), so a policy
    object reused across replays never mixes trigger indices from
    different runs.
    """

    def __init__(self, distance, threshold: float):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.distance = distance
        self.threshold = threshold
        self.triggers: list[int] = []

    def reset(self) -> None:
        self.triggers = []

    def state(self) -> dict:
        return {"triggers": list(self.triggers)}

    def restore(self, state: dict) -> None:
        self.triggers = list(state["triggers"])

    def should_redesign(self, window_index, design_window, current):
        if design_window is None:
            return True
        if self.distance(design_window, current) > self.threshold:
            self.triggers.append(window_index)
            return True
        return False


@dataclass
class ScheduleOutcome:
    """Result of one scheduled replay."""

    designer: str
    per_window_avg_ms: list[float] = field(default_factory=list)
    redesign_windows: list[int] = field(default_factory=list)
    total_deployment_seconds: float = 0.0
    #: Window indices where a drift-triggered policy fired during *this*
    #: replay (empty for policies without triggers, e.g. periodic).
    drift_triggers: list[int] = field(default_factory=list)

    @property
    def redesign_count(self) -> int:
        return len(self.redesign_windows)

    @property
    def mean_average_ms(self) -> float:
        if not self.per_window_avg_ms:
            return 0.0
        return sum(self.per_window_avg_ms) / len(self.per_window_avg_ms)


#: Deployment throughput (matches repro.engine.design.DEPLOY_SECONDS_PER_GB).
DEPLOY_SECONDS_PER_GB = 360.0


def scheduled_replay(
    windows: "QuerySource | list[Workload]",
    designer: Designer,
    adapter: DesignAdapter,
    policy: RedesignPolicy,
    evaluation_windows: list[Workload] | None = None,
    before_design=None,
    checkpointer: RunCheckpointer | None = None,
    state_key: str | None = None,
) -> ScheduleOutcome:
    """Replay ``windows`` re-designing only when ``policy`` says so.

    ``windows`` is a bounded :class:`~repro.serve.sources.QuerySource`
    (a raw ``list[Workload]`` still works but is deprecated; wrap fixed
    traces in :class:`~repro.serve.sources.TraceSource`).

    The design built from window ``i`` serves window ``i+1`` (and later
    windows until the next re-design).  ``evaluation_windows`` optionally
    substitutes filtered workloads for latency measurement; when given it
    must pair with ``windows`` one-to-one (``evaluation_windows[i + 1]``
    measures the design serving window ``i + 1``).

    ``before_design(i)`` is called before each re-design (e.g. to refresh
    sampler pools).

    The policy's per-replay state (period anchor, drift-trigger log) is
    reset on entry, so one policy object can drive several replays; the
    triggers a :class:`DriftTriggeredPolicy` fired during *this* replay
    are returned on the outcome's ``drift_triggers``.

    ``checkpointer`` snapshots the partial outcome (plus the active
    design, the policy anchor, the designer's sampler stream, and the
    warm cost cache) after every completed window and resumes from the
    latest snapshot, bit-identically (docs/state.md).
    """
    windows = as_windows(windows)
    if evaluation_windows is None:
        evaluation = windows
    else:
        # An explicit `is None` check: a caller passing an empty list has
        # made an indexing error, not requested the unfiltered windows —
        # the old `evaluation_windows or windows` fallback silently
        # evaluated on the wrong workloads.
        if len(evaluation_windows) != len(windows):
            raise ValueError(
                "evaluation_windows must pair with windows one-to-one: "
                f"got {len(evaluation_windows)} evaluation windows for "
                f"{len(windows)} replay windows"
            )
        evaluation = evaluation_windows
    if checkpointer is not None and state_key is None:
        state_key = run_key(
            "scheduled_replay",
            designer.name,
            type(policy).__name__,
            getattr(policy, "every", None),
            getattr(policy, "threshold", None),
            # Workload containers fingerprint identity-memoized; digest
            # unchanged, so existing checkpoint keys stay valid.
            [workload_fingerprint(window) for window in windows],
            evaluation_windows is not None,
        )
    policy.reset()
    state = (
        checkpointer.load("scheduled_replay", state_key)
        if checkpointer is not None
        else None
    )
    if state is not None:
        outcome = state["outcome"]
        design = state["design"]
        design_window = state["design_window"]
        policy.restore(state["policy"])
        restore_designer(designer, state["designer"])
        restore_costing(adapter, state["costing"])
        start = state["next_window"]
    else:
        outcome = ScheduleOutcome(designer=designer.name)
        design = None
        design_window = None
        start = 0
    t = tracer()
    for i in range(start, len(windows) - 1):
        train, test = windows[i], evaluation[i + 1]
        if not train or not test:
            continue
        if policy.should_redesign(i, design_window, train):
            if before_design is not None:
                before_design(i)
            design = designer.design(train)
            design_window = train
            outcome.redesign_windows.append(i)
            deployment = adapter.design_price(design) / 1e9 * DEPLOY_SECONDS_PER_GB
            outcome.total_deployment_seconds += deployment
            if t.enabled:
                t.emit(
                    "redesign",
                    designer=designer.name,
                    window=i,
                    policy=type(policy).__name__,
                    deployment_seconds=deployment,
                )
        # Pre-warm the window's arena: repeated policy evaluations of the
        # same test window bind against one compiled query side.
        prepare = getattr(getattr(adapter, "costing", None), "prepare_workload", None)
        if prepare is not None:
            prepare(test)
        average_ms = adapter.workload_cost(test, design).average_ms
        outcome.per_window_avg_ms.append(average_ms)
        if t.enabled:
            t.emit(
                "window",
                designer=designer.name,
                index=i,
                avg_ms=average_ms,
                redesigned=bool(outcome.redesign_windows)
                and outcome.redesign_windows[-1] == i,
            )
        if checkpointer is not None:
            checkpointer.step(
                "scheduled_replay",
                state_key,
                lambda next_window=i + 1: {
                    "next_window": next_window,
                    "outcome": outcome,
                    "design": design,
                    "design_window": design_window,
                    "policy": policy.state(),
                    "designer": designer_state(designer),
                    "costing": costing_state(adapter),
                },
            )
    outcome.drift_triggers = list(getattr(policy, "triggers", ()))
    return outcome
