"""One entry point per paper table and figure.

Every function takes an :class:`ExperimentScale` so the same code runs at
bench scale (fast, seeded) or closer to the paper's full scale.  Results
are structured objects plus rendered text (see
:mod:`repro.harness.reporting`); the benchmark files under ``benchmarks/``
print them.

Experiment ↔ paper mapping (see DESIGN.md §4 for the full index):

========  =======================================================
T1        Table 1 — δ statistics of R1/S1/S2
F5        Figure 5 — template-sharing decay vs window lag
F6        Figure 6 — distance-vs-performance soundness
F7        Figure 7 — designer comparison, columnar, R1/S1/S2
F8, F9    Figures 8–9 — Γ sweeps on R1 and S2
F10, F15  Figures 10, 15 — designer comparison, row store
F11       Figure 11 — distance-metric ablation
F12, F13  Figures 12–13 — sample-size and iteration sweeps
F14       Figure 14 — offline design time vs deployment time
F16       Figure 16 — δ_latency correlation at ω = 0.1 / 0.2
========  =======================================================
"""

from __future__ import annotations

import statistics as stats_module
import warnings
from dataclasses import astuple, dataclass, field

import numpy as np

from repro.core.cliffguard import CliffGuard
from repro.core.knob import drift_history, gamma_from_history
from repro.costing.service import CostEvaluationService
from repro.designers import registry
from repro.designers.base import (
    ColumnarAdapter,
    DesignAdapter,
    RowstoreAdapter,
    default_budget_bytes,
)
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.obs import tracer
from repro.parallel.backends import ExecutionBackend, resolve_backend
from repro.rowstore.optimizer import RowstoreCostModel
from repro.serve.sources import TraceSource
from repro.state import (
    CheckpointMismatchError,
    RunCheckpointer,
    costing_state,
    restore_costing,
    run_key,
)
from repro.workload.distance import SWGO, LatencyAwareDistance, WorkloadDistance
from repro.workload.families import ecommerce_profile, htap_profile, oltp_profile
from repro.workload.generator import (
    DriftProfile,
    TraceGenerator,
    build_star_schema,
    r1_profile,
    s1_profile,
    s2_profile,
)
from repro.workload.query import WorkloadQuery
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.windows import shared_template_fraction, split_windows
from repro.workload.workload import Workload
from repro.harness.replay import DesignerRun, ReplayResult, replay
from repro.harness.scheduler import PeriodicPolicy, ScheduleOutcome, scheduled_replay


def __getattr__(name: str):
    # ``DESIGNER_ORDER`` moved to the designer registry; keep the old
    # module attribute working (with a nudge) for one deprecation cycle.
    if name == "DESIGNER_ORDER":
        warnings.warn(
            "repro.harness.experiments.DESIGNER_ORDER is deprecated; use "
            "repro.designers.registry.names()",
            DeprecationWarning,
            stacklevel=2,
        )
        return registry.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ExperimentScale:
    """Size knobs shared by all experiments."""

    days: int = 168
    window_days: int = 28
    queries_per_day: int = 30
    n_samples: int = 10
    iterations: int = 5
    seed: int = 42
    legacy_tables: int = 200
    #: Cap on train→test transitions per replay (None = all).
    max_transitions: int | None = None
    #: Transitions to skip at the start of every replay.  The generators
    #: model recurring workloads, so the first windows carry no history for
    #: any designer to exploit; skipping them reduces warm-up noise.
    skip_transitions: int = 3
    #: Budget as a fraction of raw data bytes (Vertica picked ~1/3).
    budget_fraction: float = 0.5


def smoke_scale() -> ExperimentScale:
    """Fast seeded scale for the benchmark suite and integration tests."""
    return ExperimentScale(
        days=196,
        queries_per_day=18,
        n_samples=12,
        max_transitions=2,
        skip_transitions=4,
    )


def paper_scale() -> ExperimentScale:
    """Closer to the paper's 12-month trace and n = 20 samples."""
    return ExperimentScale(days=364, queries_per_day=40, n_samples=20)


# -- shared context ------------------------------------------------------------------


@dataclass
class ExperimentContext:
    """Schema, traces, windows, and distance shared by the experiments."""

    scale: ExperimentScale
    schema: object = None
    roles: object = None
    distance: WorkloadDistance = None
    traces: dict[str, list[WorkloadQuery]] = field(default_factory=dict)
    windows: dict[str, list[Workload]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.schema, self.roles = build_star_schema(
            legacy_tables=self.scale.legacy_tables
        )
        self.distance = WorkloadDistance(self.schema.total_columns)

    def profile_for(self, name: str) -> DriftProfile:
        factories = {
            "R1": r1_profile,
            "S1": s1_profile,
            "S2": s2_profile,
            "OLTP": oltp_profile,
            "ECOMMERCE": ecommerce_profile,
            "HTAP": htap_profile,
        }
        return factories[name](queries_per_day=self.scale.queries_per_day)

    def trace(self, name: str) -> list[WorkloadQuery]:
        if name not in self.traces:
            generator = TraceGenerator(
                self.schema, self.roles, self.profile_for(name), seed=self.scale.seed
            )
            self.traces[name] = generator.generate(days=self.scale.days)
        return self.traces[name]

    def trace_windows(self, name: str) -> list[Workload]:
        if name not in self.windows:
            self.windows[name] = split_windows(
                self.trace(name), self.scale.window_days
            )
        return self.windows[name]

    def default_gamma(self, name: str) -> float:
        """The paper's simplest knob strategy: average past drift."""
        history = drift_history(self.trace_windows(name), self.distance)
        return gamma_from_history(history, strategy="avg")

    def window_source(self, name: str) -> TraceSource:
        """The trace wrapped as a bounded :class:`QuerySource`.

        The source carries the cached window list verbatim, so harness
        calls taking a source produce bit-identical windows to the old
        raw-list signature.
        """
        return TraceSource.from_windows(
            self.trace_windows(name), window_days=self.scale.window_days
        )

    # -- engine stacks -----------------------------------------------------------

    def columnar_adapter(
        self, backend: ExecutionBackend | str | None = None
    ) -> ColumnarAdapter:
        model = ColumnarCostModel(self.schema)
        return ColumnarAdapter(
            model,
            default_budget_bytes(self.schema, self.scale.budget_fraction),
            costing=self._costing(model, backend),
        )

    def rowstore_adapter(
        self, backend: ExecutionBackend | str | None = None
    ) -> RowstoreAdapter:
        # The paper gave DBMS-X a proportionally larger budget than Vertica
        # (10 GB for a 20 GB dataset vs 50 GB for 151 GB): row-store
        # structures are less byte-efficient, so the same workload needs a
        # bigger fraction of the data size.
        model = RowstoreCostModel(self.schema)
        return RowstoreAdapter(
            model,
            default_budget_bytes(
                self.schema, min(1.0, self.scale.budget_fraction * 1.6)
            ),
            costing=self._costing(model, backend),
        )

    @staticmethod
    def _costing(model, backend) -> CostEvaluationService | None:
        """A cost service with neighborhood fan-out over ``backend``
        (``None`` keeps the adapter's default serial service)."""
        if backend is None:
            return None
        return CostEvaluationService(model, backend=backend)

    def sampler(self, distance: WorkloadDistance | None = None) -> NeighborhoodSampler:
        return NeighborhoodSampler(
            distance or self.distance, self.schema, seed=self.scale.seed
        )


def _engine_stack(
    context: ExperimentContext,
    engine: str,
    backend: ExecutionBackend | str | None = None,
):
    """(adapter, nominal designer) for one engine name."""
    if engine == "columnar":
        adapter = context.columnar_adapter(backend)
        return adapter, ColumnarNominalDesigner(adapter)
    if engine == "rowstore":
        adapter = context.rowstore_adapter(backend)
        return adapter, RowstoreNominalDesigner(adapter)
    raise ValueError(f"unknown engine {engine!r}")


def _build_designers(
    context: ExperimentContext,
    adapter: DesignAdapter,
    nominal,
    gamma: float,
    which: list[str] | None = None,
    distance: WorkloadDistance | None = None,
) -> tuple[dict, list[NeighborhoodSampler]]:
    """The Section 6.1 designer zoo, built through the designer registry."""
    return registry.build_all(
        adapter,
        nominal,
        gamma,
        make_sampler=lambda: context.sampler(distance),
        which=which,
        n_samples=context.scale.n_samples,
        max_iterations=context.scale.iterations,
    )


def build_designers(
    context: ExperimentContext,
    adapter: DesignAdapter,
    nominal,
    gamma: float,
    which: list[str] | None = None,
    distance: WorkloadDistance | None = None,
) -> tuple[dict, list[NeighborhoodSampler]]:
    """Deprecated: use :mod:`repro.designers.registry` (or the
    :class:`repro.api.RobustDesignSession` facade)."""
    warnings.warn(
        "build_designers is deprecated; use repro.designers.registry.build_all "
        "or the repro.api facade",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_designers(context, adapter, nominal, gamma, which, distance)


def _past_pool_hook(trace: list[WorkloadQuery], samplers: list[NeighborhoodSampler]):
    """Replay hook: before each transition, restrict the samplers' pools to
    queries that happened strictly before the test window."""

    def hook(_index: int, _train: Workload, test: Workload) -> None:
        start, _ = test.span_days
        past = [q for q in trace if q.timestamp < start]
        for sampler in samplers:
            sampler.set_pool(past)

    return hook


# -- T1: Table 1 ------------------------------------------------------------------------


@dataclass
class Table1Row:
    workload: str
    minimum: float
    maximum: float
    average: float
    std: float


def run_table1(context: ExperimentContext) -> list[Table1Row]:
    """δ(W_i, W_{i+1}) statistics per workload (paper Table 1)."""
    rows: list[Table1Row] = []
    for name in ("R1", "S1", "S2"):
        windows = context.trace_windows(name)
        deltas = drift_history(windows, context.distance)
        rows.append(
            Table1Row(
                workload=name,
                minimum=min(deltas),
                maximum=max(deltas),
                average=stats_module.fmean(deltas),
                std=stats_module.pstdev(deltas) if len(deltas) > 1 else 0.0,
            )
        )
    return rows


# -- F5: Figure 5 ------------------------------------------------------------------------


def run_fig5(
    context: ExperimentContext,
    window_sizes: tuple[int, ...] = (7, 14, 21, 28),
    workload: str = "R1",
) -> dict[int, list[tuple[int, float]]]:
    """Shared-template fraction vs window lag, per window size."""
    trace = context.trace(workload)
    curves: dict[int, list[tuple[int, float]]] = {}
    for window_days in window_sizes:
        windows = split_windows(trace, window_days)
        points: list[tuple[int, float]] = []
        max_lag = len(windows) - 1
        for lag in range(1, max_lag + 1):
            fractions = [
                shared_template_fraction(windows[i], windows[i + lag])
                for i in range(len(windows) - lag)
            ]
            if fractions:
                points.append((lag, float(np.mean(fractions))))
        curves[window_days] = points
    return curves


# -- F6: Figure 6 ------------------------------------------------------------------------


def run_fig6(
    context: ExperimentContext,
    workload: str = "R1",
    n_probes: int = 8,
    anchors: int = 3,
    repeats: int = 3,
) -> list[tuple[float, float]]:
    """(distance from W0, avg latency on W0's design) pairs.

    For several anchor windows W0: design nominally for W0, then sample
    workloads at increasing distances and measure their latency under that
    design — the soundness experiment behind Figure 6.  Like the paper
    (which averages many windows per distance), each probe distance is
    averaged over the anchors and over ``repeats`` independent samples.
    """
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = [w for w in context.trace_windows(workload) if len(w) > 0]
    sampler = context.sampler()
    gamma = context.default_gamma(workload) * 4
    anchor_windows = windows[: max(1, min(anchors, len(windows)))]
    alphas = np.linspace(0.0, gamma, n_probes)
    sums = np.zeros((n_probes, 2))
    counts = np.zeros(n_probes)
    for anchor in anchor_windows:
        design = nominal.design(anchor)
        sampler.set_pool(
            [q for w in windows if w is not anchor for q in w]
        )
        for i, alpha in enumerate(alphas):
            for _ in range(repeats):
                probe = sampler.sample_at(anchor, float(alpha))
                achieved = context.distance(anchor, probe)
                latency = adapter.workload_cost(probe, design).average_ms
                sums[i] += (achieved, latency)
                counts[i] += 1
    points = [
        (float(sums[i][0] / counts[i]), float(sums[i][1] / counts[i]))
        for i in range(n_probes)
        if counts[i]
    ]
    points.sort(key=lambda p: p[0])
    return points


# -- F7 / F10 / F15: designer comparisons -----------------------------------------------


def run_designer_comparison(
    context: ExperimentContext,
    workload: str,
    engine: str = "columnar",
    which: list[str] | None = None,
    gamma: float | None = None,
    backend: ExecutionBackend | str | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> ReplayResult:
    """The Figure 7 / 10 / 15 experiment for one workload and engine.

    With an execution ``backend``, every designer replays as an
    independent task (its own context, adapter, and seeded sampler), so
    the comparison fans out across workers; results are bit-identical at
    any worker count because each task is deterministic given the scale's
    seed.  Without a backend the designers share one adapter (and its
    warm cost cache) exactly as before.

    ``checkpointer`` makes the comparison resumable: the serial path
    checkpoints after every window transition (through :func:`replay`);
    the backend path records completed designers and, on resume, fans
    out only the pending ones (each designer task is independent, so
    skipping finished ones is value-preserving).  See docs/state.md.
    """
    if gamma is None:
        gamma = context.default_gamma(workload)
    # Duplicate or unknown names would double-run designers and corrupt
    # the name-keyed resume dict below; reject them before any work.
    names = registry.validate_names(which) if which is not None else registry.names()
    state_key = run_key(
        "designer_comparison",
        astuple(context.scale),
        workload,
        engine,
        tuple(names),
        gamma,
    )
    executor = resolve_backend(backend)
    if executor is None:
        adapter, nominal = _engine_stack(context, engine)
        designers, samplers = _build_designers(context, adapter, nominal, gamma, which)
        return replay(
            context.window_source(workload),
            designers,
            adapter,
            candidate_source=nominal,
            workload_name=workload,
            max_transitions=context.scale.max_transitions,
            skip_transitions=context.scale.skip_transitions,
            before_transition=_past_pool_hook(context.trace(workload), samplers),
            checkpointer=checkpointer,
            state_key=state_key,
        )
    done: dict[str, DesignerRun] = {}
    counts: list[int] = []
    if checkpointer is not None:
        state = checkpointer.load("designer_comparison", state_key)
        if state is not None:
            done = state["runs"]
            counts = state["counts"]
            # The run key covers the requested names, but a forged or
            # hand-moved snapshot could still carry designers this call
            # never asked for; replaying them into the result would be
            # silent corruption, so reject loudly instead.
            stale = sorted(set(done) - set(names))
            if stale:
                raise CheckpointMismatchError(
                    f"designer_comparison resume: snapshot contains designers "
                    f"{stale} not in the requested selection {list(names)}"
                )
    pending = [name for name in names if name not in done]
    tasks = [(context.scale, workload, engine, name, gamma) for name in pending]
    result = ReplayResult(workload_name=workload)
    t = tracer()
    for name, run, task_counts in executor.map(_designer_comparison_task, tasks):
        done[name] = run
        # Every designer replays the identical window sequence, so the
        # evaluated-query counts are a per-designer invariant; adopting
        # the first task's list and trusting the rest would let a
        # divergent replay slip through unnoticed.
        if not counts:
            counts = task_counts
        elif task_counts != counts:
            raise RuntimeError(
                f"designer_comparison: evaluated-query counts diverged for "
                f"{name!r}: expected {counts}, task produced {task_counts} — "
                "designer tasks no longer replay identical windows"
            )
        if t.enabled:
            # Worker processes carry the null tracer, so fanned-out
            # replays surface here as one summary event per designer.
            t.emit(
                "designer_result",
                workload=workload,
                engine=engine,
                designer=name,
                avg_ms=run.mean_average_ms,
                max_ms=run.mean_max_ms,
            )
    if checkpointer is not None and pending:
        checkpointer.step(
            "designer_comparison",
            state_key,
            lambda: {"runs": done, "counts": counts},
        )
    result.runs = {name: done[name] for name in names if name in done}
    result.evaluated_query_counts = counts
    return result


def _designer_comparison_task(task) -> tuple[str, DesignerRun, list[int]]:
    """One designer's full replay (module-level: process-backend task).

    Rebuilds the experiment context from the scale — deterministic given
    the scale's seed, so the replay is bit-identical to the same designer's
    run in the serial loop.
    """
    scale, workload, engine, name, gamma = task
    context = ExperimentContext(scale)
    adapter, nominal = _engine_stack(context, engine)
    designers, samplers = _build_designers(context, adapter, nominal, gamma, which=[name])
    outcome = replay(
        context.window_source(workload),
        designers,
        adapter,
        candidate_source=nominal,
        workload_name=workload,
        max_transitions=scale.max_transitions,
        skip_transitions=scale.skip_transitions,
        before_transition=_past_pool_hook(context.trace(workload), samplers),
    )
    return name, outcome.runs[name], outcome.evaluated_query_counts


# -- F8 / F9: the Γ sweep ---------------------------------------------------------------


def run_gamma_sweep(
    context: ExperimentContext,
    workload: str,
    gammas: list[float] | None = None,
    backend: ExecutionBackend | str | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> dict[float, tuple[float, float]]:
    """CliffGuard's (avg, max) latency per Γ; Γ = 0 is the nominal case.

    With an execution ``backend``, every Γ replays as an independent task
    (its own context and seeded sampler) — the per-Γ runs were already
    independent in the serial loop, so fanning them out is value-preserving
    at any worker count.

    ``checkpointer`` makes the sweep resumable at Γ-point granularity:
    completed Γ-points are recorded after each replay (the serial path
    also snapshots the shared adapter's warm cost cache, so a resumed
    sweep's effort counters match the uninterrupted run); on resume only
    pending Γ-points run.  See docs/state.md.
    """
    base_gamma = context.default_gamma(workload)
    if gammas is None:
        gammas = [0.0, 0.25 * base_gamma, base_gamma, 2 * base_gamma, 6 * base_gamma]
    state_key = run_key(
        "gamma_sweep", astuple(context.scale), workload, tuple(gammas)
    )
    executor = resolve_backend(backend)
    t = tracer()
    if executor is None:
        adapter, nominal = _engine_stack(context, "columnar")
        results: dict[float, tuple[float, float]] = {}
        if checkpointer is not None:
            state = checkpointer.load("gamma_sweep", state_key)
            if state is not None:
                results = state["results"]
                restore_costing(adapter, state["costing"])
        for gamma in gammas:
            if gamma in results:
                continue
            results[gamma] = _cliffguard_gamma_run(
                context, adapter, nominal, workload, gamma
            )
            if t.enabled:
                t.emit(
                    "gamma_result",
                    workload=workload,
                    gamma=gamma,
                    avg_ms=results[gamma][0],
                    max_ms=results[gamma][1],
                )
            if checkpointer is not None:
                checkpointer.step(
                    "gamma_sweep",
                    state_key,
                    lambda: {
                        "results": results,
                        "costing": costing_state(adapter),
                    },
                )
        return {gamma: results[gamma] for gamma in gammas}
    results = {}
    if checkpointer is not None:
        state = checkpointer.load("gamma_sweep", state_key)
        if state is not None:
            results = state["results"]
    pending = [gamma for gamma in gammas if gamma not in results]
    tasks = [(context.scale, workload, gamma) for gamma in pending]
    for gamma, point in executor.map(_gamma_sweep_task, tasks):
        results[gamma] = point
        if t.enabled:
            t.emit(
                "gamma_result",
                workload=workload,
                gamma=gamma,
                avg_ms=point[0],
                max_ms=point[1],
            )
    if checkpointer is not None and pending:
        checkpointer.step(
            "gamma_sweep",
            state_key,
            lambda: {"results": results, "costing": None},
        )
    return {gamma: results[gamma] for gamma in gammas}


def _cliffguard_gamma_run(
    context: ExperimentContext,
    adapter: DesignAdapter,
    nominal,
    workload: str,
    gamma: float,
) -> tuple[float, float]:
    """One CliffGuard replay at one Γ (shared by serial loop and tasks)."""
    designers, samplers = _build_designers(
        context, adapter, nominal, gamma, which=["CliffGuard"]
    )
    outcome = replay(
        context.window_source(workload),
        designers,
        adapter,
        candidate_source=nominal,
        workload_name=workload,
        max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
        before_transition=_past_pool_hook(context.trace(workload), samplers),
    )
    run = outcome.run("CliffGuard")
    return (run.mean_average_ms, run.mean_max_ms)


def _gamma_sweep_task(task) -> tuple[float, tuple[float, float]]:
    """One Γ of the sweep (module-level: process-backend task)."""
    scale, workload, gamma = task
    context = ExperimentContext(scale)
    adapter, nominal = _engine_stack(context, "columnar")
    return gamma, _cliffguard_gamma_run(context, adapter, nominal, workload, gamma)


# -- F11: distance ablation -------------------------------------------------------------


def run_distance_ablation(
    context: ExperimentContext,
    workload: str = "R1",
) -> dict[str, tuple[float, float]]:
    """CliffGuard under different distance metrics (Figure 11)."""
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = context.trace_windows(workload)
    n = context.schema.total_columns
    variants: dict[str, WorkloadDistance | LatencyAwareDistance] = {
        "Euc-union (S)": WorkloadDistance(n, ("select",)),
        "Euc-union (W)": WorkloadDistance(n, ("where",)),
        "Euc-union (G)": WorkloadDistance(n, ("group_by",)),
        "Euc-union (O)": WorkloadDistance(n, ("order_by",)),
        "Euc-union (SWGO)": WorkloadDistance(n, SWGO),
        "Euc-separate": WorkloadDistance(n, "separate"),
        "Euc-latency": LatencyAwareDistance(
            WorkloadDistance(n, SWGO),
            baseline_cost=lambda w: adapter.workload_cost(
                w, adapter.empty_design()
            ).total_ms,
            omega=0.2,
        ),
    }
    results: dict[str, tuple[float, float]] = {}
    for label, metric in variants.items():
        # Γ-neighborhood *sampling* always uses the structural metric — the
        # paper itself notes sampling "becomes computationally prohibitive
        # when our distance metric involves computing the latency of
        # different queries" (Section 5).  The latency-aware variant enters
        # through the Γ calibration (and our worst-neighbor ranking is
        # already latency-based, unlike the paper's purely structural one).
        structural = metric.base if isinstance(metric, LatencyAwareDistance) else metric
        history = drift_history(windows, metric)
        gamma = gamma_from_history(history, "avg")
        sampler = NeighborhoodSampler(structural, context.schema, seed=context.scale.seed)
        designer = CliffGuard(
            nominal,
            adapter,
            sampler,
            gamma,
            n_samples=context.scale.n_samples,
            max_iterations=context.scale.iterations,
        )
        outcome = replay(
            TraceSource.from_windows(windows, window_days=context.scale.window_days),
            {"CliffGuard": designer},
            adapter,
            candidate_source=nominal,
            workload_name=workload,
            max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
            before_transition=_past_pool_hook(context.trace(workload), [sampler]),
        )
        run = outcome.run("CliffGuard")
        results[label] = (run.mean_average_ms, run.mean_max_ms)
    return results


# -- F12 / F13: sample-size and iteration sweeps -----------------------------------------


def run_sample_size_sweep(
    context: ExperimentContext,
    workload: str = "R1",
    sample_sizes: tuple[int, ...] = (2, 5, 10, 20, 40),
) -> dict[int, tuple[float, float]]:
    """CliffGuard's latency vs neighborhood sample count n (Figure 12)."""
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = context.window_source(workload)
    gamma = context.default_gamma(workload)
    results: dict[int, tuple[float, float]] = {}
    for n in sample_sizes:
        sampler = context.sampler()
        designer = CliffGuard(
            nominal, adapter, sampler, gamma, n_samples=n,
            max_iterations=context.scale.iterations,
        )
        outcome = replay(
            windows,
            {"CliffGuard": designer},
            adapter,
            candidate_source=nominal,
            workload_name=workload,
            max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
            before_transition=_past_pool_hook(context.trace(workload), [sampler]),
        )
        run = outcome.run("CliffGuard")
        results[n] = (run.mean_average_ms, run.mean_max_ms)
    return results


def run_iteration_sweep(
    context: ExperimentContext,
    workload: str = "R1",
    iteration_counts: tuple[int, ...] = (0, 1, 2, 5, 10, 20),
) -> dict[int, tuple[float, float]]:
    """CliffGuard's latency vs iteration budget (Figure 13)."""
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = context.window_source(workload)
    gamma = context.default_gamma(workload)
    results: dict[int, tuple[float, float]] = {}
    for iterations in iteration_counts:
        sampler = context.sampler()
        designer = CliffGuard(
            nominal, adapter, sampler, gamma,
            n_samples=context.scale.n_samples, max_iterations=iterations,
        )
        outcome = replay(
            windows,
            {"CliffGuard": designer},
            adapter,
            candidate_source=nominal,
            workload_name=workload,
            max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
            before_transition=_past_pool_hook(context.trace(workload), [sampler]),
        )
        run = outcome.run("CliffGuard")
        results[iterations] = (run.mean_average_ms, run.mean_max_ms)
    return results


# -- F14: offline time -------------------------------------------------------------------


@dataclass
class OfflineTimeRow:
    designer: str
    design_seconds: float
    deployment_seconds: float


def run_offline_time(
    context: ExperimentContext,
    workload: str = "R1",
    which: list[str] | None = None,
) -> list[OfflineTimeRow]:
    """Wall-clock design time vs modeled deployment time (Figure 14)."""
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    gamma = context.default_gamma(workload)
    designers, samplers = _build_designers(context, adapter, nominal, gamma, which)
    outcome = replay(
        context.window_source(workload),
        designers,
        adapter,
        candidate_source=nominal,
        workload_name=workload,
        max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
        before_transition=_past_pool_hook(context.trace(workload), samplers),
    )
    rows: list[OfflineTimeRow] = []
    for name, run in outcome.runs.items():
        if run.windows:
            price = run.windows[-1].design_price_bytes
            deployment = price / 1e9 * 360.0  # engine.design.DEPLOY_SECONDS_PER_GB
        else:
            deployment = 0.0
        rows.append(
            OfflineTimeRow(
                designer=name,
                design_seconds=run.mean_design_seconds,
                deployment_seconds=deployment,
            )
        )
    return rows


# -- costing instrumentation (the `repro stats` CLI view) ---------------------------------


@dataclass
class CostingStatsOutcome:
    """Evaluation-service instrumentation for one CliffGuard replay."""

    workload: str
    engine: str
    replay: ReplayResult
    service_stats: object  # repro.costing.CostServiceStats
    cliffguard_report: object | None  # repro.core.cliffguard.CliffGuardReport


def run_costing_stats(
    context: ExperimentContext,
    workload: str,
    engine: str = "columnar",
    backend: ExecutionBackend | str | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> CostingStatsOutcome:
    """Replay CliffGuard once and capture the cost-service counters.

    Backs ``python -m repro stats``: how many what-if calls the run
    requested, how many the memo cache absorbed, the dedup ratio of the
    batched neighborhood evaluation, and the wall-time spent costing.
    ``backend`` selects the execution backend that fills cost-cache misses
    during neighborhood evaluation (counters stay bit-identical to serial).
    ``checkpointer`` makes the replay resumable per window transition;
    the service counters survive through the checkpointed cache export.
    """
    adapter, nominal = _engine_stack(context, engine, backend)
    gamma = context.default_gamma(workload)
    designers, samplers = _build_designers(
        context, adapter, nominal, gamma, which=["CliffGuard"]
    )
    outcome = replay(
        context.window_source(workload),
        designers,
        adapter,
        candidate_source=nominal,
        workload_name=workload,
        max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
        before_transition=_past_pool_hook(context.trace(workload), samplers),
        checkpointer=checkpointer,
        state_key=run_key(
            "costing_stats", astuple(context.scale), workload, engine, gamma
        )
        if checkpointer is not None
        else None,
    )
    adapter.costing.publish_metrics()
    return CostingStatsOutcome(
        workload=workload,
        engine=engine,
        replay=outcome,
        service_stats=adapter.costing.stats.snapshot(),
        cliffguard_report=designers["CliffGuard"].last_report,
    )


# -- re-design scheduling (the operational-cost extension) --------------------------------


def run_schedule_comparison(
    context: ExperimentContext,
    workload: str = "R1",
    engine: str = "columnar",
    everies: tuple[int, ...] = (1, 2),
    designers: tuple[str, ...] = ("ExistingDesigner", "CliffGuard"),
    gamma: float | None = None,
    iterations: int | None = None,
    backend: ExecutionBackend | str | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> dict[tuple[str, int], ScheduleOutcome]:
    """Scheduled replay for every (designer, re-design period) pair.

    The executable form of the paper's claim (d): how much latency each
    designer loses when its designs must serve longer between re-designs.
    Each (designer, period) pair is an independent deterministic task, so
    the grid fans out over the execution backend; ``backend=None`` runs
    the same tasks inline.

    ``checkpointer`` records completed (designer, period) cells — after
    each cell on the serial path, at completion on the backend path — and
    on resume runs only the pending cells (each cell rebuilds its own
    context, so skipping finished ones is value-preserving).
    """
    if gamma is None:
        gamma = context.default_gamma(workload)
    tasks = [
        (context.scale, workload, engine, name, every, gamma, iterations)
        for name in designers
        for every in everies
    ]
    state_key = run_key(
        "schedule_comparison",
        astuple(context.scale),
        workload,
        engine,
        tuple(designers),
        tuple(everies),
        gamma,
        iterations,
    )
    done: dict[tuple[str, int], ScheduleOutcome] = {}
    if checkpointer is not None:
        state = checkpointer.load("schedule_comparison", state_key)
        if state is not None:
            done = state["outcomes"]
    pending = [task for task in tasks if (task[3], task[4]) not in done]
    executor = resolve_backend(backend)
    if executor is None:
        for task in pending:
            name, every, outcome = _schedule_task(task)
            done[(name, every)] = outcome
            if checkpointer is not None:
                checkpointer.step(
                    "schedule_comparison", state_key, lambda: {"outcomes": done}
                )
    else:
        for name, every, outcome in executor.map(_schedule_task, pending):
            done[(name, every)] = outcome
        if checkpointer is not None and pending:
            checkpointer.step(
                "schedule_comparison", state_key, lambda: {"outcomes": done}
            )
    return {
        (task[3], task[4]): done[(task[3], task[4])]
        for task in tasks
        if (task[3], task[4]) in done
    }


def _schedule_task(task) -> tuple[str, int, ScheduleOutcome]:
    """One (designer, period) scheduled replay (process-backend task)."""
    scale, workload, engine, name, every, gamma, iterations = task
    context = ExperimentContext(scale)
    adapter, nominal = _engine_stack(context, engine)
    windows = context.trace_windows(workload)
    trace = context.trace(workload)
    designer, sampler = registry.get(
        name,
        adapter,
        nominal,
        gamma,
        make_sampler=context.sampler,
        n_samples=scale.n_samples,
        max_iterations=iterations if iterations is not None else scale.iterations,
    )
    samplers = [sampler] if sampler is not None else []

    def refresh(i: int) -> None:
        start, _ = windows[i].span_days
        past = [q for q in trace if q.timestamp < start]
        for s in samplers:
            s.set_pool(past)

    outcome = scheduled_replay(
        TraceSource.from_windows(windows, window_days=scale.window_days),
        designer,
        adapter,
        PeriodicPolicy(every=every),
        before_design=refresh,
    )
    return name, every, outcome


# -- F16: δ_latency correlation ------------------------------------------------------------


def run_latency_metric_correlation(
    context: ExperimentContext,
    workload: str = "R1",
    omegas: tuple[float, ...] = (0.1, 0.2),
    n_probes: int = 10,
) -> dict[float, list[tuple[float, float]]]:
    """(δ_latency, latency ratio) scatter per ω (Figure 16).

    For each probe workload W1 at increasing structural distance from W0,
    the y-value is W1's latency under W0's design divided by W0's own
    latency under that design.
    """
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = [w for w in context.trace_windows(workload) if len(w) > 0]
    anchor = windows[0]
    design = nominal.design(anchor)
    base_latency = adapter.workload_cost(anchor, design).average_ms
    sampler = context.sampler()
    sampler.set_pool([q for w in windows[1:] for q in w])
    gamma = context.default_gamma(workload) * 4
    curves: dict[float, list[tuple[float, float]]] = {}
    probes = [
        sampler.sample_at(anchor, float(alpha))
        for alpha in np.linspace(0.0, gamma, n_probes)
    ]
    for omega in omegas:
        metric = LatencyAwareDistance(
            context.distance,
            baseline_cost=lambda w: adapter.workload_cost(
                w, adapter.empty_design()
            ).total_ms,
            omega=omega,
        )
        points: list[tuple[float, float]] = []
        for probe in probes:
            distance = metric(anchor, probe)
            latency = adapter.workload_cost(probe, design).average_ms
            ratio = latency / base_latency if base_latency else 0.0
            points.append((distance, ratio))
        points.sort(key=lambda p: p[0])
        curves[omega] = points
    return curves
