"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — print the schema/workload configuration at a given scale,
* ``drift`` — Table-1-style drift statistics for R1/S1/S2,
* ``design`` — run one designer on one window and print the design,
* ``compare`` — the Figure-7-style designer comparison,
* ``gamma`` — the Figure-8/9 robustness-knob sweep,
* ``stats`` — cost-evaluation-service counters for a CliffGuard replay
  (what-if calls, cache hits, dedup ratio, costing wall-time), plus the
  process-wide metrics registry (:mod:`repro.obs`).

Every command builds a :class:`repro.api.RobustDesignSession` from the
flags; ``--backend``/``--jobs`` select the execution backend that fans out
neighborhood costing and experiment grids (see :mod:`repro.parallel`);
``--trace PATH`` appends a structured JSONL event trace of the run
(schema in ``docs/observability.md``).  All commands are deterministic
given ``--seed`` at any worker count.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import RobustDesignSession, RunConfig
from repro.designers import registry
from repro.harness.experiments import run_costing_stats, run_table1
from repro.harness.reporting import (
    format_costing_stats,
    format_designer_effort,
    format_metrics,
    format_table,
)
from repro.obs import get_metrics, trace_to

WORKLOADS = ("R1", "S1", "S2")


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--days", type=int, default=196, help="trace length in days")
    parser.add_argument(
        "--queries-per-day", type=int, default=15, help="workload intensity"
    )
    parser.add_argument("--window-days", type=int, default=28, help="window size")
    parser.add_argument("--samples", type=int, default=10, help="CliffGuard n")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--transitions", type=int, default=1, help="evaluated window transitions"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend (auto = REPRO_BACKEND env, else serial)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker count for thread/process"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append a structured JSONL event trace to PATH "
        "(see docs/observability.md for the schema)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write crash-safe progress snapshots to PATH at every "
        "iteration/window/Γ-point boundary (see docs/state.md)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="snapshot every N boundaries (default 1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the snapshot at --checkpoint; the resumed run "
        "is bit-identical to an uninterrupted one",
    )


def _session(args: argparse.Namespace) -> RobustDesignSession:
    config = RunConfig(
        workload=args.workload,
        engine=getattr(args, "engine", "columnar"),
        days=args.days,
        window_days=args.window_days,
        queries_per_day=args.queries_per_day,
        n_samples=args.samples,
        seed=args.seed,
        max_transitions=args.transitions,
        skip_transitions=max(0, args.days // args.window_days - 1 - args.transitions),
        backend=args.backend,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    return RobustDesignSession(config)


def cmd_info(args: argparse.Namespace) -> int:
    session = _session(args)
    context = session.context
    schema = context.schema
    windows = context.trace_windows(args.workload)
    print(f"schema: {len(schema.tables)} tables, {schema.total_columns} columns")
    print(
        f"workload {args.workload}: {len(context.trace(args.workload))} queries, "
        f"{len(windows)} windows of {args.window_days} days"
    )
    print(f"default Γ (avg past drift): {session.gamma:.6f}")
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    rows = run_table1(_session(args).context)
    print(
        format_table(
            ["Workload", "Min δ", "Max δ", "Avg δ", "Std δ"],
            [[r.workload, r.minimum, r.maximum, r.average, r.std] for r in rows],
            title="Drift between consecutive windows (Table 1)",
        )
    )
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    with _session(args) as session:
        designer, sampler = session.designer(args.designer)
        if session.checkpointer is not None and hasattr(designer, "checkpointer"):
            designer.checkpointer = session.checkpointer
        windows = session.context.trace_windows(args.workload)
        index = min(len(windows) - 2, max(0, len(windows) - 1 - args.transitions))
        window = windows[index]
        if sampler is not None:
            sampler.set_pool(
                [
                    q
                    for q in session.context.trace(args.workload)
                    if q.timestamp < window.span_days[0]
                ]
            )
        design = designer.design(window)
        structures = session.adapter.structures(design)
        print(
            f"{args.designer} produced {len(structures)} structures "
            f"({session.adapter.design_price(design) / 1e9:.2f} GB):"
        )
        for structure in structures[: args.limit]:
            print("  " + structure.to_sql())
        if len(structures) > args.limit:
            print(f"  … and {len(structures) - args.limit} more (raise --limit)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with _session(args) as session:
        outcome = session.replay()
        title = f"Designer comparison: {args.workload} on the {args.engine} engine"
        print(
            format_table(
                ["Designer", "Avg latency (ms)", "Max latency (ms)"],
                [
                    [
                        name,
                        outcome.run(name).mean_average_ms,
                        outcome.run(name).mean_max_ms,
                    ]
                    for name in registry.names()
                    if name in outcome.runs
                ],
                title=title,
            )
        )
    return 0


def cmd_gamma(args: argparse.Namespace) -> int:
    with _session(args) as session:
        base = session.gamma
        gammas = [m * base for m in (0.0, 0.5, 1.0, 2.0, 6.0)]
        sweep = session.sweep(gammas=gammas)
        print(
            format_table(
                ["Γ", "Avg latency (ms)", "Max latency (ms)"],
                [[f"{g:.5f}", avg, mx] for g, (avg, mx) in sorted(sweep.items())],
                title=f"Robustness-knob sweep on {args.workload} (Figures 8–9)",
            )
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with _session(args) as session:
        outcome = run_costing_stats(
            session.context,
            args.workload,
            engine=args.engine,
            backend=session.backend,
            checkpointer=session.checkpointer,
        )
    print(
        format_costing_stats(
            outcome.service_stats,
            title=(
                f"Cost-evaluation service: CliffGuard on {args.workload} "
                f"({args.engine} engine)"
            ),
        )
    )
    print()
    print(format_designer_effort(outcome.replay, title="Designer effort"))
    report = outcome.cliffguard_report
    if report is not None:
        print()
        print(
            f"last CliffGuard run: {report.iterations} iterations, "
            f"{report.accepted_moves} accepted moves, "
            f"{report.query_cost_calls} query-cost calls "
            f"({report.raw_cost_model_calls} raw), "
            f"final α = {report.final_alpha:g}, "
            f"backend = {report.backend} "
            f"({report.eval_wall_seconds:.2f}s costing)"
        )
    print()
    print(format_metrics(get_metrics(), title="Metrics registry"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CliffGuard reproduction: robust database designs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, extras in (
        ("info", cmd_info, ()),
        ("drift", cmd_drift, ()),
        ("design", cmd_design, ("engine", "designer", "limit")),
        ("compare", cmd_compare, ("engine",)),
        ("gamma", cmd_gamma, ()),
        ("stats", cmd_stats, ("engine",)),
    ):
        sub = subparsers.add_parser(name)
        _add_scale_arguments(sub)
        sub.add_argument(
            "--workload", choices=WORKLOADS, default="R1", help="trace profile"
        )
        if "engine" in extras:
            sub.add_argument(
                "--engine", choices=("columnar", "rowstore"), default="columnar"
            )
        if "designer" in extras:
            sub.add_argument(
                "--designer", choices=registry.names(), default="CliffGuard"
            )
        if "limit" in extras:
            sub.add_argument("--limit", type=int, default=10)
        sub.set_defaults(handler=handler)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "trace", None):
        with trace_to(args.trace):
            return args.handler(args)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
