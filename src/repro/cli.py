"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — print the schema/workload configuration at a given scale,
* ``drift`` — Table-1-style drift statistics for R1/S1/S2,
* ``design`` — run one designer on one window and print the design,
* ``compare`` — the Figure-7-style designer comparison,
* ``gamma`` — the Figure-8/9 robustness-knob sweep,
* ``stats`` — cost-evaluation-service counters for a CliffGuard replay
  (what-if calls, cache hits, dedup ratio, costing wall-time), plus the
  process-wide metrics registry (:mod:`repro.obs`),
* ``serve`` — the online tuning daemon: ingest a query stream (replayed
  trace, or a newline-JSON socket via ``--listen``), re-design in the
  background when the policy fires, hot-swap atomically, checkpoint at
  every boundary (docs/serving.md),
* ``feed`` — the matching producer: generate the drifting trace at the
  given scale and stream it into a ``repro serve`` socket.

Every command builds a :class:`repro.api.RobustDesignSession` from the
flags; ``--backend``/``--jobs`` select the execution backend that fans out
neighborhood costing and experiment grids (see :mod:`repro.parallel`);
``--trace PATH`` appends a structured JSONL event trace of the run
(schema in ``docs/observability.md``).  All commands are deterministic
given ``--seed`` at any worker count.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import RobustDesignSession, RunConfig, ServeConfig
from repro.designers import registry
from repro.harness.experiments import run_costing_stats, run_table1
from repro.harness.reporting import (
    format_costing_stats,
    format_designer_effort,
    format_metrics,
    format_table,
)
from repro.obs import get_metrics, trace_to

WORKLOADS = ("R1", "S1", "S2", "OLTP", "ECOMMERCE", "HTAP")


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--days", type=int, default=196, help="trace length in days")
    parser.add_argument(
        "--queries-per-day", type=int, default=15, help="workload intensity"
    )
    parser.add_argument("--window-days", type=int, default=28, help="window size")
    parser.add_argument("--samples", type=int, default=10, help="CliffGuard n")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--transitions", type=int, default=1, help="evaluated window transitions"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend (auto = REPRO_BACKEND env, else serial)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker count for thread/process"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append a structured JSONL event trace to PATH "
        "(see docs/observability.md for the schema)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write crash-safe progress snapshots to PATH at every "
        "iteration/window/Γ-point boundary (see docs/state.md)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="snapshot every N boundaries (default 1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the snapshot at --checkpoint; the resumed run "
        "is bit-identical to an uninterrupted one",
    )


def _session(args: argparse.Namespace) -> RobustDesignSession:
    config = RunConfig(
        workload=args.workload,
        engine=getattr(args, "engine", "columnar"),
        days=args.days,
        window_days=args.window_days,
        queries_per_day=args.queries_per_day,
        n_samples=args.samples,
        seed=args.seed,
        max_transitions=args.transitions,
        skip_transitions=max(0, args.days // args.window_days - 1 - args.transitions),
        backend=args.backend,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    return RobustDesignSession(config)


def cmd_info(args: argparse.Namespace) -> int:
    session = _session(args)
    context = session.context
    schema = context.schema
    windows = context.trace_windows(args.workload)
    print(f"schema: {len(schema.tables)} tables, {schema.total_columns} columns")
    print(
        f"workload {args.workload}: {len(context.trace(args.workload))} queries, "
        f"{len(windows)} windows of {args.window_days} days"
    )
    print(f"default Γ (avg past drift): {session.gamma:.6f}")
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    rows = run_table1(_session(args).context)
    print(
        format_table(
            ["Workload", "Min δ", "Max δ", "Avg δ", "Std δ"],
            [[r.workload, r.minimum, r.maximum, r.average, r.std] for r in rows],
            title="Drift between consecutive windows (Table 1)",
        )
    )
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    with _session(args) as session:
        designer, sampler = session.designer(args.designer)
        if session.checkpointer is not None and hasattr(designer, "checkpointer"):
            designer.checkpointer = session.checkpointer
        windows = session.context.trace_windows(args.workload)
        index = min(len(windows) - 2, max(0, len(windows) - 1 - args.transitions))
        window = windows[index]
        if sampler is not None:
            sampler.set_pool(
                [
                    q
                    for q in session.context.trace(args.workload)
                    if q.timestamp < window.span_days[0]
                ]
            )
        design = designer.design(window)
        structures = session.adapter.structures(design)
        print(
            f"{args.designer} produced {len(structures)} structures "
            f"({session.adapter.design_price(design) / 1e9:.2f} GB):"
        )
        for structure in structures[: args.limit]:
            print("  " + structure.to_sql())
        if len(structures) > args.limit:
            print(f"  … and {len(structures) - args.limit} more (raise --limit)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with _session(args) as session:
        outcome = session.replay()
        title = f"Designer comparison: {args.workload} on the {args.engine} engine"
        print(
            format_table(
                ["Designer", "Avg latency (ms)", "Max latency (ms)"],
                [
                    [
                        name,
                        outcome.run(name).mean_average_ms,
                        outcome.run(name).mean_max_ms,
                    ]
                    for name in registry.names()
                    if name in outcome.runs
                ],
                title=title,
            )
        )
    return 0


def cmd_gamma(args: argparse.Namespace) -> int:
    with _session(args) as session:
        base = session.gamma
        gammas = [m * base for m in (0.0, 0.5, 1.0, 2.0, 6.0)]
        sweep = session.sweep(gammas=gammas)
        print(
            format_table(
                ["Γ", "Avg latency (ms)", "Max latency (ms)"],
                [[f"{g:.5f}", avg, mx] for g, (avg, mx) in sorted(sweep.items())],
                title=f"Robustness-knob sweep on {args.workload} (Figures 8–9)",
            )
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with _session(args) as session:
        outcome = run_costing_stats(
            session.context,
            args.workload,
            engine=args.engine,
            backend=session.backend,
            checkpointer=session.checkpointer,
        )
    print(
        format_costing_stats(
            outcome.service_stats,
            title=(
                f"Cost-evaluation service: CliffGuard on {args.workload} "
                f"({args.engine} engine)"
            ),
        )
    )
    print()
    print(format_designer_effort(outcome.replay, title="Designer effort"))
    report = outcome.cliffguard_report
    if report is not None:
        print()
        print(
            f"last CliffGuard run: {report.iterations} iterations, "
            f"{report.accepted_moves} accepted moves, "
            f"{report.query_cost_calls} query-cost calls "
            f"({report.raw_cost_model_calls} raw), "
            f"final α = {report.final_alpha:g}, "
            f"backend = {report.backend} "
            f"({report.eval_wall_seconds:.2f}s costing, "
            f"{report.nominal_wall_seconds:.2f}s nominal)"
        )
        print(
            f"design-stream reuse: {report.matrix_hits} matrix hits, "
            f"{report.matrix_pairs_priced} matrix pairs priced, "
            f"{report.delta_pairs_saved} delta pairs saved"
        )
    print()
    print(format_metrics(get_metrics(), title="Metrics registry"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    serve_config = ServeConfig(
        source=args.listen or "trace",
        policy=args.policy,
        threshold=args.threshold,
        every=args.every,
        min_window_queries=args.min_window_queries,
        swap_mode=args.swap_mode,
        redesign_timeout=args.redesign_timeout,
        max_queries=args.max_queries,
        drain=not args.no_drain,
    )
    with _session(args) as session:
        outcome = session.serve(serve_config)
    # Deterministic summary: no wall-clock, no resumed flag — a resumed
    # run's stdout must diff clean against the uninterrupted baseline.
    print(f"serve {args.workload} on {args.engine}: source={serve_config.source_label()}")
    print(
        f"position {outcome.position}  windows {outcome.windows}  "
        f"triggers {outcome.triggers}"
    )
    print(
        f"redesigns launched {outcome.redesigns_launched}  "
        f"failed {outcome.redesigns_failed}  swaps {outcome.swaps}"
    )
    print(f"final epoch {outcome.final_epoch}  digest {outcome.final_design_digest}")
    print(
        f"structures {outcome.structure_count}  "
        f"price_bytes {outcome.design_price_bytes}"
    )
    print(f"drift readings {outcome.drift_readings}  alarms {outcome.drift_alarms}")
    priced = 0 if outcome.priced is None else len(outcome.priced)
    print(f"priced {priced}  dropped {outcome.dropped}")
    return 0 if outcome.dropped == 0 else 1


def _feed_connect(spec: str, timeout: float):
    import socket
    import time

    if spec.startswith("unix:"):
        family, address = socket.AF_UNIX, spec[len("unix:") :]
    elif spec.startswith("tcp:"):
        host, _, port = spec[len("tcp:") :].rpartition(":")
        family, address = socket.AF_INET, (host, int(port))
    else:
        raise SystemExit(f"feed: bad --connect {spec!r} (want unix:PATH or tcp:HOST:PORT)")
    deadline = time.monotonic() + timeout
    while True:
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.connect(address)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                raise SystemExit(f"feed: could not connect to {spec} within {timeout:g}s")
            time.sleep(0.05)


def cmd_feed(args: argparse.Namespace) -> int:
    from repro.serve.protocol import encode_control, encode_query

    queries = _session(args).context.trace(args.workload)
    if args.limit is not None:
        queries = queries[: args.limit]
    lines = [encode_query(q) for q in queries]
    if args.shutdown:
        lines.append(encode_control())
    data = ("\n".join(lines) + "\n").encode("utf-8")
    sock = _feed_connect(args.connect, args.connect_timeout)
    sock.settimeout(args.connect_timeout)
    try:
        sock.sendall(data)
    except (BrokenPipeError, ConnectionResetError, TimeoutError):
        # The daemon went away mid-stream (e.g. SIGKILLed in the CI
        # kill-resume leg) — a rerun against the resumed daemon re-sends
        # from the top, which is exactly what resume fast-forward expects.
        print("feed: connection closed by server mid-stream", file=sys.stderr)
        return 0
    finally:
        sock.close()
    print(
        f"feed: sent {len(queries)} queries to {args.connect}"
        + (" + shutdown" if args.shutdown else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CliffGuard reproduction: robust database designs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, extras in (
        ("info", cmd_info, ()),
        ("drift", cmd_drift, ()),
        ("design", cmd_design, ("engine", "designer", "limit")),
        ("compare", cmd_compare, ("engine",)),
        ("gamma", cmd_gamma, ()),
        ("stats", cmd_stats, ("engine",)),
    ):
        sub = subparsers.add_parser(name)
        _add_scale_arguments(sub)
        sub.add_argument(
            "--workload", choices=WORKLOADS, default="R1", help="trace profile"
        )
        if "engine" in extras:
            sub.add_argument(
                "--engine", choices=("columnar", "rowstore"), default="columnar"
            )
        if "designer" in extras:
            sub.add_argument(
                "--designer", choices=registry.names(), default="CliffGuard"
            )
        if "limit" in extras:
            sub.add_argument("--limit", type=int, default=10)
        sub.set_defaults(handler=handler)

    serve = subparsers.add_parser(
        "serve", help="run the online tuning daemon (docs/serving.md)"
    )
    _add_scale_arguments(serve)
    serve.add_argument("--workload", choices=WORKLOADS, default="R1")
    serve.add_argument("--engine", choices=("columnar", "rowstore"), default="columnar")
    serve.add_argument(
        "--listen",
        metavar="SPEC",
        default=None,
        help="accept queries on a socket (unix:PATH or tcp:HOST:PORT); "
        "default replays the generated trace in-process",
    )
    serve.add_argument("--policy", choices=("drift", "periodic"), default="drift")
    serve.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="drift-policy trigger threshold (default: the session Γ)",
    )
    serve.add_argument(
        "--every", type=int, default=1, help="periodic-policy cadence in windows"
    )
    serve.add_argument(
        "--min-window-queries",
        type=int,
        default=8,
        help="skip the trigger check on windows thinner than this",
    )
    serve.add_argument(
        "--swap-mode",
        choices=("async", "boundary"),
        default="boundary",
        help="swap as soon as the re-design lands (async) or at the next "
        "window boundary (boundary; deterministic, kill-resume safe)",
    )
    serve.add_argument(
        "--redesign-timeout",
        type=float,
        default=None,
        help="cancel a background re-design slower than this many seconds",
    )
    serve.add_argument(
        "--max-queries", type=int, default=None, help="stop after N queries"
    )
    serve.add_argument(
        "--no-drain",
        action="store_true",
        help="cancel (instead of await) an in-flight re-design at stream end",
    )
    serve.set_defaults(handler=cmd_serve)

    feed = subparsers.add_parser(
        "feed", help="stream the generated trace into a repro serve socket"
    )
    _add_scale_arguments(feed)
    feed.add_argument("--workload", choices=WORKLOADS, default="R1")
    feed.add_argument(
        "--connect",
        metavar="SPEC",
        required=True,
        help="daemon address (unix:PATH or tcp:HOST:PORT)",
    )
    feed.add_argument(
        "--limit", type=int, default=None, help="send only the first N queries"
    )
    feed.add_argument(
        "--shutdown",
        action="store_true",
        help="send the shutdown control after the last query",
    )
    feed.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to retry the initial connect (and per-send timeout)",
    )
    feed.set_defaults(handler=cmd_feed)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "trace", None):
        with trace_to(args.trace):
            return args.handler(args)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
