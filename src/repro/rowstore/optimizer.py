"""Access-path selection and what-if cost model for the row store.

The row-store cost surface differs from the columnar engine in ways that
mirror the paper's DBMS-X-vs-Vertica contrast:

* a full scan reads **whole rows** (no column pruning), so undesigned
  queries are even more expensive relative to data size,
* a composite index seeks on its equality prefix (plus one range column)
  but pays a random-access penalty per fetched row — unless it is a
  *covering* index, which serves the query at key width,
* a materialized view collapses an aggregate query to a scan over the
  pre-aggregated rows.

Costs are model milliseconds on the same scale as the columnar engine.
"""

from __future__ import annotations

import math

from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStatistics
from repro.costing.memo import BoundedMemo
from repro.costing.profile import QueryProfile, QueryProfiler, TableAccess
from repro.costing.report import WorkloadCostReport
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView

# -- cost constants (model milliseconds) --------------------------------------

#: Sequential scan cost per byte.
BYTE_COST_MS = 5e-6
#: Random row fetch pays a multiple of the sequential per-byte cost.
RANDOM_READ_FACTOR = 4.0
#: B-tree traversal cost per seek (per log2 level).
SEEK_COST_MS = 0.02
#: Per-row, per-predicate filter evaluation cost.
PREDICATE_COST_MS = 1e-5
#: Hash aggregation per input row.
HASH_AGG_COST_MS = 2e-5
#: Sort cost per element-comparison (× log2 n).
SORT_COST_MS = 2e-6
#: Hash-join build/probe costs.
JOIN_BUILD_COST_MS = 2e-5
JOIN_PROBE_COST_MS = 1e-5
#: Fixed per-query overhead.
QUERY_OVERHEAD_MS = 1.0
#: Per-byte cost of applying a write to a stored structure (shared value
#: across all three substrates).
WRITE_BYTE_COST_MS = 1e-5
#: Fixed per-affected-row upkeep of one extra B-tree (node descent plus
#: possible split bookkeeping) — pricier than columnar tuple-mover work.
INDEX_MAINT_ROW_MS = 1e-3
#: Fixed per-affected-row upkeep of an incrementally maintained view.
VIEW_MAINT_ROW_MS = 5e-4


class RowstoreCostModel:
    """What-if cost model for index/view designs."""

    def __init__(
        self,
        schema: Schema,
        statistics: dict[str, TableStatistics] | None = None,
    ):
        self.schema = schema
        self.statistics = statistics or {
            name: TableStatistics.declared(table)
            for name, table in schema.tables.items()
        }
        self.profiler = QueryProfiler(schema, self.statistics)
        # Bounded LRU: a long replay prices an unbounded stream of
        # (query, structure) pairs; evictions are metrics-counted.
        self._structure_costs: BoundedMemo = BoundedMemo(
            "costing.memo_evictions.rowstore_structure"
        )

    def profile(self, sql: str) -> QueryProfile:
        """Parse and annotate ``sql`` (cached by exact text)."""
        return self.profiler.profile(sql)

    # -- access paths ------------------------------------------------------------

    def _scan_cost(self, access: TableAccess) -> float:
        """Full-table-scan cost (the NoDesign path)."""
        rows = max(access.row_count, 1)
        cost = rows * access.row_bytes * BYTE_COST_MS
        cost += rows * access.predicate_count * PREDICATE_COST_MS
        return cost

    def _index_access_cost(self, access: TableAccess, index: Index) -> float | None:
        """Cost of driving ``access`` through ``index`` (None if useless)."""
        eq_map = access.eq_map
        range_map = access.range_map
        depth, used_range = index.seek_prefix(
            set(eq_map), set(range_map)
        )
        if depth == 0:
            return None
        selectivity = 1.0
        consumed: set[str] = set()
        for name in index.columns[:depth]:
            consumed.add(name)
            selectivity *= eq_map.get(name, range_map.get(name, 1.0))
        matched = max(access.row_count * selectivity, 1.0)
        cost = SEEK_COST_MS * math.log2(max(access.row_count, 2))
        covering = access.needed_columns <= index.column_set
        if covering:
            table = self.schema.table(access.table)
            key_bytes = sum(
                table.column(c).type.byte_width for c in index.columns
            )
            cost += matched * key_bytes * BYTE_COST_MS
        else:
            cost += matched * access.row_bytes * BYTE_COST_MS * RANDOM_READ_FACTOR
        remaining = max(access.predicate_count - len(consumed), 0)
        cost += matched * remaining * PREDICATE_COST_MS
        return cost

    def _view_cost(
        self, profile: QueryProfile, view: MaterializedView
    ) -> float | None:
        """Cost of answering ``profile`` from ``view`` by rollup."""
        if not view.answers(profile):
            return None
        stats = self.statistics[view.table]
        view_rows = view.estimated_rows(stats)
        table = self.schema.table(view.table)
        row_bytes = view.row_bytes(table)
        cost = view_rows * row_bytes * BYTE_COST_MS
        cost += view_rows * profile.anchor.predicate_count * PREDICATE_COST_MS
        # Roll the filtered view rows up to the query's grouping.
        filtered = max(view_rows * profile.anchor.total_selectivity, 1.0)
        cost += filtered * HASH_AGG_COST_MS
        if profile.order_by or any(True for _ in profile.aggregates):
            groups = max(min(profile.group_cardinality, filtered), 1.0)
            if profile.order_by:
                cost += groups * math.log2(max(groups, 2.0)) * SORT_COST_MS
        return cost

    # -- query costing -------------------------------------------------------------

    def structure_cost(
        self, profile: QueryProfile, structure: Index | MaterializedView
    ) -> float | None:
        """Full query cost when the anchor is served by ``structure``.

        ``None`` when the structure cannot serve the query.  Cached per
        (query, structure) because designers re-price the same pairs often.
        """
        key = (profile.sql, structure)
        if key in self._structure_costs:
            return self._structure_costs[key]
        if isinstance(structure, MaterializedView):
            base = self._view_cost(profile, structure)
            cost = base  # views fully answer the query; no post work
        else:
            base = self._index_access_cost(profile.anchor, structure)
            cost = None if base is None else base + self._post_cost(profile)
        self._structure_costs[key] = cost
        return cost

    def _post_cost(self, profile: QueryProfile) -> float:
        """Aggregation/sort/join work after the anchor rows are fetched."""
        access = profile.anchor
        rows_out = max(access.row_count * access.total_selectivity, 1.0)
        cost = 0.0
        if profile.group_by or profile.has_aggregates:
            cost += rows_out * HASH_AGG_COST_MS
            result_rows = max(min(profile.group_cardinality, rows_out), 1.0)
        else:
            result_rows = rows_out
        if profile.order_by:
            n = max(result_rows, 2.0)
            cost += n * math.log2(n) * SORT_COST_MS
        cost += rows_out * len(profile.dimensions) * JOIN_PROBE_COST_MS
        return cost

    def _dimension_cost(self, access: TableAccess, design: RowstoreDesign) -> float:
        """Best-path cost of reading one joined dimension table."""
        best = self._scan_cost(access)
        for index in design.indices_for(access.table):
            cost = self._index_access_cost(access, index)
            if cost is not None and cost < best:
                best = cost
        rows = max(access.row_count * access.total_selectivity, 1.0)
        return best + rows * JOIN_BUILD_COST_MS

    def choose_path(
        self, profile: QueryProfile, design: RowstoreDesign
    ) -> Index | MaterializedView | None:
        """The structure the optimizer would use (None = full scan)."""
        best_structure: Index | MaterializedView | None = None
        best_cost = self._scan_cost(profile.anchor) + self._post_cost(profile)
        for structure in list(design.indices_for(profile.anchor.table)) + list(
            design.views_for(profile.anchor.table)
        ):
            cost = self.structure_cost(profile, structure)
            if cost is not None and cost < best_cost:
                best_structure, best_cost = structure, cost
        return best_structure

    # -- write costing -------------------------------------------------------------

    def base_write_cost(self, profile: QueryProfile) -> float:
        """Design-independent cost of applying the write to base storage."""
        return (profile.affected_rows * profile.written_bytes) * WRITE_BYTE_COST_MS

    def maintenance_weight(self, structure: Index | MaterializedView) -> float:
        """Per-affected-row cost of keeping ``structure`` current."""
        if isinstance(structure, MaterializedView):
            return VIEW_MAINT_ROW_MS
        table = self.schema.table(structure.table)
        key_bytes = sum(
            table.column(c).type.byte_width for c in structure.columns
        )
        return INDEX_MAINT_ROW_MS + key_bytes * WRITE_BYTE_COST_MS

    def write_touches(
        self, profile: QueryProfile, structure: Index | MaterializedView
    ) -> bool:
        """Whether ``profile``'s write forces maintenance of ``structure``.

        Inserts and deletes touch every structure of the written table;
        updates only touch structures referencing a written column (index
        keys, view groupings or measures).
        """
        if not profile.is_write or structure.table != profile.anchor.table:
            return False
        if profile.statement_kind != "update":
            return True
        written = set(profile.written_columns)
        if isinstance(structure, MaterializedView):
            return bool((structure.group_set | structure.measure_set) & written)
        return bool(structure.column_set & written)

    def _write_cost(self, profile: QueryProfile, design: RowstoreDesign) -> float:
        """DML cost: locate the affected rows, apply the base write, then
        charge per-structure maintenance for every index/view the write
        touches."""
        table = profile.anchor.table
        if profile.statement_kind == "insert":
            locate = 0.0
        else:
            locate = self._scan_cost(profile.anchor) + self._post_cost(profile)
            for structure in list(design.indices_for(table)) + list(
                design.views_for(table)
            ):
                cost = self.structure_cost(profile, structure)
                if cost is not None and cost < locate:
                    locate = cost
        total = (QUERY_OVERHEAD_MS + locate) + self.base_write_cost(profile)
        for structure in list(design.indices_for(table)) + list(
            design.views_for(table)
        ):
            if self.write_touches(profile, structure):
                total = total + profile.affected_rows * self.maintenance_weight(
                    structure
                )
        return total

    def query_cost(
        self, sql_or_profile: str | QueryProfile, design: RowstoreDesign
    ) -> float:
        """Estimated latency (model ms) of one query under ``design``."""
        profile = (
            sql_or_profile
            if isinstance(sql_or_profile, QueryProfile)
            else self.profile(sql_or_profile)
        )
        if profile.is_write:
            return self._write_cost(profile, design)
        best = self._scan_cost(profile.anchor) + self._post_cost(profile)
        for structure in list(design.indices_for(profile.anchor.table)) + list(
            design.views_for(profile.anchor.table)
        ):
            cost = self.structure_cost(profile, structure)
            if cost is not None and cost < best:
                best = cost
        dim_cost = sum(self._dimension_cost(d, design) for d in profile.dimensions)
        return QUERY_OVERHEAD_MS + best + dim_cost

    def workload_cost(self, queries, design: RowstoreDesign) -> WorkloadCostReport:
        """Cost every query in ``queries`` under ``design``."""
        costs: list[float] = []
        weights: list[float] = []
        for query in queries:
            if isinstance(query, str):
                sql, weight = query, 1.0
            else:
                sql, weight = query.sql, float(query.frequency)
            costs.append(self.query_cost(sql, design))
            weights.append(weight)
        return WorkloadCostReport(per_query_ms=costs, weights=weights)
