"""Row-store storage: real index and materialized-view structures.

The row store shares query *semantics* with the columnar engine (a SQL
result does not depend on the storage layout), so the executor here reuses
the columnar pipeline for computing result rows.  What this module adds is
the physical layer the row-store cost model prices:

* :class:`IndexData` — an actual sorted permutation over the index key,
  supporting real binary-search seeks (tests verify seeks return exactly
  the matching rows),
* :class:`ViewData` — an actually materialized aggregate table (tests
  verify its contents equal on-the-fly aggregation),
* :class:`RowstoreExecutor` — executes queries, reporting which access
  path the optimizer chose and how many rows that path really touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import Schema
from repro.engine.executor import ColumnarExecutor, QueryResult
from repro.engine.storage import ColumnarDatabase
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView
from repro.rowstore.optimizer import RowstoreCostModel


@dataclass
class IndexData:
    """A materialized composite index: key arrays sorted lexicographically."""

    index: Index
    #: Row ids of the base table in index order.
    row_ids: np.ndarray
    #: Key column values in index order (one array per key column).
    key_columns: dict[str, np.ndarray]

    def seek_equal(self, column: str, value: object) -> np.ndarray:
        """Row ids whose leading key column equals ``value``.

        Only the first key column supports a direct binary seek here (the
        common case the cost model rewards); deeper prefixes filter the
        seeked range.
        """
        if column != self.index.columns[0]:
            raise ValueError(
                f"seek column {column!r} is not the leading key of {self.index}"
            )
        keys = self.key_columns[column]
        lo = int(np.searchsorted(keys, value, side="left"))
        hi = int(np.searchsorted(keys, value, side="right"))
        return self.row_ids[lo:hi]

    def seek_range(self, column: str, low: object, high: object) -> np.ndarray:
        """Row ids whose leading key column lies in ``[low, high]``."""
        if column != self.index.columns[0]:
            raise ValueError(
                f"seek column {column!r} is not the leading key of {self.index}"
            )
        keys = self.key_columns[column]
        lo = int(np.searchsorted(keys, low, side="left"))
        hi = int(np.searchsorted(keys, high, side="right"))
        return self.row_ids[lo:hi]


@dataclass
class ViewData:
    """A materialized aggregate view's actual rows."""

    view: MaterializedView
    #: Grouping column values (one array per group column).
    groups: dict[str, np.ndarray]
    #: Per-measure summaries: measure -> {"sum", "count", "min", "max"}.
    measures: dict[str, dict[str, np.ndarray]]
    #: COUNT(*) per group.
    counts: np.ndarray

    @property
    def row_count(self) -> int:
        return int(self.counts.shape[0])


def _build_index(index: Index, data: dict[str, np.ndarray]) -> IndexData:
    arrays = [data[name] for name in index.columns]
    order = np.lexsort(tuple(reversed(arrays)))
    return IndexData(
        index=index,
        row_ids=order,
        key_columns={name: data[name][order] for name in index.columns},
    )


def _build_view(view: MaterializedView, data: dict[str, np.ndarray]) -> ViewData:
    group_arrays = [data[name] for name in view.group_columns]
    if group_arrays and group_arrays[0].size:
        stacked = np.stack([a.astype(np.int64, copy=False) for a in group_arrays])
        uniques, inverse = np.unique(stacked, axis=1, return_inverse=True)
        group_count = uniques.shape[1]
        order = np.argsort(inverse, kind="stable")
        boundaries = np.flatnonzero(
            np.r_[True, inverse[order][1:] != inverse[order][:-1]]
        )
        counts = np.diff(np.r_[boundaries, inverse.size]).astype(np.int64)
        groups = {
            name: uniques[i] for i, name in enumerate(view.group_columns)
        }
        measures: dict[str, dict[str, np.ndarray]] = {}
        for name in view.measure_columns:
            values = data[name][order].astype(np.float64)
            measures[name] = {
                "sum": np.add.reduceat(values, boundaries),
                "count": counts.astype(np.float64),
                "min": np.minimum.reduceat(values, boundaries),
                "max": np.maximum.reduceat(values, boundaries),
            }
        return ViewData(view=view, groups=groups, measures=measures, counts=counts)
    empty = np.array([], dtype=np.int64)
    return ViewData(
        view=view,
        groups={name: empty for name in view.group_columns},
        measures={name: {} for name in view.measure_columns},
        counts=empty,
    )


class RowstoreDatabase:
    """Base data plus materialized indices and views for one schema."""

    def __init__(self, schema: Schema, data: dict[str, dict[str, np.ndarray]]):
        self.schema = schema
        self.data = data
        for name in schema.tables:
            if name not in data:
                raise ValueError(f"no data supplied for table {name!r}")
        self.indices: dict[Index, IndexData] = {}
        self.views: dict[MaterializedView, ViewData] = {}

    def deploy(self, design: RowstoreDesign) -> int:
        """Materialize every structure in ``design``; returns #built."""
        built = 0
        for index in design.indices:
            if index not in self.indices:
                self.indices[index] = _build_index(index, self.data[index.table])
                built += 1
        for view in design.views:
            if view not in self.views:
                self.views[view] = _build_view(view, self.data[view.table])
                built += 1
        return built

    def index_data(self, index: Index) -> IndexData:
        """Materialized data for ``index`` (deploying on demand)."""
        if index not in self.indices:
            self.indices[index] = _build_index(index, self.data[index.table])
        return self.indices[index]

    def view_data(self, view: MaterializedView) -> ViewData:
        """Materialized data for ``view`` (deploying on demand)."""
        if view not in self.views:
            self.views[view] = _build_view(view, self.data[view.table])
        return self.views[view]


@dataclass
class AccessPathReport:
    """Which path served a query and how many rows it really touched."""

    path: Index | MaterializedView | None  # None = full scan
    rows_touched: int


class RowstoreExecutor:
    """Executes queries and reports the real access path taken.

    Result rows are computed through the shared (layout-independent) query
    pipeline; the access path and its measured row counts come from the
    row store's own materialized structures, so tests can hold the cost
    model accountable to real work.
    """

    def __init__(self, database: RowstoreDatabase, cost_model: RowstoreCostModel | None = None):
        self.database = database
        self.cost_model = cost_model or RowstoreCostModel(database.schema)
        self._pipeline = ColumnarExecutor(
            ColumnarDatabase(database.schema, database.data)
        )

    def execute(
        self, sql: str, design: RowstoreDesign | None = None
    ) -> tuple[QueryResult, AccessPathReport]:
        """Execute ``sql``; returns the result and the access-path report.

        When the optimizer picks a materialized view, the answer is computed
        **from the view's rows** (filter on grouping columns, re-group,
        derive the aggregates from the stored summaries) — a real rollup,
        not a recomputation over the base table.  All other paths compute
        through the shared layout-independent pipeline.
        """
        design = design or RowstoreDesign.empty()
        profile = self.cost_model.profile(sql)
        path = self.cost_model.choose_path(profile, design)
        if isinstance(path, MaterializedView):
            result = self._execute_from_view(sql, path)
        else:
            result = self._pipeline.execute(sql)
        rows_touched = self._measure_path(profile, path)
        return result, AccessPathReport(path=path, rows_touched=rows_touched)

    def _execute_from_view(self, sql: str, view: MaterializedView) -> QueryResult:
        """Answer an aggregate query by rolling up the view's rows."""
        from repro.engine.executor import ExecutionStats, _group_reduce
        from repro.engine.expressions import evaluate_conjunction
        from repro.engine.storage import ColumnData
        from repro.sql.ast import Aggregate
        from repro.sql.parser import parse

        stmt = parse(sql)
        data = self.database.view_data(view)
        counts = data.counts.astype(np.float64)
        view_columns = {
            name: ColumnData(values) for name, values in data.groups.items()
        }
        mask = evaluate_conjunction(stmt.where, view_columns, data.row_count)
        if not mask.any():
            labels = [item.alias or str(item.expr) for item in stmt.select]
            stats = ExecutionStats(projection=None, rows_scanned=data.row_count, cells_read=0)
            return QueryResult(columns=labels, rows=[], stats=stats)

        def stored(measure: str, kind: str) -> np.ndarray:
            return data.measures[measure][kind][mask]

        kept_counts = counts[mask]
        group_refs = [c.name for c in stmt.group_by]
        labels = []
        if group_refs:
            group_arrays = [data.groups[name][mask] for name in group_refs]
            stacked = np.stack([a.astype(np.int64) for a in group_arrays])
            uniques, first_index, inverse = np.unique(
                stacked, axis=1, return_index=True, return_inverse=True
            )
            group_count = uniques.shape[1]
        else:
            inverse = np.zeros(int(mask.sum()), dtype=np.int64)
            first_index = np.array([0], dtype=np.int64)
            group_count = 1 if mask.any() else 0

        outputs: list[np.ndarray] = []
        for item in stmt.select:
            if isinstance(item.expr, Aggregate):
                agg = item.expr
                if agg.column is None or agg.func == "COUNT":
                    outputs.append(
                        _group_reduce("SUM", kept_counts, inverse, group_count).astype(
                            np.int64
                        )
                    )
                elif agg.func == "SUM":
                    outputs.append(
                        _group_reduce("SUM", stored(agg.column.name, "sum"), inverse, group_count)
                    )
                elif agg.func == "AVG":
                    sums = _group_reduce("SUM", stored(agg.column.name, "sum"), inverse, group_count)
                    ns = _group_reduce("SUM", stored(agg.column.name, "count"), inverse, group_count)
                    outputs.append(sums / np.maximum(ns, 1.0))
                elif agg.func == "MIN":
                    outputs.append(
                        _group_reduce("MIN", stored(agg.column.name, "min"), inverse, group_count)
                    )
                elif agg.func == "MAX":
                    outputs.append(
                        _group_reduce("MAX", stored(agg.column.name, "max"), inverse, group_count)
                    )
            else:
                outputs.append(data.groups[item.expr.name][mask][first_index])
            labels.append(item.alias or str(item.expr))

        rows = [
            tuple(out[i] for out in outputs) for i in range(group_count)
        ]
        stats = ExecutionStats(
            projection=None, rows_scanned=data.row_count, cells_read=data.row_count
        )
        return QueryResult(columns=labels, rows=rows, stats=stats)

    def _measure_path(self, profile, path) -> int:
        table_rows = self.database.data[profile.anchor.table]
        base_rows = next(iter(table_rows.values())).shape[0] if table_rows else 0
        if path is None:
            return base_rows
        if isinstance(path, MaterializedView):
            return self.database.view_data(path).row_count
        index_data = self.database.index_data(path)
        leading = path.columns[0]
        eq_map = profile.anchor.eq_map
        range_map = profile.anchor.range_map
        if leading in eq_map or leading in range_map:
            # Recover the literal from the query to perform a real seek.
            from repro.sql.ast import BetweenPredicate, ComparisonPredicate
            from repro.sql.parser import parse

            stmt = parse(profile.sql)
            for pred in stmt.where:
                if pred.column.name != leading:
                    continue
                if isinstance(pred, ComparisonPredicate) and pred.op == "=":
                    return int(
                        index_data.seek_equal(leading, pred.value.value).size
                    )
                if isinstance(pred, BetweenPredicate):
                    return int(
                        index_data.seek_range(
                            leading, pred.low.value, pred.high.value
                        ).size
                    )
        return base_rows
