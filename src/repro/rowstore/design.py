"""Physical design container for the row store: indices plus views."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStatistics
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView

#: Deployment throughput for the Figure 14 model (sort + write per byte).
DEPLOY_SECONDS_PER_GB = 300.0


@dataclass(frozen=True)
class RowstoreDesign:
    """An immutable set of indices and materialized views."""

    indices: frozenset[Index] = frozenset()
    views: frozenset[MaterializedView] = frozenset()

    @classmethod
    def of(cls, *structures: Index | MaterializedView) -> "RowstoreDesign":
        """Convenience constructor from a mix of indices and views."""
        indices = frozenset(s for s in structures if isinstance(s, Index))
        views = frozenset(s for s in structures if isinstance(s, MaterializedView))
        return cls(indices=indices, views=views)

    @classmethod
    def empty(cls) -> "RowstoreDesign":
        """The NoDesign design: every query is a full table scan."""
        return cls()

    def with_structure(self, structure: Index | MaterializedView) -> "RowstoreDesign":
        """Return a new design with ``structure`` added."""
        if isinstance(structure, Index):
            return RowstoreDesign(self.indices | {structure}, self.views)
        return RowstoreDesign(self.indices, self.views | {structure})

    def indices_for(self, table: str) -> list[Index]:
        """Indices anchored on ``table`` (deterministic order)."""
        return sorted(
            (i for i in self.indices if i.table == table), key=lambda i: i.columns
        )

    def views_for(self, table: str) -> list[MaterializedView]:
        """Views anchored on ``table`` (deterministic order)."""
        return sorted(
            (v for v in self.views if v.table == table),
            key=lambda v: (v.group_columns, v.measure_columns),
        )

    def price(
        self, schema: Schema, statistics: dict[str, TableStatistics]
    ) -> int:
        """Total bytes of all structures — the paper's ``price(D)``."""
        total = 0
        for index in self.indices:
            total += index.size_bytes(schema.table(index.table))
        for view in self.views:
            total += view.size_bytes(schema.table(view.table), statistics[view.table])
        return total

    def deployment_seconds(
        self, schema: Schema, statistics: dict[str, TableStatistics]
    ) -> float:
        """Modeled wall-clock time to build this design (Figure 14)."""
        return self.price(schema, statistics) / 1e9 * DEPLOY_SECONDS_PER_GB

    def __len__(self) -> int:
        return len(self.indices) + len(self.views)

    def __iter__(self):
        yield from sorted(self.indices, key=lambda i: (i.table, i.columns))
        yield from sorted(
            self.views, key=lambda v: (v.table, v.group_columns, v.measure_columns)
        )

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        if not len(self):
            return "(empty design)"
        return "\n".join(str(s) for s in self)
