"""Composite sorted indices for the row store.

An :class:`Index` over ``(c1, ..., ck)`` behaves like a B-tree: a query can
seek on the longest prefix of index columns carrying equality predicates,
optionally extended by one range predicate, and then fetches the matching
base rows (paying row-store random-access width).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Table

#: Per-entry overhead of an index entry beyond the key bytes (row pointer
#: plus node bookkeeping).
INDEX_ENTRY_OVERHEAD_BYTES = 12


@dataclass(frozen=True)
class Index:
    """An immutable composite index definition (hashable design atom)."""

    table: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("an index must have at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in index on {self.table!r}")

    @property
    def column_set(self) -> frozenset[str]:
        return frozenset(self.columns)

    def seek_prefix(
        self, eq_columns: set[str] | frozenset[str], range_columns: set[str] | frozenset[str]
    ) -> tuple[int, bool]:
        """How much of the key a query can seek on.

        Returns ``(depth, used_range)``: the number of leading key columns
        consumed (equality columns, plus at most one trailing range column).
        ``(0, False)`` means the index is useless for the filter.
        """
        depth = 0
        for name in self.columns:
            if name in eq_columns:
                depth += 1
                continue
            if name in range_columns:
                return depth + 1, True
            break
        return depth, False

    def size_bytes(self, table: Table, row_count: int | None = None) -> int:
        """Estimated size: key bytes plus per-entry overhead."""
        rows = table.row_count if row_count is None else row_count
        key_bytes = sum(table.column(name).type.byte_width for name in self.columns)
        return rows * (key_bytes + INDEX_ENTRY_OVERHEAD_BYTES)

    def to_sql(self) -> str:
        """Render the defining DDL (for logs and examples)."""
        name = f"idx_{self.table}_{'_'.join(self.columns)}"
        return f"CREATE INDEX {name} ON {self.table} ({', '.join(self.columns)})"

    def __str__(self) -> str:
        return f"idx({self.table}: {','.join(self.columns)})"
