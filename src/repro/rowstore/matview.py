"""Materialized aggregate views for the row store.

A :class:`MaterializedView` pre-aggregates one table by a set of grouping
columns and stores SUM/COUNT/MIN/MAX summaries for a set of measure
columns.  A query can be answered from the view (rolled up) when:

* it is an aggregate query over the same anchor table with no joins,
* its GROUP BY columns are a subset of the view's grouping columns,
* its filters touch only grouping columns (so the filter can be applied to
  the view's rows), and
* every requested aggregate can be re-derived from the stored summaries
  (``SUM`` from SUM, ``COUNT`` from COUNT, ``AVG`` from SUM/COUNT,
  ``MIN``/``MAX`` from MIN/MAX; ``DISTINCT`` aggregates cannot roll up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Table
from repro.catalog.statistics import TableStatistics
from repro.costing.profile import QueryProfile

#: Stored summary width per measure (SUM, COUNT, MIN, MAX at 8 bytes each).
MEASURE_BYTES = 32


@dataclass(frozen=True)
class MaterializedView:
    """An immutable materialized-view definition (hashable design atom)."""

    table: str
    group_columns: tuple[str, ...]
    measure_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.group_columns:
            raise ValueError("a materialized view needs grouping columns")
        if len(set(self.group_columns)) != len(self.group_columns):
            raise ValueError(f"duplicate group columns in view on {self.table!r}")
        if len(set(self.measure_columns)) != len(self.measure_columns):
            raise ValueError(f"duplicate measures in view on {self.table!r}")
        overlap = set(self.group_columns) & set(self.measure_columns)
        if overlap:
            raise ValueError(f"columns {sorted(overlap)} are both group and measure")

    @property
    def group_set(self) -> frozenset[str]:
        return frozenset(self.group_columns)

    @property
    def measure_set(self) -> frozenset[str]:
        return frozenset(self.measure_columns)

    def estimated_rows(self, statistics: TableStatistics) -> int:
        """Expected view row count: the product of grouping NDVs, capped."""
        rows = 1
        for name in self.group_columns:
            if name in statistics.columns:
                rows *= max(1, statistics.columns[name].ndv)
            rows = min(rows, statistics.row_count)
        return max(1, rows)

    def row_bytes(self, table: Table) -> int:
        """Width of one view row."""
        group_bytes = sum(
            table.column(name).type.byte_width
            for name in self.group_columns
            if table.has_column(name)
        )
        return group_bytes + MEASURE_BYTES * max(len(self.measure_columns), 1)

    def size_bytes(self, table: Table, statistics: TableStatistics) -> int:
        """Estimated on-disk size."""
        return self.estimated_rows(statistics) * self.row_bytes(table)

    def answers(self, profile: QueryProfile) -> bool:
        """Whether this view can answer ``profile`` by rollup."""
        if profile.anchor.table != self.table or profile.dimensions:
            return False
        if not profile.has_aggregates:
            return False
        # Plain select columns must be grouping columns (SQL requires this
        # for aggregate queries anyway).
        if not set(profile.select_columns) <= self.group_set:
            return False
        if not set(profile.group_by) <= self.group_set:
            return False
        if not profile.anchor.predicate_columns <= self.group_set:
            return False
        if not set(profile.order_by) <= self.group_set | set(profile.select_columns):
            # ORDER BY on aggregate outputs is fine; on base columns it must
            # be a grouping column.  Aggregate aliases resolve upstream, so
            # any order_by entry surviving here names a base column.
            if not set(profile.order_by) <= self.group_set:
                return False
        for agg in profile.aggregates:
            if agg.distinct:
                return False
            if agg.column is None:
                continue  # COUNT(*) rolls up from stored COUNT
            if agg.column not in self.measure_set:
                return False
        return True

    def to_sql(self) -> str:
        """Render the defining DDL (for logs and examples)."""
        groups = ", ".join(self.group_columns)
        measures = ", ".join(
            f"SUM({m}), COUNT({m}), MIN({m}), MAX({m})" for m in self.measure_columns
        )
        select = groups if not measures else f"{groups}, {measures}, COUNT(*)"
        name = f"mv_{self.table}_{'_'.join(self.group_columns)}"
        return (
            f"CREATE MATERIALIZED VIEW {name} AS "
            f"SELECT {select} FROM {self.table} GROUP BY {groups}"
        )

    def __str__(self) -> str:
        return (
            f"mv({self.table}: by {','.join(self.group_columns)}"
            f" / {','.join(self.measure_columns) or '-'})"
        )
