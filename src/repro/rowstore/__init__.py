"""Row-store engine substrate (the DBMS-X-like system of the paper).

Physical designs here are sets of **composite indices** and **materialized
aggregate views** — the structure types the paper's DBMS-X advisor
recommends.  Without a design, queries pay full-width table scans (a row
store reads whole rows, unlike the columnar engine).

* :mod:`repro.rowstore.index` — composite sorted indices,
* :mod:`repro.rowstore.matview` — materialized aggregate views,
* :mod:`repro.rowstore.design` — the :class:`RowstoreDesign` container,
* :mod:`repro.rowstore.optimizer` — access-path selection and the what-if
  cost model,
* :mod:`repro.rowstore.storage` — row-major storage with real index scans
  and view maintenance, for validation.
"""

from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView
from repro.rowstore.optimizer import RowstoreCostModel
from repro.rowstore.storage import RowstoreDatabase, RowstoreExecutor

__all__ = [
    "Index",
    "MaterializedView",
    "RowstoreCostModel",
    "RowstoreDatabase",
    "RowstoreDesign",
    "RowstoreExecutor",
]
