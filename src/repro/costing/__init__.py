"""Engine-agnostic costing infrastructure.

All three engines price queries from the same parsed, schema-resolved,
selectivity-annotated :class:`QueryProfile`; only the translation from
profile to milliseconds differs per engine.  On top of that shared
profile sits the :class:`CostEvaluationService` — a fingerprinted memo
cache with batched neighborhood evaluation and instrumentation — which
every :class:`repro.designers.base.DesignAdapter` routes its what-if
calls through.
"""

from repro.costing.profile import QueryProfile, QueryProfiler, TableAccess
from repro.costing.report import WorkloadCostReport
from repro.costing.service import (
    CostEvaluationService,
    CostModel,
    CostServiceStats,
    design_fingerprint,
    query_fingerprint,
    workload_fingerprint,
)

__all__ = [
    "CostEvaluationService",
    "CostModel",
    "CostServiceStats",
    "QueryProfile",
    "QueryProfiler",
    "TableAccess",
    "WorkloadCostReport",
    "design_fingerprint",
    "query_fingerprint",
    "workload_fingerprint",
]
