"""Engine-agnostic costing infrastructure.

Both the columnar engine and the row store price queries from the same
parsed, schema-resolved, selectivity-annotated :class:`QueryProfile`; only
the translation from profile to milliseconds differs per engine.
"""

from repro.costing.profile import QueryProfile, QueryProfiler, TableAccess
from repro.costing.report import WorkloadCostReport

__all__ = ["QueryProfile", "QueryProfiler", "TableAccess", "WorkloadCostReport"]
