"""Engine-agnostic costing infrastructure.

All three engines price queries from the same parsed, schema-resolved,
selectivity-annotated :class:`QueryProfile`; only the translation from
profile to milliseconds differs per engine.  On top of that shared
profile sits the :class:`CostEvaluationService` — a fingerprinted memo
cache with batched neighborhood evaluation and instrumentation — which
every :class:`repro.designers.base.DesignAdapter` routes its what-if
calls through.
"""

from repro.costing.kernel import kernel_for
from repro.costing.memo import BoundedMemo
from repro.costing.profile import QueryProfile, QueryProfiler, TableAccess
from repro.costing.report import WorkloadCostReport
from repro.costing.service import (
    KERNEL_MIN_BATCH,
    CostEvaluationService,
    CostModel,
    CostServiceStats,
    design_fingerprint,
    query_fingerprint,
    workload_fingerprint,
)

__all__ = [
    "BoundedMemo",
    "CostEvaluationService",
    "CostModel",
    "CostServiceStats",
    "KERNEL_MIN_BATCH",
    "QueryProfile",
    "QueryProfiler",
    "TableAccess",
    "WorkloadCostReport",
    "design_fingerprint",
    "kernel_for",
    "query_fingerprint",
    "workload_fingerprint",
]
