"""Aggregate latency reports shared by both engines' cost models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WorkloadCostReport:
    """Per-query and aggregate latency of a workload under one design.

    The paper reports two headline numbers per window (Figures 7, 10, 15):
    the *average* latency (frequency-weighted mean over queries) and the
    *maximum* latency (the single worst query).
    """

    per_query_ms: list[float]
    weights: list[float]

    @property
    def average_ms(self) -> float:
        """Frequency-weighted mean latency."""
        total_weight = sum(self.weights)
        if total_weight == 0:
            return 0.0
        weighted = sum(c * w for c, w in zip(self.per_query_ms, self.weights))
        return weighted / total_weight

    @property
    def max_ms(self) -> float:
        """Worst single-query latency."""
        return max(self.per_query_ms, default=0.0)

    @property
    def total_ms(self) -> float:
        """Frequency-weighted total work."""
        return sum(c * w for c, w in zip(self.per_query_ms, self.weights))
