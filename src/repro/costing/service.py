"""Unified cost-evaluation service shared by all three design substrates.

CliffGuard's inner loop (Algorithm 2) evaluates ``f(W, D)`` for every
sampled neighbor under every candidate design; with the paper defaults
(n = 20 samples + the base workload, 5 iterations) the same queries are
re-costed hundreds of times per replay window even though neighbors
overwhelmingly share queries.  The paper itself stresses that what-if
cost calls dominate designer runtime (Figure 14), so this module puts
**one memoizing, batching, instrumented layer** between the consumers
(CliffGuard, the baseline designers, the replay harness, the CLI) and
the three engine cost models.

The service only assumes the :class:`CostModel` protocol — ``profile``,
``query_cost``, ``workload_cost`` — which all three substrates
(:class:`repro.engine.optimizer.ColumnarCostModel`,
:class:`repro.rowstore.optimizer.RowstoreCostModel`,
:class:`repro.samples.optimizer.SamplesCostModel`) already satisfy, so
the cache and batching are shared rather than re-implemented per engine.

Caching contract (see ``docs/cost_model.md`` for the prose version):

* **Fingerprints are content hashes.**  A design's fingerprint digests
  the canonical DDL of its structures in deterministic order; a query's
  fingerprint digests its exact SQL text (two queries sharing a template
  but differing in literals cost differently, so the template alone is
  not a sound key).  Content-identical designs therefore share cache
  entries even when they are distinct objects.
* **Two levels.**  Level 1 memoizes per-(design, query) costs; level 2
  memoizes whole :class:`WorkloadCostReport` aggregates per
  (design, workload).  Both are bounded LRUs.
* **Bit-identical results.**  Cached values are the exact floats the
  underlying cost model produced — the cached-vs-uncached property test
  in ``tests/test_costing_service.py`` asserts equality, not closeness.
* **Explicit invalidation.**  The service never watches the cost model
  for mutation; callers that change statistics or cost constants must
  call :meth:`CostEvaluationService.invalidate_design` or
  :meth:`CostEvaluationService.clear`.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.costing.kernel import kernel_for
from repro.costing.report import WorkloadCostReport
from repro.obs import MetricsRegistry, get_metrics, tracer
from repro.parallel.backends import ExecutionBackend, ThreadBackend, resolve_backend
from repro.parallel.partition import chunk_count, contiguous_chunks

#: Default bound on the per-(design, query) memo cache.  Sized to hold a
#: full bench-scale CliffGuard run's working set (~550k distinct pairs:
#: the nominal designer's candidate×query matrix dominates); a bound just
#: under the working set thrashes and loses all cross-iteration reuse.
DEFAULT_MAX_QUERY_ENTRIES = 1_048_576
#: Default bound on the per-(design, workload) aggregate cache.
DEFAULT_MAX_WORKLOAD_ENTRIES = 4_096
#: Designs whose fingerprints are memoized (they are hashable, so the
#: digest only has to be computed once per distinct design).
DEFAULT_MAX_FINGERPRINTS = 16_384
#: Miss batches smaller than this stay on the scalar path: compiling the
#: structure-of-arrays batch has fixed overhead that only pays off once a
#: vectorized call amortizes it over enough (structure, query) pairs.
KERNEL_MIN_BATCH = 8


@runtime_checkable
class CostModel(Protocol):
    """The what-if surface every engine cost model exposes.

    All three substrates satisfy this structurally; the service (and the
    :class:`repro.designers.base.DesignAdapter` refactored onto it) only
    ever touches these three members.
    """

    def profile(self, sql: str):  # pragma: no cover - protocol
        """Parse and schema-resolve one SQL text."""
        ...

    def query_cost(self, sql_or_profile, design) -> float:  # pragma: no cover
        """Estimated latency (model ms) of one query under ``design``."""
        ...

    def workload_cost(self, queries, design) -> WorkloadCostReport:  # pragma: no cover
        """Latency report of a workload under ``design``."""
        ...


# -- fingerprints ----------------------------------------------------------------


def _digest(*parts: str) -> str:
    h = hashlib.blake2b(digest_size=12)
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def query_fingerprint(sql: str) -> str:
    """Stable content hash of one query's exact SQL text."""
    return _digest("q", sql)


def design_fingerprint(design) -> str:
    """Stable content hash of a design's structures.

    Designs iterate their structures in deterministic order and every
    structure renders stable DDL via ``str``, so two content-identical
    designs — even distinct objects built in different ways — produce
    the same fingerprint.
    """
    return _digest("d", *[str(structure) for structure in design])


def workload_fingerprint(queries: Iterable) -> str:
    """Stable content hash of a (sql, weight) sequence, order-sensitive."""
    parts: list[str] = ["w"]
    for query in queries:
        if isinstance(query, str):
            parts.append(query)
            parts.append("1.0")
        else:
            parts.append(query.sql)
            parts.append(repr(float(query.frequency)))
    return _digest(*parts)


# -- instrumentation -------------------------------------------------------------


@dataclass
class CostServiceStats:
    """Counters for one service (cumulative; see :meth:`snapshot`)."""

    #: Query-cost lookups requested by consumers (hits + misses).
    query_requests: int = 0
    #: Lookups served from the per-(design, query) cache.
    query_hits: int = 0
    #: Raw calls into the underlying cost model's ``query_cost``.
    raw_model_calls: int = 0
    #: Workload-aggregate lookups requested (hits + misses).
    workload_requests: int = 0
    #: Aggregates served from the workload-level cache.
    workload_hits: int = 0
    #: Duplicate (design, query) pairs collapsed by batched evaluation
    #: before any cache or model was consulted.
    dedup_saved: int = 0
    #: Wall-clock seconds spent inside evaluation entry points.
    eval_seconds: float = 0.0
    #: Cache entries dropped by the LRU bound or explicit invalidation.
    evictions: int = 0
    #: Vectorized kernel dispatches (one per compiled batch evaluation).
    kernel_batch_calls: int = 0
    #: (design, query) pairs priced by the vectorized kernel; these are a
    #: subset of ``raw_model_calls`` (kernel-priced pairs still count as
    #: raw evaluations — the kernel is an implementation of the model,
    #: not a cache level).
    kernel_pairs_priced: int = 0

    @property
    def query_misses(self) -> int:
        return self.query_requests - self.query_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of query-cost lookups served from cache."""
        if self.query_requests == 0:
            return 0.0
        return self.query_hits / self.query_requests

    @property
    def dedup_ratio(self) -> float:
        """Fraction of batched lookups collapsed as duplicates."""
        total = self.query_requests + self.dedup_saved
        if total == 0:
            return 0.0
        return self.dedup_saved / total

    def snapshot(self) -> "CostServiceStats":
        """An independent copy (for before/after deltas)."""
        return CostServiceStats(
            query_requests=self.query_requests,
            query_hits=self.query_hits,
            raw_model_calls=self.raw_model_calls,
            workload_requests=self.workload_requests,
            workload_hits=self.workload_hits,
            dedup_saved=self.dedup_saved,
            eval_seconds=self.eval_seconds,
            evictions=self.evictions,
            kernel_batch_calls=self.kernel_batch_calls,
            kernel_pairs_priced=self.kernel_pairs_priced,
        )

    def since(self, earlier: "CostServiceStats") -> "CostServiceStats":
        """The delta between this snapshot and an ``earlier`` one."""
        return CostServiceStats(
            query_requests=self.query_requests - earlier.query_requests,
            query_hits=self.query_hits - earlier.query_hits,
            raw_model_calls=self.raw_model_calls - earlier.raw_model_calls,
            workload_requests=self.workload_requests - earlier.workload_requests,
            workload_hits=self.workload_hits - earlier.workload_hits,
            dedup_saved=self.dedup_saved - earlier.dedup_saved,
            eval_seconds=self.eval_seconds - earlier.eval_seconds,
            evictions=self.evictions - earlier.evictions,
            kernel_batch_calls=self.kernel_batch_calls - earlier.kernel_batch_calls,
            kernel_pairs_priced=self.kernel_pairs_priced - earlier.kernel_pairs_priced,
        )

    def rows(self) -> list[list[object]]:
        """(label, value) rows for the reporting tables."""
        return [
            ["raw cost-model calls", self.raw_model_calls],
            ["query-cost lookups", self.query_requests],
            ["query-cache hits", self.query_hits],
            ["query-cache hit rate", self.hit_rate],
            ["batched duplicates collapsed", self.dedup_saved],
            ["dedup ratio", self.dedup_ratio],
            ["workload-aggregate lookups", self.workload_requests],
            ["workload-aggregate hits", self.workload_hits],
            ["evaluation wall-time (s)", self.eval_seconds],
            ["cache evictions", self.evictions],
            ["kernel batch dispatches", self.kernel_batch_calls],
            ["kernel-priced pairs", self.kernel_pairs_priced],
        ]


# -- the service -----------------------------------------------------------------


@dataclass
class _Timer:
    stats: CostServiceStats
    started: float = field(default=0.0)

    def __enter__(self) -> "_Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.eval_seconds += time.perf_counter() - self.started


class CostEvaluationService:
    """Fingerprinted memo cache + batched evaluation over one cost model."""

    def __init__(
        self,
        cost_model: CostModel,
        max_query_entries: int = DEFAULT_MAX_QUERY_ENTRIES,
        max_workload_entries: int = DEFAULT_MAX_WORKLOAD_ENTRIES,
        max_workers: int | None = None,
        backend: ExecutionBackend | str | None = None,
        jobs: int | None = None,
    ):
        if max_query_entries < 1 or max_workload_entries < 1:
            raise ValueError("cache bounds must be positive")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when set")
        self.cost_model = cost_model
        self.max_query_entries = max_query_entries
        self.max_workload_entries = max_workload_entries
        self.max_workers = max_workers
        # ``backend`` is the one knob; ``max_workers`` is the pre-backend
        # spelling of the thread pool and maps onto ThreadBackend.
        self.backend = resolve_backend(backend, jobs=jobs)
        if self.backend is None and max_workers is not None:
            self.backend = ThreadBackend(jobs=max_workers)
        #: Vectorized batch kernel for the model, or None (scalar path).
        #: Dispatch is exact-type; stubs and subclasses stay scalar.
        self.kernel = kernel_for(cost_model)
        self.stats = CostServiceStats()
        #: (design_fp, sql) -> cost, LRU-ordered (oldest first).
        self._query_cache: OrderedDict[tuple[str, str], float] = OrderedDict()
        #: (design_fp, workload_fp) -> WorkloadCostReport, LRU-ordered.
        self._workload_cache: OrderedDict[tuple[str, str], WorkloadCostReport] = (
            OrderedDict()
        )
        #: design object -> fingerprint (designs are hashable by content).
        self._fingerprints: OrderedDict[object, str] = OrderedDict()

    # -- fingerprints --------------------------------------------------------------

    def design_fingerprint(self, design) -> str:
        """Memoized content hash of ``design``."""
        cached = self._fingerprints.get(design)
        if cached is not None:
            self._fingerprints.move_to_end(design)
            return cached
        fingerprint = design_fingerprint(design)
        self._fingerprints[design] = fingerprint
        if len(self._fingerprints) > DEFAULT_MAX_FINGERPRINTS:
            self._fingerprints.popitem(last=False)
        return fingerprint

    # -- cache plumbing -------------------------------------------------------------

    @property
    def cached_query_entries(self) -> int:
        return len(self._query_cache)

    @property
    def cached_workload_entries(self) -> int:
        return len(self._workload_cache)

    def clear(self) -> None:
        """Drop every cached entry (fingerprints survive: content hashes
        stay valid as long as the design objects themselves do)."""
        dropped = len(self._query_cache) + len(self._workload_cache)
        self.stats.evictions += dropped
        self._query_cache.clear()
        self._workload_cache.clear()
        t = tracer()
        if t.enabled and dropped:
            t.emit("cache_evict", reason="clear", entries=dropped)

    def invalidate_design(self, design) -> None:
        """Drop every cached entry priced under ``design``.

        The service never watches the cost model for mutation; callers
        that update statistics or cost constants for a design must
        invalidate it (or :meth:`clear`) themselves.
        """
        fingerprint = self.design_fingerprint(design)
        stale_queries = [k for k in self._query_cache if k[0] == fingerprint]
        stale_workloads = [k for k in self._workload_cache if k[0] == fingerprint]
        for key in stale_queries:
            del self._query_cache[key]
        for key in stale_workloads:
            del self._workload_cache[key]
        dropped = len(stale_queries) + len(stale_workloads)
        self.stats.evictions += dropped
        t = tracer()
        if t.enabled and dropped:
            t.emit(
                "cache_evict",
                reason="invalidate_design",
                design=fingerprint,
                entries=dropped,
            )

    def reset_stats(self) -> None:
        self.stats = CostServiceStats()

    # -- checkpoint/resume support ---------------------------------------------------

    def export_state(self) -> dict:
        """Snapshot the memo caches and counters for a run checkpoint.

        The export preserves LRU order (items lists keep insertion
        order) and the exact cached floats, so a service restored via
        :meth:`import_state` serves the same hits, misses, and values —
        in the same eviction order — as the service it was exported
        from.  That is what makes a resumed run's per-window counter
        deltas bit-identical to the uninterrupted run's (see
        docs/state.md).  The design-fingerprint memo is not exported:
        fingerprints are content hashes, recomputed deterministically on
        first use.
        """
        return {
            "query": list(self._query_cache.items()),
            "workload": list(self._workload_cache.items()),
            "stats": self.stats.snapshot(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a cache export from :meth:`export_state` in place."""
        self._query_cache = OrderedDict(state["query"])
        self._workload_cache = OrderedDict(state["workload"])
        self.stats = state["stats"].snapshot()

    def _remember_query(self, key: tuple[str, str], cost: float) -> None:
        self._query_cache[key] = cost
        if len(self._query_cache) > self.max_query_entries:
            self._query_cache.popitem(last=False)
            self.stats.evictions += 1
            t = tracer()
            if t.enabled:
                t.emit("cache_evict", reason="lru", cache="query", entries=1)

    def _remember_workload(
        self, key: tuple[str, str], report: WorkloadCostReport
    ) -> None:
        self._workload_cache[key] = report
        if len(self._workload_cache) > self.max_workload_entries:
            self._workload_cache.popitem(last=False)
            self.stats.evictions += 1
            t = tracer()
            if t.enabled:
                t.emit("cache_evict", reason="lru", cache="workload", entries=1)

    # -- single-query costing --------------------------------------------------------

    def query_cost(self, sql_or_profile, design) -> float:
        """Memoized ``cost_model.query_cost`` (bit-identical to uncached)."""
        sql = sql_or_profile if isinstance(sql_or_profile, str) else sql_or_profile.sql
        key = (self.design_fingerprint(design), sql)
        self.stats.query_requests += 1
        cached = self._query_cache.get(key)
        if cached is not None:
            self.stats.query_hits += 1
            self._query_cache.move_to_end(key)
            return cached
        with _Timer(self.stats):
            cost = self.cost_model.query_cost(sql_or_profile, design)
            self.stats.raw_model_calls += 1
        self._remember_query(key, cost)
        return cost

    def query_costs(self, sqls: Sequence[str], design) -> dict[str, float]:
        """Batched per-query costs for one design, deduplicated first."""
        unique = list(dict.fromkeys(sqls))
        self.stats.dedup_saved += len(sqls) - len(unique)
        return {sql: self.query_cost(sql, design) for sql in unique}

    # -- workload costing -------------------------------------------------------------

    def workload_cost(self, queries, design) -> WorkloadCostReport:
        """Memoized workload report, assembled from the per-query cache.

        Accepts the same inputs the engine cost models do: an iterable of
        ``WorkloadQuery``-like objects (``sql`` + ``frequency``) or raw
        SQL strings (weight 1).
        """
        materialized = list(queries)
        design_fp = self.design_fingerprint(design)
        key = (design_fp, workload_fingerprint(materialized))
        self.stats.workload_requests += 1
        cached = self._workload_cache.get(key)
        if cached is not None:
            self.stats.workload_hits += 1
            self._workload_cache.move_to_end(key)
            return cached
        costs: list[float] = []
        weights: list[float] = []
        for query in materialized:
            if isinstance(query, str):
                sql, weight = query, 1.0
            else:
                sql, weight = query.sql, float(query.frequency)
            costs.append(self.query_cost(sql, design))
            weights.append(weight)
        report = WorkloadCostReport(per_query_ms=costs, weights=weights)
        self._remember_workload(key, report)
        return report

    # -- batched neighborhood evaluation ----------------------------------------------

    def evaluate_neighborhood(
        self, designs: Sequence, workloads: Sequence
    ) -> list[list[WorkloadCostReport]]:
        """Cost every design × workload pair, deduplicating shared queries.

        This replaces the per-neighbor list comprehension in CliffGuard's
        neighborhood exploration: the sampled neighbors overwhelmingly
        share queries (they are drawn from the same history pool), so each
        distinct (design, query) pair is costed exactly once no matter how
        many neighbors contain it.  Returns ``result[d][w]``, the report
        of ``workloads[w]`` under ``designs[d]``.

        When the service was built with an execution backend (or the
        legacy ``max_workers``), distinct cache misses fan out across the
        backend's workers in deterministic contiguous chunks; results are
        bit-identical to the serial path at any worker count (the cost
        models are pure given fixed statistics, workers return per-task
        cost lists, and the parent merges them — and updates every
        counter — in chunk order).
        """
        with _Timer(self.stats):
            materialized = [list(w) for w in workloads]
            results: list[list[WorkloadCostReport]] = []
            for design in designs:
                design_fp = self.design_fingerprint(design)
                occurrences = 0
                unique: dict[str, None] = {}
                per_workload: list[tuple[list[str], list[float]]] = []
                for queries in materialized:
                    sqls: list[str] = []
                    weights: list[float] = []
                    for query in queries:
                        if isinstance(query, str):
                            sql, weight = query, 1.0
                        else:
                            sql, weight = query.sql, float(query.frequency)
                        sqls.append(sql)
                        weights.append(weight)
                        occurrences += 1
                        unique.setdefault(sql)
                    per_workload.append((sqls, weights))
                misses = [
                    sql for sql in unique if (design_fp, sql) not in self._query_cache
                ]
                self.stats.dedup_saved += occurrences - len(unique)
                self.stats.query_requests += len(unique)
                self.stats.query_hits += len(unique) - len(misses)
                self._fill_misses(design, design_fp, misses)
                reports: list[WorkloadCostReport] = []
                for sqls, weights in per_workload:
                    costs = [
                        self._cached_cost(design_fp, sql, design) for sql in sqls
                    ]
                    reports.append(
                        WorkloadCostReport(per_query_ms=costs, weights=weights)
                    )
                results.append(reports)
            return results

    def _cached_cost(self, design_fp: str, sql: str, design) -> float:
        """Serve one already-prefetched cost without re-counting a lookup.

        Falls back to the model if the LRU bound evicted the entry between
        prefetch and assembly (only possible when a single neighborhood
        exceeds ``max_query_entries``).
        """
        cached = self._query_cache.get((design_fp, sql))
        if cached is not None:
            self._query_cache.move_to_end((design_fp, sql))
            return cached
        cost = self.cost_model.query_cost(sql, design)
        self.stats.raw_model_calls += 1
        self._remember_query((design_fp, sql), cost)
        return cost

    @property
    def backend_name(self) -> str:
        """Name of the execution backend filling cache misses."""
        return self.backend.name if self.backend is not None else "serial"

    def publish_metrics(self, registry: MetricsRegistry | None = None) -> None:
        """Publish the cumulative :class:`CostServiceStats` (plus current
        cache sizes) into a metrics registry (default: the process-wide
        one; see :func:`repro.obs.get_metrics`).

        Counters are published as gauges because the service's stats are
        already cumulative — the registry mirrors the latest snapshot
        rather than double-accumulating.  ``python -m repro stats``
        renders the result.
        """
        registry = registry if registry is not None else get_metrics()
        registry.gauge("costing.query_requests").set(self.stats.query_requests)
        registry.gauge("costing.query_hits").set(self.stats.query_hits)
        registry.gauge("costing.raw_model_calls").set(self.stats.raw_model_calls)
        registry.gauge("costing.workload_requests").set(self.stats.workload_requests)
        registry.gauge("costing.workload_hits").set(self.stats.workload_hits)
        registry.gauge("costing.dedup_saved").set(self.stats.dedup_saved)
        registry.gauge("costing.eval_seconds").set(self.stats.eval_seconds)
        registry.gauge("costing.evictions").set(self.stats.evictions)
        registry.gauge("costing.hit_rate").set(self.stats.hit_rate)
        registry.gauge("costing.cached_query_entries").set(self.cached_query_entries)
        registry.gauge("costing.cached_workload_entries").set(
            self.cached_workload_entries
        )
        registry.gauge("costing.kernel.batch_calls").set(self.stats.kernel_batch_calls)
        registry.gauge("costing.kernel.pairs_priced").set(
            self.stats.kernel_pairs_priced
        )

    def _fill_misses(self, design, design_fp: str, misses: list[str]) -> None:
        """Cost the uncached SQL texts for one design (optionally fanned
        out over the execution backend).

        Large miss batches go through the vectorized kernel: the profiles
        and the design's structures are compiled into structure-of-arrays
        form once and every miss is priced in a handful of numpy ops.
        When a backend is attached, workers receive compiled array slices
        (``batch.take``), not per-call Python objects.  Kernel results are
        bit-identical to the scalar path at any chunking (every kernel op
        is element-wise or a per-query reduction), so cache contents and
        counters never depend on the backend.

        Scalar workers are pure: they return per-chunk cost lists and
        never touch the cache or the counters.  The parent merges chunk
        results in chunk order — chunks are ordered contiguous slices of
        ``misses``, so cache insertion order and every counter match the
        serial path exactly.
        """
        if not misses:
            return
        t = tracer()
        if self.kernel is not None and len(misses) >= KERNEL_MIN_BATCH:
            self._fill_misses_kernel(design, design_fp, misses)
            return
        if self.backend is None or len(misses) < 2:
            if t.enabled:
                t.emit(
                    "cache_fill",
                    design=design_fp,
                    misses=len(misses),
                    backend="inline",
                    chunks=1,
                )
            for sql in misses:
                cost = self.cost_model.query_cost(sql, design)
                self.stats.raw_model_calls += 1
                self._remember_query((design_fp, sql), cost)
            return
        chunks = contiguous_chunks(misses, chunk_count(len(misses), self.backend.jobs))
        if t.enabled:
            t.emit(
                "cache_fill",
                design=design_fp,
                misses=len(misses),
                backend=self.backend.name,
                chunks=len(chunks),
            )
        tasks = [(self.cost_model, design, chunk) for chunk in chunks]
        per_chunk = self.backend.map(_evaluate_cost_chunk, tasks)
        for chunk, costs in zip(chunks, per_chunk):
            for sql, cost in zip(chunk, costs):
                self.stats.raw_model_calls += 1
                self._remember_query((design_fp, sql), cost)

    def _fill_misses_kernel(self, design, design_fp: str, misses: list[str]) -> None:
        """Vectorized miss fill: one compile, one (or chunked) batch eval."""
        t = tracer()
        inline = self.backend is None or len(misses) < 2
        if t.enabled:
            # Same contract as the scalar path: every miss fill emits one
            # cache_fill, whatever engine prices it.
            t.emit(
                "cache_fill",
                design=design_fp,
                misses=len(misses),
                backend="inline" if inline else self.backend.name,
                chunks=1 if inline else chunk_count(len(misses), self.backend.jobs),
            )
        profiles = [self.cost_model.profile(sql) for sql in misses]
        batch = self.kernel.compile(profiles, list(design))
        if t.enabled:
            t.emit(
                "kernel_compile",
                substrate=self.kernel.name,
                queries=batch.query_count,
                structures=batch.structure_count,
                words=batch.words,
            )
        if self.backend is None or len(misses) < 2:
            costs = [float(c) for c in batch.design_costs()]
        else:
            indices = list(range(len(misses)))
            chunks = contiguous_chunks(
                indices, chunk_count(len(misses), self.backend.jobs)
            )
            tasks = [(batch.take(chunk),) for chunk in chunks]
            per_chunk = self.backend.map(_evaluate_kernel_chunk, tasks)
            costs = [cost for chunk_costs in per_chunk for cost in chunk_costs]
        for sql, cost in zip(misses, costs):
            self.stats.raw_model_calls += 1
            self._remember_query((design_fp, sql), cost)
        self.stats.kernel_batch_calls += 1
        self.stats.kernel_pairs_priced += len(misses)
        if t.enabled:
            t.emit(
                "kernel_batch",
                substrate=self.kernel.name,
                design=design_fp,
                pairs=len(misses),
                structures=batch.structure_count,
            )

    # -- batched design sweeps ---------------------------------------------------------

    def workload_costs_batch(self, designs: Sequence, workload) -> list[WorkloadCostReport]:
        """Cost one workload under many designs as matrix reductions.

        This is the neighborhood-exploration shape of the paper's
        Algorithm 4 turned sideways: the query axis is fixed, the design
        axis fans out.  The structures of *all* designs are compiled into
        one structure-of-arrays batch; each design's costs are then a
        masked min-reduction over its member rows.  Caches and counters
        behave exactly as if :meth:`workload_cost` had been called once
        per design in order — cached designs are served without touching
        the kernel, and duplicate designs hit the entries their first
        occurrence filled.
        """
        with _Timer(self.stats):
            materialized = list(workload)
            sqls: list[str] = []
            weights: list[float] = []
            for query in materialized:
                if isinstance(query, str):
                    sqls.append(query)
                    weights.append(1.0)
                else:
                    sqls.append(query.sql)
                    weights.append(float(query.frequency))
            workload_fp = workload_fingerprint(materialized)
            unique = list(dict.fromkeys(sqls))
            designs = list(designs)
            batch = None
            row_of: dict = {}
            q_index: dict[str, int] = {}
            reports: list[WorkloadCostReport] = []
            t = tracer()
            for design in designs:
                design_fp = self.design_fingerprint(design)
                self.stats.workload_requests += 1
                key = (design_fp, workload_fp)
                cached = self._workload_cache.get(key)
                if cached is not None:
                    self.stats.workload_hits += 1
                    self._workload_cache.move_to_end(key)
                    reports.append(cached)
                    continue
                self.stats.dedup_saved += len(sqls) - len(unique)
                self.stats.query_requests += len(unique)
                misses = [
                    sql for sql in unique if (design_fp, sql) not in self._query_cache
                ]
                self.stats.query_hits += len(unique) - len(misses)
                if self.kernel is None or len(misses) < KERNEL_MIN_BATCH:
                    self._fill_misses(design, design_fp, misses)
                elif misses:
                    if batch is None:
                        # One compile covers every design: the union of all
                        # structures, with per-design membership rows.
                        structures = list(
                            dict.fromkeys(s for d in designs for s in d)
                        )
                        row_of = {s: i for i, s in enumerate(structures)}
                        profiles = [self.cost_model.profile(sql) for sql in unique]
                        batch = self.kernel.compile(profiles, structures)
                        q_index = {sql: i for i, sql in enumerate(unique)}
                        if t.enabled:
                            t.emit(
                                "kernel_compile",
                                substrate=self.kernel.name,
                                queries=batch.query_count,
                                structures=batch.structure_count,
                                words=batch.words,
                            )
                    members = [row_of[s] for s in design]
                    costs = batch.design_costs(members)
                    for sql in misses:
                        self.stats.raw_model_calls += 1
                        self._remember_query(
                            (design_fp, sql), float(costs[q_index[sql]])
                        )
                    self.stats.kernel_batch_calls += 1
                    self.stats.kernel_pairs_priced += len(misses)
                    if t.enabled:
                        t.emit(
                            "kernel_batch",
                            substrate=self.kernel.name,
                            design=design_fp,
                            pairs=len(misses),
                            structures=len(members),
                        )
                per_query = [
                    self._cached_cost(design_fp, sql, design) for sql in sqls
                ]
                report = WorkloadCostReport(
                    per_query_ms=per_query, weights=list(weights)
                )
                self._remember_workload(key, report)
                reports.append(report)
            return reports

    def candidate_costs(self, profiles: Sequence, candidates: Sequence, make_design):
        """``(base_costs, matrix)`` for greedy candidate selection.

        One kernel compile prices the full (candidates × queries) matrix;
        the per-(single-structure design, query) cache is consulted first
        and filled with every newly priced cell, so a designer re-run on
        overlapping candidates reuses prior pricing.  Cells whose
        candidate is unrelated to the query keep the base cost without
        being priced, counted, or cached (an off-table structure cannot
        change any access path); anchor-table candidates that cannot
        serve the query are ``inf``, exactly like the scalar designer.
        """
        if self.kernel is None:
            raise RuntimeError(
                "candidate_costs requires a vectorized kernel; "
                "this cost model only supports the scalar path"
            )
        with _Timer(self.stats):
            profiles = list(profiles)
            candidates = list(candidates)
            sqls = [p.sql for p in profiles]
            empty_fp = self.design_fingerprint(make_design([]))
            batch = self.kernel.compile(profiles, candidates)
            t = tracer()
            if t.enabled:
                t.emit(
                    "kernel_compile",
                    substrate=self.kernel.name,
                    queries=batch.query_count,
                    structures=batch.structure_count,
                    words=batch.words,
                )
            base = np.zeros(len(profiles), dtype=np.float64)
            base_misses: list[int] = []
            self.stats.query_requests += len(sqls)
            for q, sql in enumerate(sqls):
                cached = self._query_cache.get((empty_fp, sql))
                if cached is not None:
                    self.stats.query_hits += 1
                    self._query_cache.move_to_end((empty_fp, sql))
                    base[q] = cached
                else:
                    base_misses.append(q)
            if base_misses:
                fresh = batch.base_costs()
                for q in base_misses:
                    cost = float(fresh[q])
                    base[q] = cost
                    self.stats.raw_model_calls += 1
                    self._remember_query((empty_fp, sqls[q]), cost)
            price, unservable = batch.candidate_frame()
            matrix = np.where(unservable, np.inf, base[None, :])
            fps = [self.design_fingerprint(make_design([c])) for c in candidates]
            cell_misses: list[tuple[int, int]] = []
            hits = 0
            for c in range(len(candidates)):
                fp = fps[c]
                for q in np.nonzero(price[c])[0].tolist():
                    cached = self._query_cache.get((fp, sqls[q]))
                    if cached is not None:
                        self._query_cache.move_to_end((fp, sqls[q]))
                        matrix[c, q] = cached
                        hits += 1
                    else:
                        cell_misses.append((c, q))
            self.stats.query_requests += int(price.sum())
            self.stats.query_hits += hits
            if cell_misses:
                numeric = batch.candidate_costs()
                for c, q in cell_misses:
                    cost = float(numeric[c, q])
                    matrix[c, q] = cost
                    self.stats.raw_model_calls += 1
                    self._remember_query((fps[c], sqls[q]), cost)
            self.stats.kernel_batch_calls += 1
            self.stats.kernel_pairs_priced += len(base_misses) + len(cell_misses)
            if t.enabled:
                t.emit(
                    "kernel_batch",
                    substrate=self.kernel.name,
                    queries=batch.query_count,
                    structures=batch.structure_count,
                    pairs=len(base_misses) + len(cell_misses),
                )
            return base, matrix


def _evaluate_kernel_chunk(task) -> list[float]:
    """Worker body for one compiled-batch chunk of cache misses.

    The task ships a pre-compiled array slice (``batch.take``), so process
    workers never re-profile queries or touch cost-model objects; like the
    scalar worker it returns raw costs only.
    """
    (batch,) = task
    return [float(cost) for cost in batch.design_costs()]


def _evaluate_cost_chunk(task) -> list[float]:
    """Worker body for one chunk of cache misses.

    Module-level (picklable for the process backend); returns raw costs
    only — the parent owns all cache and counter mutation.
    """
    cost_model, design, sqls = task
    return [cost_model.query_cost(sql, design) for sql in sqls]
