"""Unified cost-evaluation service shared by all three design substrates.

CliffGuard's inner loop (Algorithm 2) evaluates ``f(W, D)`` for every
sampled neighbor under every candidate design; with the paper defaults
(n = 20 samples + the base workload, 5 iterations) the same queries are
re-costed hundreds of times per replay window even though neighbors
overwhelmingly share queries.  The paper itself stresses that what-if
cost calls dominate designer runtime (Figure 14), so this module puts
**one memoizing, batching, instrumented layer** between the consumers
(CliffGuard, the baseline designers, the replay harness, the CLI) and
the three engine cost models.

The service only assumes the :class:`CostModel` protocol — ``profile``,
``query_cost``, ``workload_cost`` — which all three substrates
(:class:`repro.engine.optimizer.ColumnarCostModel`,
:class:`repro.rowstore.optimizer.RowstoreCostModel`,
:class:`repro.samples.optimizer.SamplesCostModel`) already satisfy, so
the cache and batching are shared rather than re-implemented per engine.

Caching contract (see ``docs/cost_model.md`` for the prose version):

* **Fingerprints are content hashes.**  A design's fingerprint digests
  the canonical DDL of its structures in deterministic order; a query's
  fingerprint digests its exact SQL text (two queries sharing a template
  but differing in literals cost differently, so the template alone is
  not a sound key).  Content-identical designs therefore share cache
  entries even when they are distinct objects.
* **Two levels.**  Level 1 memoizes per-(design, query) costs; level 2
  memoizes whole :class:`WorkloadCostReport` aggregates per
  (design, workload).  Both are bounded LRUs.
* **Bit-identical results.**  Cached values are the exact floats the
  underlying cost model produced — the cached-vs-uncached property test
  in ``tests/test_costing_service.py`` asserts equality, not closeness.
* **Explicit invalidation.**  The service never watches the cost model
  for mutation; callers that change statistics or cost constants must
  call :meth:`CostEvaluationService.invalidate_design` or
  :meth:`CostEvaluationService.clear`.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Protocol, runtime_checkable

import numpy as np

from repro.costing.kernel import affected_union, kernel_for
from repro.costing.report import WorkloadCostReport
from repro.obs import MetricsRegistry, get_metrics, tracer
from repro.parallel.backends import (
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.parallel.partition import chunk_count, contiguous_chunks
from repro.parallel.shm import attached_batch, share_batch
from repro.workload.workload import Workload

#: Default bound on the per-(design, query) memo cache.  Sized to hold a
#: full bench-scale CliffGuard run's working set (~550k distinct pairs:
#: the nominal designer's candidate×query matrix dominates); a bound just
#: under the working set thrashes and loses all cross-iteration reuse.
DEFAULT_MAX_QUERY_ENTRIES = 1_048_576
#: Default bound on the per-(design, workload) aggregate cache.
DEFAULT_MAX_WORKLOAD_ENTRIES = 4_096
#: Designs whose fingerprints are memoized (they are hashable, so the
#: digest only has to be computed once per distinct design).
DEFAULT_MAX_FINGERPRINTS = 16_384
#: Miss batches smaller than this stay on the scalar path: compiling the
#: structure-of-arrays batch has fixed overhead that only pays off once a
#: vectorized call amortizes it over enough (structure, query) pairs.
KERNEL_MIN_BATCH = 8
#: Bound on the per-service workload-arena cache.  Arenas are per
#: distinct query set — one per replay window or neighborhood pool — and
#: a handful of windows are ever live at once; each holds the compiled
#: query-side arrays plus profiles, so the bound is deliberately small.
DEFAULT_MAX_ARENAS = 8
#: Bound on the module-level identity memos for workload/design
#: fingerprints (see :class:`_IdentityMemo`).
DEFAULT_MAX_FINGERPRINT_MEMO = 4_096
#: Bound on the candidate-matrix cache, in (candidate, query) cells
#: across every resident entry.  Sized for a designer-comparison run
#: (~1-2k candidates × ~500 distinct queries); the shrink policy drops
#: whole least-recently-used columns, never partial ones.
DEFAULT_MAX_MATRIX_CELLS = 2_000_000


@runtime_checkable
class CostModel(Protocol):
    """The what-if surface every engine cost model exposes.

    All three substrates satisfy this structurally; the service (and the
    :class:`repro.designers.base.DesignAdapter` refactored onto it) only
    ever touches these three members.
    """

    def profile(self, sql: str):  # pragma: no cover - protocol
        """Parse and schema-resolve one SQL text."""
        ...

    def query_cost(self, sql_or_profile, design) -> float:  # pragma: no cover
        """Estimated latency (model ms) of one query under ``design``."""
        ...

    def workload_cost(self, queries, design) -> WorkloadCostReport:  # pragma: no cover
        """Latency report of a workload under ``design``."""
        ...


# -- fingerprints ----------------------------------------------------------------


def _digest(*parts: str) -> str:
    h = hashlib.blake2b(digest_size=12)
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


class _IdentityMemo:
    """Small LRU keyed by object identity (``id``).

    Same pattern as ``_PerWorkloadCache`` in
    :mod:`repro.workload.distance`: entries keep the key object itself
    alongside the value, so an ``id`` recycled by a new object after
    garbage collection can never alias a stale entry.  Evictions are
    counted in the process-wide metrics registry under ``counter_name``.
    Only sound for objects whose fingerprint-relevant content never
    mutates — :class:`~repro.workload.workload.Workload` and the design
    containers qualify; plain lists do not and are never memoized.
    """

    def __init__(
        self, counter_name: str, max_entries: int = DEFAULT_MAX_FINGERPRINT_MEMO
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.counter_name = counter_name
        self._entries: OrderedDict[int, tuple[object, str]] = OrderedDict()

    def get(self, obj) -> str | None:
        cached = self._entries.get(id(obj))
        if cached is not None and cached[0] is obj:
            self._entries.move_to_end(id(obj))
            return cached[1]
        return None

    def put(self, obj, value: str) -> None:
        self._entries[id(obj)] = (obj, value)
        self._entries.move_to_end(id(obj))
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            get_metrics().counter(self.counter_name).inc()

    def __len__(self) -> int:
        return len(self._entries)


_WORKLOAD_FP_MEMO = _IdentityMemo("costing.fingerprint_memo_evictions")
_DESIGN_FP_MEMO = _IdentityMemo("costing.fingerprint_memo_evictions")


def query_fingerprint(sql: str) -> str:
    """Stable content hash of one query's exact SQL text."""
    return _digest("q", sql)


def design_fingerprint(design) -> str:
    """Stable content hash of a design's structures.

    Designs iterate their structures in deterministic order and every
    structure renders stable DDL via ``str``, so two content-identical
    designs — even distinct objects built in different ways — produce
    the same fingerprint.  Recomputation is memoized per design *object*
    (designs are immutable containers); the digest itself is unchanged.
    """
    cached = _DESIGN_FP_MEMO.get(design)
    if cached is not None:
        return cached
    fingerprint = _digest("d", *[str(structure) for structure in design])
    _DESIGN_FP_MEMO.put(design, fingerprint)
    return fingerprint


def workload_fingerprint(queries: Iterable) -> str:
    """Stable content hash of a (sql, weight) sequence, order-sensitive.

    Accepts raw iterables (lists, generators) or a
    :class:`~repro.workload.workload.Workload`; passing the ``Workload``
    itself is preferred on hot paths — its fingerprint is memoized by
    object identity (the container is immutable-ish), so run keys and
    cache keys stop re-hashing the same window every call.
    """
    memoable = isinstance(queries, Workload)
    if memoable:
        cached = _WORKLOAD_FP_MEMO.get(queries)
        if cached is not None:
            return cached
    parts: list[str] = ["w"]
    for query in queries:
        if isinstance(query, str):
            parts.append(query)
            parts.append("1.0")
        else:
            parts.append(query.sql)
            parts.append(repr(float(query.frequency)))
    fingerprint = _digest(*parts)
    if memoable:
        _WORKLOAD_FP_MEMO.put(queries, fingerprint)
    return fingerprint


# -- instrumentation -------------------------------------------------------------


@dataclass
class CostServiceStats:
    """Counters for one service (cumulative; see :meth:`snapshot`)."""

    #: Query-cost lookups requested by consumers (hits + misses).
    query_requests: int = 0
    #: Lookups served from the per-(design, query) cache.
    query_hits: int = 0
    #: Raw calls into the underlying cost model's ``query_cost``.
    raw_model_calls: int = 0
    #: Workload-aggregate lookups requested (hits + misses).
    workload_requests: int = 0
    #: Aggregates served from the workload-level cache.
    workload_hits: int = 0
    #: Duplicate (design, query) pairs collapsed by batched evaluation
    #: before any cache or model was consulted.
    dedup_saved: int = 0
    #: Wall-clock seconds spent inside evaluation entry points.
    eval_seconds: float = 0.0
    #: Cache entries dropped by the LRU bound or explicit invalidation.
    evictions: int = 0
    #: Vectorized kernel dispatches (one per compiled batch evaluation).
    kernel_batch_calls: int = 0
    #: (design, query) pairs priced by the vectorized kernel; these are a
    #: subset of ``raw_model_calls`` (kernel-priced pairs still count as
    #: raw evaluations — the kernel is an implementation of the model,
    #: not a cache level).
    kernel_pairs_priced: int = 0
    #: (design, query) pairs priced whose query is a write statement
    #: (INSERT/UPDATE/DELETE) — a subset of ``raw_model_calls`` covering
    #: both the scalar and kernel paths.
    write_pairs_priced: int = 0

    @property
    def query_misses(self) -> int:
        return self.query_requests - self.query_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of query-cost lookups served from cache."""
        if self.query_requests == 0:
            return 0.0
        return self.query_hits / self.query_requests

    @property
    def dedup_ratio(self) -> float:
        """Fraction of batched lookups collapsed as duplicates."""
        total = self.query_requests + self.dedup_saved
        if total == 0:
            return 0.0
        return self.dedup_saved / total

    def snapshot(self) -> "CostServiceStats":
        """An independent copy (for before/after deltas)."""
        return CostServiceStats(
            query_requests=self.query_requests,
            query_hits=self.query_hits,
            raw_model_calls=self.raw_model_calls,
            workload_requests=self.workload_requests,
            workload_hits=self.workload_hits,
            dedup_saved=self.dedup_saved,
            eval_seconds=self.eval_seconds,
            evictions=self.evictions,
            kernel_batch_calls=self.kernel_batch_calls,
            kernel_pairs_priced=self.kernel_pairs_priced,
            write_pairs_priced=self.write_pairs_priced,
        )

    def since(self, earlier: "CostServiceStats") -> "CostServiceStats":
        """The delta between this snapshot and an ``earlier`` one."""
        return CostServiceStats(
            query_requests=self.query_requests - earlier.query_requests,
            query_hits=self.query_hits - earlier.query_hits,
            raw_model_calls=self.raw_model_calls - earlier.raw_model_calls,
            workload_requests=self.workload_requests - earlier.workload_requests,
            workload_hits=self.workload_hits - earlier.workload_hits,
            dedup_saved=self.dedup_saved - earlier.dedup_saved,
            eval_seconds=self.eval_seconds - earlier.eval_seconds,
            evictions=self.evictions - earlier.evictions,
            kernel_batch_calls=self.kernel_batch_calls - earlier.kernel_batch_calls,
            kernel_pairs_priced=self.kernel_pairs_priced - earlier.kernel_pairs_priced,
            write_pairs_priced=self.write_pairs_priced - earlier.write_pairs_priced,
        )

    def rows(self) -> list[list[object]]:
        """(label, value) rows for the reporting tables."""
        return [
            ["raw cost-model calls", self.raw_model_calls],
            ["query-cost lookups", self.query_requests],
            ["query-cache hits", self.query_hits],
            ["query-cache hit rate", self.hit_rate],
            ["batched duplicates collapsed", self.dedup_saved],
            ["dedup ratio", self.dedup_ratio],
            ["workload-aggregate lookups", self.workload_requests],
            ["workload-aggregate hits", self.workload_hits],
            ["evaluation wall-time (s)", self.eval_seconds],
            ["cache evictions", self.evictions],
            ["kernel batch dispatches", self.kernel_batch_calls],
            ["kernel-priced pairs", self.kernel_pairs_priced],
            ["write pairs priced", self.write_pairs_priced],
        ]


@dataclass
class ArenaStats:
    """Counters for the workload-arena cache and delta re-costing.

    Deliberately **separate** from :class:`CostServiceStats` and
    **excluded from** :meth:`CostEvaluationService.export_state`: arenas
    are derived state, rebuilt on demand after a resume, so a resumed
    run's arena counters legitimately differ from the uninterrupted
    run's — folding them into the exported stats would break the
    kill-resume byte-identity of every report that renders counters.
    """

    #: Arena compilations (cache misses).
    builds: int = 0
    #: Arena cache hits (a bind reused compiled query-side arrays).
    hits: int = 0
    #: Arenas dropped by the LRU bound.
    evictions: int = 0
    #: Arenas dropped by ``invalidate_design``/``clear``.
    invalidations: int = 0
    #: Design evaluations priced via single-structure delta re-costing.
    delta_recosts: int = 0
    #: Query re-evaluations skipped by delta re-costing (unaffected
    #: queries whose previous costs were reused bit-identically).
    delta_queries_saved: int = 0
    #: Kernel batches fanned out to workers via shared memory.
    shm_fanouts: int = 0
    #: (candidate, query) cells served from the candidate-matrix cache
    #: instead of being re-priced by the kernel.
    matrix_hits: int = 0
    #: (candidate, query) cells the kernel actually priced into matrix
    #: columns (entry space: extension tails price ahead of requests).
    matrix_pairs_priced: int = 0
    #: Matrix entries grown in place to cover new SQL (arena extension
    #: instead of a from-scratch recompile).
    matrix_extends: int = 0
    #: Matrix columns dropped by the cell-budget LRU bound.
    matrix_evictions: int = 0
    #: Neighborhood evaluations priced via design-diff delta re-costing.
    neighborhood_deltas: int = 0
    #: (design, query) pairs copied verbatim from the incumbent design's
    #: cached costs instead of being re-priced (delta neighborhood path).
    delta_pairs_saved: int = 0

    def snapshot(self) -> "ArenaStats":
        """An independent copy (for before/after deltas)."""
        return ArenaStats(
            **{f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        )

    def since(self, earlier: "ArenaStats") -> "ArenaStats":
        """The delta between this snapshot and an ``earlier`` one."""
        return ArenaStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in dataclass_fields(self)
            }
        )

    def rows(self) -> list[list[object]]:
        """(label, value) rows for the reporting tables."""
        return [
            ["arena builds", self.builds],
            ["arena hits", self.hits],
            ["arena evictions (lru)", self.evictions],
            ["arena invalidations", self.invalidations],
            ["delta re-costs", self.delta_recosts],
            ["delta queries saved", self.delta_queries_saved],
            ["shm fan-outs", self.shm_fanouts],
            ["matrix cell hits", self.matrix_hits],
            ["matrix cells priced", self.matrix_pairs_priced],
            ["matrix extensions", self.matrix_extends],
            ["matrix column evictions", self.matrix_evictions],
            ["neighborhood delta re-costs", self.neighborhood_deltas],
            ["delta pairs saved", self.delta_pairs_saved],
        ]


# -- candidate-matrix cache -------------------------------------------------------


@dataclass
class _MatrixColumn:
    """One priced candidate column over a matrix entry's query rows.

    ``values[q]`` is the kernel's single-structure cost where
    ``price[q]`` is set and ``0.0`` elsewhere; ``price``/``unservable``
    are the :meth:`candidate_frame` masks for this candidate.  A column
    priced before its entry was extended is shorter than the entry —
    its tail is priced on the next request that needs it.
    """

    values: np.ndarray
    price: np.ndarray
    unservable: np.ndarray


@dataclass
class _MatrixEntry:
    """Cached candidate-matrix state for one distinct-SQL tuple.

    Derived state, exactly like the arenas: entries hold their own
    arena reference (so an LRU-evicted arena stays alive while its
    matrix does), are never exported by
    :meth:`CostEvaluationService.export_state`, and are dropped by
    ``clear``/``invalidate_design``.
    """

    key: str
    sqls: tuple[str, ...]
    profiles: list
    arena: object
    #: sql -> row in ``sqls`` (and in ``base`` / every full column).
    index: dict[str, int]
    #: (N,) empty-design costs, priced eagerly at build time.
    base: np.ndarray
    #: candidate fingerprint -> priced column, LRU-ordered (oldest first).
    columns: OrderedDict[str, _MatrixColumn]

    @property
    def cells(self) -> int:
        return sum(col.values.shape[0] for col in self.columns.values())


# -- the service -----------------------------------------------------------------


@dataclass
class _Timer:
    stats: CostServiceStats
    started: float = field(default=0.0)

    def __enter__(self) -> "_Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.eval_seconds += time.perf_counter() - self.started


class CostEvaluationService:
    """Fingerprinted memo cache + batched evaluation over one cost model."""

    def __init__(
        self,
        cost_model: CostModel,
        max_query_entries: int = DEFAULT_MAX_QUERY_ENTRIES,
        max_workload_entries: int = DEFAULT_MAX_WORKLOAD_ENTRIES,
        max_workers: int | None = None,
        backend: ExecutionBackend | str | None = None,
        jobs: int | None = None,
    ):
        if max_query_entries < 1 or max_workload_entries < 1:
            raise ValueError("cache bounds must be positive")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when set")
        self.cost_model = cost_model
        self.max_query_entries = max_query_entries
        self.max_workload_entries = max_workload_entries
        self.max_workers = max_workers
        # ``backend`` is the one knob; ``max_workers`` is the pre-backend
        # spelling of the thread pool and maps onto ThreadBackend.
        self.backend = resolve_backend(backend, jobs=jobs)
        if self.backend is None and max_workers is not None:
            self.backend = ThreadBackend(jobs=max_workers)
        #: Vectorized batch kernel for the model, or None (scalar path).
        #: Dispatch is exact-type; stubs and subclasses stay scalar.
        self.kernel = kernel_for(cost_model)
        self.stats = CostServiceStats()
        #: Arena/delta/shm counters — derived-state instrumentation,
        #: intentionally outside ``stats`` (see :class:`ArenaStats`).
        self.arena_stats = ArenaStats()
        self.max_arenas = DEFAULT_MAX_ARENAS
        #: arena key (digest of the distinct SQL tuple) -> compiled
        #: workload arena, LRU-ordered (oldest first).  Derived state:
        #: never exported, rebuilt on demand after clear/resume.
        self._arenas: OrderedDict[str, object] = OrderedDict()
        #: Candidate-matrix cache toggle: off, every ``candidate_costs``
        #: call re-prices the full matrix (the cold-rebuild baseline).
        #: Results and exported counters are identical either way.
        self.matrix_cache_enabled = True
        #: Delta neighborhood toggle: off, ``evaluate_neighborhood``
        #: ignores its ``reference`` design and re-prices fully.
        self.delta_neighborhood_enabled = True
        self.max_matrix_cells = DEFAULT_MAX_MATRIX_CELLS
        #: matrix key (digest of the distinct SQL tuple) -> cached
        #: candidate-matrix entry, LRU-ordered (oldest first).  Derived
        #: state: never exported, rebuilt on demand (see _MatrixEntry).
        self._matrix: OrderedDict[str, _MatrixEntry] = OrderedDict()
        #: (design_fp, sql) -> cost, LRU-ordered (oldest first).
        self._query_cache: OrderedDict[tuple[str, str], float] = OrderedDict()
        #: (design_fp, workload_fp) -> WorkloadCostReport, LRU-ordered.
        self._workload_cache: OrderedDict[tuple[str, str], WorkloadCostReport] = (
            OrderedDict()
        )
        #: design object -> fingerprint (designs are hashable by content).
        self._fingerprints: OrderedDict[object, str] = OrderedDict()
        #: candidate object -> singleton-design fingerprint, by identity:
        #: ``candidate_costs`` re-fingerprints the same candidate pool on
        #: every designer invocation, and building + content-hashing the
        #: one-structure design dominates a warm call.  Derived state.
        self._single_fps = _IdentityMemo("costing.fingerprint_memo_evictions")

    # -- fingerprints --------------------------------------------------------------

    def design_fingerprint(self, design) -> str:
        """Memoized content hash of ``design``."""
        cached = self._fingerprints.get(design)
        if cached is not None:
            self._fingerprints.move_to_end(design)
            return cached
        fingerprint = design_fingerprint(design)
        self._fingerprints[design] = fingerprint
        if len(self._fingerprints) > DEFAULT_MAX_FINGERPRINTS:
            self._fingerprints.popitem(last=False)
        return fingerprint

    # -- cache plumbing -------------------------------------------------------------

    @property
    def cached_query_entries(self) -> int:
        return len(self._query_cache)

    @property
    def cached_workload_entries(self) -> int:
        return len(self._workload_cache)

    def clear(self) -> None:
        """Drop every cached entry (fingerprints survive: content hashes
        stay valid as long as the design objects themselves do).

        Compiled workload arenas are dropped too: ``clear`` is the
        "cost model changed under me" escape hatch, and arenas bake the
        model's statistics into their query-side arrays.
        """
        dropped = len(self._query_cache) + len(self._workload_cache)
        self.stats.evictions += dropped
        self._query_cache.clear()
        self._workload_cache.clear()
        self._drop_arenas("clear")
        t = tracer()
        if t.enabled and dropped:
            t.emit("cache_evict", reason="clear", entries=dropped)

    def invalidate_design(self, design) -> None:
        """Drop every cached entry priced under ``design``.

        The service never watches the cost model for mutation; callers
        that update statistics or cost constants for a design must
        invalidate it (or :meth:`clear`) themselves.  Because the usual
        reason to invalidate is exactly such a model mutation, the
        compiled workload arenas — whose query-side arrays bake in the
        model's statistics — are conservatively dropped as well.
        """
        self._drop_arenas("invalidate_design")
        fingerprint = self.design_fingerprint(design)
        stale_queries = [k for k in self._query_cache if k[0] == fingerprint]
        stale_workloads = [k for k in self._workload_cache if k[0] == fingerprint]
        for key in stale_queries:
            del self._query_cache[key]
        for key in stale_workloads:
            del self._workload_cache[key]
        dropped = len(stale_queries) + len(stale_workloads)
        self.stats.evictions += dropped
        t = tracer()
        if t.enabled and dropped:
            t.emit(
                "cache_evict",
                reason="invalidate_design",
                design=fingerprint,
                entries=dropped,
            )

    def reset_stats(self) -> None:
        self.stats = CostServiceStats()

    # -- checkpoint/resume support ---------------------------------------------------

    def export_state(self) -> dict:
        """Snapshot the memo caches and counters for a run checkpoint.

        The export preserves LRU order (items lists keep insertion
        order) and the exact cached floats, so a service restored via
        :meth:`import_state` serves the same hits, misses, and values —
        in the same eviction order — as the service it was exported
        from.  That is what makes a resumed run's per-window counter
        deltas bit-identical to the uninterrupted run's (see
        docs/state.md).  The design-fingerprint memo is not exported:
        fingerprints are content hashes, recomputed deterministically on
        first use.  Compiled workload arenas, the candidate-matrix
        cache, and :class:`ArenaStats` are not exported either — all
        three are derived state (pure functions of the queries, the
        candidates, and the model, rebuilt on demand after a resume),
        and folding their counters into the snapshot would make a
        resumed run's exported stats diverge from the uninterrupted
        run's even though every cost is identical.
        """
        return {
            "query": list(self._query_cache.items()),
            "workload": list(self._workload_cache.items()),
            "stats": self.stats.snapshot(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a cache export from :meth:`export_state` in place.

        Arenas are *not* part of the import (they are derived state,
        absent from :meth:`export_state`); whatever arenas this service
        holds stay valid — they depend only on queries and the model.
        """
        self._query_cache = OrderedDict(state["query"])
        self._workload_cache = OrderedDict(state["workload"])
        self.stats = state["stats"].snapshot()

    # -- workload arenas ---------------------------------------------------------------

    @property
    def cached_arenas(self) -> int:
        return len(self._arenas)

    def _drop_arenas(self, reason: str) -> None:
        # The candidate-matrix cache bakes the same model statistics into
        # its columns as the arenas do into their arrays, so every arena
        # invalidation drops it too (matrix entries pin their own arena
        # reference, so an empty ``_arenas`` does not imply an empty
        # matrix).  Matrix drops do not count as arena invalidations.
        self._drop_matrix(reason)
        dropped = len(self._arenas)
        if not dropped:
            return
        self._arenas.clear()
        self.arena_stats.invalidations += dropped
        t = tracer()
        if t.enabled:
            t.emit("arena_evict", reason=reason, arenas=dropped)

    def _arena_for(self, unique_sqls: tuple[str, ...], profiles=None):
        """The compiled workload arena for a distinct-SQL tuple.

        Builds (and LRU-caches) on miss: queries are profiled and the
        kernel's ``compile_queries`` runs once; every later design bind
        against the same query set reuses the arrays.  ``profiles``
        short-circuits re-profiling when the caller already holds them
        (``candidate_costs``).
        """
        key = _digest("a", *unique_sqls)
        arena = self._arenas.get(key)
        t = tracer()
        if arena is not None:
            self._arenas.move_to_end(key)
            self.arena_stats.hits += 1
            if t.enabled:
                t.emit("arena_hit", key=key, queries=len(unique_sqls))
            return arena
        if profiles is None:
            profiles = [self.cost_model.profile(sql) for sql in unique_sqls]
        arena = self.kernel.compile_queries(profiles)
        self._arenas[key] = arena
        self.arena_stats.builds += 1
        if t.enabled:
            t.emit(
                "arena_build",
                key=key,
                substrate=self.kernel.name,
                queries=len(unique_sqls),
                bytes=arena.nbytes,
            )
        while len(self._arenas) > self.max_arenas:
            evicted_key, _ = self._arenas.popitem(last=False)
            self.arena_stats.evictions += 1
            if t.enabled:
                t.emit("arena_evict", reason="lru", key=evicted_key, arenas=1)
        return arena

    def prepare_workload(self, queries) -> bool:
        """Pre-warm the arena for a workload's distinct queries.

        Call sites that know a workload will be costed repeatedly
        (CliffGuard iterations, replay windows) can pay the one-time
        compile up front; subsequent binds are cache hits.  Returns
        False (and does nothing) when no kernel is available or the
        workload is below the kernel batch threshold.
        """
        if self.kernel is None:
            return False
        sqls = [q if isinstance(q, str) else q.sql for q in queries]
        unique = tuple(dict.fromkeys(sqls))
        if len(unique) < KERNEL_MIN_BATCH:
            return False
        self._arena_for(unique)
        return True

    # -- candidate-matrix cache --------------------------------------------------------

    @property
    def cached_matrix_columns(self) -> int:
        return sum(len(entry.columns) for entry in self._matrix.values())

    @property
    def cached_matrix_cells(self) -> int:
        return sum(entry.cells for entry in self._matrix.values())

    def _drop_matrix(self, reason: str) -> None:
        dropped = len(self._matrix)
        if not dropped:
            return
        columns = self.cached_matrix_columns
        self._matrix.clear()
        t = tracer()
        if t.enabled:
            t.emit("matrix_evict", reason=reason, entries=dropped, columns=columns)

    def _build_matrix_entry(
        self, sqls: tuple[str, ...], profiles, store: bool = True
    ) -> _MatrixEntry:
        """Compile a fresh matrix entry (arena + eager base costs)."""
        arena = self._arena_for(sqls, profiles=list(profiles))
        # ``base_costs`` depends only on the arena's query-side arrays,
        # so an empty bind prices it once for the entry's whole lifetime.
        base = np.asarray(self.kernel.bind(arena, []).base_costs(), dtype=np.float64)
        entry = _MatrixEntry(
            key=_digest("m", *sqls),
            sqls=sqls,
            profiles=list(profiles),
            arena=arena,
            index={sql: i for i, sql in enumerate(sqls)},
            base=base,
            columns=OrderedDict(),
        )
        if store and self.matrix_cache_enabled:
            self._matrix[entry.key] = entry
        return entry

    def _extend_matrix_entry(self, old: _MatrixEntry, sqls, profiles) -> _MatrixEntry:
        """Grow ``old`` in place of a recompile to cover new SQL.

        The arena is recompiled over the concatenated profile list —
        access interning is first-seen, so the old rows' arrays (and
        therefore every already-priced column value) stay bit-identical
        — and the priced columns are carried over; their tails are
        priced lazily by the next request that asks for them.
        """
        prof_of = dict(zip(sqls, profiles))
        fresh = [sql for sql in sqls if sql not in old.index]
        all_sqls = old.sqls + tuple(fresh)
        del self._matrix[old.key]
        entry = self._build_matrix_entry(
            all_sqls, old.profiles + [prof_of[sql] for sql in fresh]
        )
        entry.columns.update(old.columns)
        self.arena_stats.matrix_extends += 1
        t = tracer()
        if t.enabled:
            t.emit(
                "matrix_extend",
                key=entry.key,
                queries=len(all_sqls),
                added=len(fresh),
                columns=len(old.columns),
            )
        return entry

    def _matrix_entry_for(self, sqls: tuple[str, ...], profiles, fps=()):
        """``(entry, rows)`` covering ``sqls`` (``rows=None`` = identity).

        Resolution order: exact key, then a resident superset entry
        (row-mapped), then extension of the entry sharing at least half
        the requested SQL, then a fresh build.  With the cache disabled
        every call builds a transient entry — same pricing, same
        counters, nothing retained.  Requests below the kernel batch
        threshold are transient too (the :func:`beneficial_queries`
        per-query shape): a tiny request served through a resident
        entry would price whole entry-length columns for its fresh
        candidates, and retaining one entry per query only bloats the
        superset scan.

        ``fps`` — the request's candidate fingerprints — gates the
        superset and extension paths: serving a request through a
        *wider* entry prices every fresh candidate over the entry's
        full query axis, which only pays off when at least half the
        requested candidates are already priced columns.  A request
        whose candidates the entry has never seen (a designer minting
        fresh candidates per window) builds at its own width instead.
        """
        if not self.matrix_cache_enabled or len(sqls) < KERNEL_MIN_BATCH:
            return self._build_matrix_entry(sqls, profiles, store=False), None
        key = _digest("m", *sqls)
        entry = self._matrix.get(key)
        if entry is not None:
            self._matrix.move_to_end(key)
            return entry, None
        unique_fps = set(fps)

        def _warm_enough(other: _MatrixEntry) -> bool:
            priced = sum(1 for fp in unique_fps if fp in other.columns)
            return 2 * priced >= len(unique_fps)

        for other_key in reversed(self._matrix):
            other = self._matrix[other_key]
            if len(other.sqls) > len(sqls) and not _warm_enough(other):
                continue
            if all(sql in other.index for sql in sqls):
                self._matrix.move_to_end(other_key)
                rows = np.array([other.index[sql] for sql in sqls], dtype=np.intp)
                return other, rows
        best = None
        best_overlap = 0
        for other in self._matrix.values():
            overlap = sum(1 for sql in sqls if sql in other.index)
            if overlap > best_overlap:
                best, best_overlap = other, overlap
        if (
            best is not None
            and 2 * best_overlap >= len(sqls)
            and unique_fps
            and _warm_enough(best)
        ):
            entry = self._extend_matrix_entry(best, sqls, profiles)
            rows = np.array([entry.index[sql] for sql in sqls], dtype=np.intp)
            return entry, rows
        return self._build_matrix_entry(sqls, profiles), None

    def _shrink_matrix(self) -> None:
        """Enforce the cell budget by dropping least-recently-used
        columns (then emptied entries), oldest entry first.  The sole
        resident entry's base is never dropped — it is almost certainly
        the one the current design stream is using."""
        t = tracer()
        while self._matrix and self.cached_matrix_cells > self.max_matrix_cells:
            key = next(iter(self._matrix))
            entry = self._matrix[key]
            if entry.columns:
                entry.columns.popitem(last=False)
                self.arena_stats.matrix_evictions += 1
                if t.enabled:
                    t.emit("matrix_evict", reason="lru", key=key, columns=1)
                continue
            if len(self._matrix) == 1:
                break
            del self._matrix[key]

    def _remember_query(self, key: tuple[str, str], cost: float) -> None:
        self._query_cache[key] = cost
        if len(self._query_cache) > self.max_query_entries:
            self._query_cache.popitem(last=False)
            self.stats.evictions += 1
            t = tracer()
            if t.enabled:
                t.emit("cache_evict", reason="lru", cache="query", entries=1)

    def _remember_workload(
        self, key: tuple[str, str], report: WorkloadCostReport
    ) -> None:
        self._workload_cache[key] = report
        if len(self._workload_cache) > self.max_workload_entries:
            self._workload_cache.popitem(last=False)
            self.stats.evictions += 1
            t = tracer()
            if t.enabled:
                t.emit("cache_evict", reason="lru", cache="workload", entries=1)

    # -- single-query costing --------------------------------------------------------

    def query_cost(self, sql_or_profile, design) -> float:
        """Memoized ``cost_model.query_cost`` (bit-identical to uncached)."""
        sql = sql_or_profile if isinstance(sql_or_profile, str) else sql_or_profile.sql
        key = (self.design_fingerprint(design), sql)
        self.stats.query_requests += 1
        cached = self._query_cache.get(key)
        if cached is not None:
            self.stats.query_hits += 1
            self._query_cache.move_to_end(key)
            return cached
        with _Timer(self.stats):
            cost = self.cost_model.query_cost(sql_or_profile, design)
            self.stats.raw_model_calls += 1
        if isinstance(sql_or_profile, str):
            self.stats.write_pairs_priced += self._count_write_sqls((sql,))
        elif getattr(sql_or_profile, "is_write", False):
            self.stats.write_pairs_priced += 1
        self._remember_query(key, cost)
        return cost

    def query_costs(self, sqls: Sequence[str], design) -> dict[str, float]:
        """Batched per-query costs for one design, deduplicated first."""
        unique = list(dict.fromkeys(sqls))
        self.stats.dedup_saved += len(sqls) - len(unique)
        return {sql: self.query_cost(sql, design) for sql in unique}

    # -- workload costing -------------------------------------------------------------

    def workload_cost(self, queries, design) -> WorkloadCostReport:
        """Memoized workload report, assembled from the per-query cache.

        Accepts the same inputs the engine cost models do: an iterable of
        ``WorkloadQuery``-like objects (``sql`` + ``frequency``) or raw
        SQL strings (weight 1).
        """
        # Workload containers pass through intact so the fingerprint memo
        # can key on their identity; anything else is materialized first.
        materialized = queries if isinstance(queries, Workload) else list(queries)
        design_fp = self.design_fingerprint(design)
        key = (design_fp, workload_fingerprint(materialized))
        self.stats.workload_requests += 1
        cached = self._workload_cache.get(key)
        if cached is not None:
            self.stats.workload_hits += 1
            self._workload_cache.move_to_end(key)
            return cached
        # Misses are collapsed to distinct SQL and routed through the
        # batched fill (kernel + arena + backend when available) instead
        # of one scalar ``query_cost`` per occurrence.  Counters match
        # the per-occurrence loop exactly: every occurrence is a
        # request, repeated occurrences of one SQL hit the entry its
        # first occurrence filled, and each distinct miss is one raw
        # model call.
        pairs: list[tuple[str, float]] = []
        for query in materialized:
            if isinstance(query, str):
                pairs.append((query, 1.0))
            else:
                pairs.append((query.sql, float(query.frequency)))
        distinct = list(dict.fromkeys(sql for sql, _ in pairs))
        misses = [
            sql for sql in distinct if (design_fp, sql) not in self._query_cache
        ]
        self.stats.query_requests += len(pairs)
        self.stats.query_hits += len(pairs) - len(misses)
        with _Timer(self.stats):
            self._fill_misses(design, design_fp, misses, context=tuple(distinct))
        costs = [self._cached_cost(design_fp, sql, design) for sql, _ in pairs]
        weights = [weight for _, weight in pairs]
        report = WorkloadCostReport(per_query_ms=costs, weights=weights)
        self._remember_workload(key, report)
        return report

    # -- batched neighborhood evaluation ----------------------------------------------

    def evaluate_neighborhood(
        self, designs: Sequence, workloads: Sequence, reference=None
    ) -> list[list[WorkloadCostReport]]:
        """Cost every design × workload pair, deduplicating shared queries.

        This replaces the per-neighbor list comprehension in CliffGuard's
        neighborhood exploration: the sampled neighbors overwhelmingly
        share queries (they are drawn from the same history pool), so each
        distinct (design, query) pair is costed exactly once no matter how
        many neighbors contain it.  Returns ``result[d][w]``, the report
        of ``workloads[w]`` under ``designs[d]``.

        ``reference`` is an optional already-priced design (CliffGuard's
        incumbent): each design's kernel fill then diffs against it and
        re-prices only the queries the added/removed structures can
        touch, copying the rest verbatim from the reference's cached
        floats (see :meth:`_fill_misses_delta`).  Results and exported
        counters are bit-identical with or without a reference.

        When the service was built with an execution backend (or the
        legacy ``max_workers``), distinct cache misses fan out across the
        backend's workers in deterministic contiguous chunks; results are
        bit-identical to the serial path at any worker count (the cost
        models are pure given fixed statistics, workers return per-task
        cost lists, and the parent merges them — and updates every
        counter — in chunk order).
        """
        with _Timer(self.stats):
            materialized = [list(w) for w in workloads]
            results: list[list[WorkloadCostReport]] = []
            for design in designs:
                design_fp = self.design_fingerprint(design)
                occurrences = 0
                unique: dict[str, None] = {}
                per_workload: list[tuple[list[str], list[float]]] = []
                for queries in materialized:
                    sqls: list[str] = []
                    weights: list[float] = []
                    for query in queries:
                        if isinstance(query, str):
                            sql, weight = query, 1.0
                        else:
                            sql, weight = query.sql, float(query.frequency)
                        sqls.append(sql)
                        weights.append(weight)
                        occurrences += 1
                        unique.setdefault(sql)
                    per_workload.append((sqls, weights))
                misses = [
                    sql for sql in unique if (design_fp, sql) not in self._query_cache
                ]
                self.stats.dedup_saved += occurrences - len(unique)
                self.stats.query_requests += len(unique)
                self.stats.query_hits += len(unique) - len(misses)
                self._fill_misses(
                    design,
                    design_fp,
                    misses,
                    context=tuple(unique),
                    reference=reference,
                )
                reports: list[WorkloadCostReport] = []
                for sqls, weights in per_workload:
                    costs = [
                        self._cached_cost(design_fp, sql, design) for sql in sqls
                    ]
                    reports.append(
                        WorkloadCostReport(per_query_ms=costs, weights=weights)
                    )
                results.append(reports)
            return results

    def _cached_cost(self, design_fp: str, sql: str, design) -> float:
        """Serve one already-prefetched cost without re-counting a lookup.

        Falls back to the model if the LRU bound evicted the entry between
        prefetch and assembly (only possible when a single neighborhood
        exceeds ``max_query_entries``).
        """
        cached = self._query_cache.get((design_fp, sql))
        if cached is not None:
            self._query_cache.move_to_end((design_fp, sql))
            return cached
        cost = self.cost_model.query_cost(sql, design)
        self.stats.raw_model_calls += 1
        self._remember_query((design_fp, sql), cost)
        return cost

    @property
    def backend_name(self) -> str:
        """Name of the execution backend filling cache misses."""
        return self.backend.name if self.backend is not None else "serial"

    def publish_metrics(self, registry: MetricsRegistry | None = None) -> None:
        """Publish the cumulative :class:`CostServiceStats` (plus current
        cache sizes) into a metrics registry (default: the process-wide
        one; see :func:`repro.obs.get_metrics`).

        Counters are published as gauges because the service's stats are
        already cumulative — the registry mirrors the latest snapshot
        rather than double-accumulating.  ``python -m repro stats``
        renders the result.
        """
        registry = registry if registry is not None else get_metrics()
        registry.gauge("costing.query_requests").set(self.stats.query_requests)
        registry.gauge("costing.query_hits").set(self.stats.query_hits)
        registry.gauge("costing.raw_model_calls").set(self.stats.raw_model_calls)
        registry.gauge("costing.workload_requests").set(self.stats.workload_requests)
        registry.gauge("costing.workload_hits").set(self.stats.workload_hits)
        registry.gauge("costing.dedup_saved").set(self.stats.dedup_saved)
        registry.gauge("costing.eval_seconds").set(self.stats.eval_seconds)
        registry.gauge("costing.evictions").set(self.stats.evictions)
        registry.gauge("costing.hit_rate").set(self.stats.hit_rate)
        registry.gauge("costing.cached_query_entries").set(self.cached_query_entries)
        registry.gauge("costing.cached_workload_entries").set(
            self.cached_workload_entries
        )
        registry.gauge("costing.kernel.batch_calls").set(self.stats.kernel_batch_calls)
        registry.gauge("costing.kernel.pairs_priced").set(
            self.stats.kernel_pairs_priced
        )
        registry.gauge("writes.pairs_priced").set(self.stats.write_pairs_priced)
        registry.gauge("arena.builds").set(self.arena_stats.builds)
        registry.gauge("arena.hits").set(self.arena_stats.hits)
        registry.gauge("arena.evictions").set(self.arena_stats.evictions)
        registry.gauge("arena.invalidations").set(self.arena_stats.invalidations)
        registry.gauge("arena.delta_recosts").set(self.arena_stats.delta_recosts)
        registry.gauge("arena.delta_queries_saved").set(
            self.arena_stats.delta_queries_saved
        )
        registry.gauge("arena.cached").set(self.cached_arenas)
        registry.gauge("arena.resident_bytes").set(
            sum(getattr(a, "nbytes", 0) for a in self._arenas.values())
        )
        registry.gauge("shm.fanouts").set(self.arena_stats.shm_fanouts)
        registry.gauge("matrix.hits").set(self.arena_stats.matrix_hits)
        registry.gauge("matrix.pairs_priced").set(
            self.arena_stats.matrix_pairs_priced
        )
        registry.gauge("matrix.extends").set(self.arena_stats.matrix_extends)
        registry.gauge("matrix.evictions").set(self.arena_stats.matrix_evictions)
        registry.gauge("matrix.cached_columns").set(self.cached_matrix_columns)
        registry.gauge("matrix.cached_cells").set(self.cached_matrix_cells)
        registry.gauge("delta.neighborhood_recosts").set(
            self.arena_stats.neighborhood_deltas
        )
        registry.gauge("delta.pairs_saved").set(self.arena_stats.delta_pairs_saved)

    def _fill_misses(
        self, design, design_fp: str, misses: list[str], context=None, reference=None
    ) -> None:
        """Cost the uncached SQL texts for one design (optionally fanned
        out over the execution backend).

        Large miss batches go through the vectorized kernel: the workload
        arena (compiled query-side arrays, cached across calls) is bound
        to the design's structures and every miss is priced in a handful
        of numpy ops.  ``context`` is the full distinct-SQL tuple the
        misses were drawn from, when the caller knows it — it keys the
        arena, so successive designs over the same workload reuse one
        compile even though their miss subsets differ.  When a process
        backend is attached, the bound batch ships to workers through a
        shared-memory segment (see :mod:`repro.parallel.shm`); thread
        and serial backends keep in-process ``batch.take`` slices.
        Kernel results are bit-identical to the scalar path at any
        chunking (every kernel op is element-wise or a per-query
        reduction), so cache contents and counters never depend on the
        backend.

        Scalar workers are pure: they return per-chunk cost lists and
        never touch the cache or the counters.  The parent merges chunk
        results in chunk order — chunks are ordered contiguous slices of
        ``misses``, so cache insertion order and every counter match the
        serial path exactly.
        """
        if not misses:
            return
        self.stats.write_pairs_priced += self._count_write_sqls(misses)
        t = tracer()
        if self.kernel is not None and len(misses) >= KERNEL_MIN_BATCH:
            self._fill_misses_kernel(
                design, design_fp, misses, context, reference=reference
            )
            return
        if self.backend is None or len(misses) < 2:
            if t.enabled:
                t.emit(
                    "cache_fill",
                    design=design_fp,
                    misses=len(misses),
                    backend="inline",
                    chunks=1,
                )
            for sql in misses:
                cost = self.cost_model.query_cost(sql, design)
                self.stats.raw_model_calls += 1
                self._remember_query((design_fp, sql), cost)
            return
        chunks = contiguous_chunks(misses, chunk_count(len(misses), self.backend.jobs))
        if t.enabled:
            t.emit(
                "cache_fill",
                design=design_fp,
                misses=len(misses),
                backend=self.backend.name,
                chunks=len(chunks),
            )
        tasks = [(self.cost_model, design, chunk) for chunk in chunks]
        per_chunk = self.backend.map(_evaluate_cost_chunk, tasks)
        for chunk, costs in zip(chunks, per_chunk):
            for sql, cost in zip(chunk, costs):
                self.stats.raw_model_calls += 1
                self._remember_query((design_fp, sql), cost)

    def _count_write_sqls(self, sqls) -> int:
        """How many of ``sqls`` are write statements (for ``writes.*``
        observability).  Profiles come from the model's cache, so this
        never re-parses; texts the model cannot profile count as reads."""
        profiler = getattr(self.cost_model, "profile", None)
        if profiler is None:  # protocol stubs without a profiler
            return 0
        count = 0
        for sql in sqls:
            try:
                if getattr(profiler(sql), "is_write", False):
                    count += 1
            except ValueError:
                continue
        return count

    def _fill_misses_kernel(
        self, design, design_fp: str, misses: list[str], context=None, reference=None
    ) -> None:
        """Vectorized miss fill: one arena bind, one (or chunked) eval."""
        t = tracer()
        inline = self.backend is None or len(misses) < 2
        if t.enabled:
            # Same contract as the scalar path: every miss fill emits one
            # cache_fill, whatever engine prices it.
            t.emit(
                "cache_fill",
                design=design_fp,
                misses=len(misses),
                backend="inline" if inline else self.backend.name,
                chunks=1 if inline else chunk_count(len(misses), self.backend.jobs),
            )
        # The arena is keyed by the *workload's* distinct-SQL tuple when
        # the caller supplied it, so its key is stable across designs and
        # iterations; the misses (a design-dependent subset) are then a
        # ``take`` of the bound batch — bit-identical to compiling them
        # alone, since every kernel op is per-query.
        unique = tuple(context) if context else tuple(misses)
        arena = self._arena_for(unique)
        if reference is not None and self.delta_neighborhood_enabled:
            if self._fill_misses_delta(
                arena, unique, design, design_fp, misses, reference
            ):
                return
        batch = self.kernel.bind(arena, list(design))
        if t.enabled:
            t.emit(
                "kernel_bind",
                substrate=self.kernel.name,
                queries=batch.query_count,
                structures=batch.structure_count,
                words=batch.words,
            )
        if len(misses) != len(unique):
            q_index = {sql: i for i, sql in enumerate(unique)}
            batch = batch.take([q_index[sql] for sql in misses])
        costs = self._batch_costs(batch)
        for sql, cost in zip(misses, costs):
            self.stats.raw_model_calls += 1
            self._remember_query((design_fp, sql), cost)
        self.stats.kernel_batch_calls += 1
        self.stats.kernel_pairs_priced += len(misses)
        if t.enabled:
            t.emit(
                "kernel_batch",
                substrate=self.kernel.name,
                design=design_fp,
                pairs=len(misses),
                structures=batch.structure_count,
            )

    def _fill_misses_delta(
        self, arena, unique, design, design_fp: str, misses: list[str], reference
    ) -> bool:
        """Delta miss fill against an already-priced ``reference`` design.

        Diffs ``design`` against the reference, OR-masks the queries any
        added/removed structure can touch (``affected_queries`` is
        conservative: dimension tables and write maintenance included),
        and re-prices only those; unaffected queries copy the
        reference's cached floats verbatim — bit-identical, because a
        query no changed structure can touch has the same serving set
        and maintenance sum under both designs.  Returns False (caller
        runs the full fill) when the designs are content-identical or
        nothing is copyable.  Exported counters are charged as-if-cold;
        the savings land in :class:`ArenaStats` only.  Reference reads
        use plain ``get`` — no LRU reordering, so exported cache order
        stays warmth-independent.
        """
        design_list = list(design)
        design_set = set(design_list)
        ref_set = set(reference)
        changed = [s for s in design_list if s not in ref_set]
        changed += [s for s in reference if s not in design_set]
        if not changed:
            return False
        ref_fp = self.design_fingerprint(reference)
        affected = affected_union(self.kernel.bind(arena, changed))
        q_index = {sql: i for i, sql in enumerate(unique)}
        copied: dict[str, float] = {}
        need: list[str] = []
        for sql in misses:
            value = (
                None
                if affected[q_index[sql]]
                else self._query_cache.get((ref_fp, sql))
            )
            if value is None:
                need.append(sql)
            else:
                copied[sql] = value
        if not copied:
            return False
        t = tracer()
        costs = dict(copied)
        if need:
            batch = self.kernel.bind(arena, design_list)
            if t.enabled:
                t.emit(
                    "kernel_bind",
                    substrate=self.kernel.name,
                    queries=batch.query_count,
                    structures=batch.structure_count,
                    words=batch.words,
                )
            sub = batch.take([q_index[sql] for sql in need])
            for sql, cost in zip(need, self._batch_costs(sub)):
                costs[sql] = float(cost)
        for sql in misses:
            self.stats.raw_model_calls += 1
            self._remember_query((design_fp, sql), costs[sql])
        self.stats.kernel_batch_calls += 1
        self.stats.kernel_pairs_priced += len(misses)
        self.arena_stats.neighborhood_deltas += 1
        self.arena_stats.delta_pairs_saved += len(copied)
        if t.enabled:
            t.emit(
                "neighborhood_delta",
                substrate=self.kernel.name,
                design=design_fp,
                changed=len(changed),
                priced=len(need),
                copied=len(copied),
            )
            t.emit(
                "kernel_batch",
                substrate=self.kernel.name,
                design=design_fp,
                pairs=len(misses),
                structures=len(design_list),
            )
        return True

    def _batch_costs(self, batch) -> list[float]:
        """Full-design costs of a bound batch, fanned out if configured.

        Process backends attach the batch zero-copy from a shared-memory
        segment (workers receive only the tiny handle plus chunk
        indices); the segment lives exactly as long as the ``map`` call
        and is unlinked on every exit path, worker crashes and timeouts
        included, because the backend surfaces those as ordinary returns.
        """
        n = batch.query_count
        if self.backend is None or n < 2:
            return [float(c) for c in batch.design_costs()]
        chunks = contiguous_chunks(
            list(range(n)), chunk_count(n, self.backend.jobs)
        )
        if isinstance(self.backend, ProcessBackend):
            self.arena_stats.shm_fanouts += 1
            with share_batch(batch) as handle:
                t = tracer()
                if t.enabled:
                    t.emit(
                        "shm_share",
                        segment=handle.segment,
                        bytes=handle.nbytes,
                        chunks=len(chunks),
                    )
                per_chunk = self.backend.map(
                    _evaluate_kernel_chunk_shm,
                    [(handle, chunk) for chunk in chunks],
                )
        else:
            tasks = [(batch.take(chunk),) for chunk in chunks]
            per_chunk = self.backend.map(_evaluate_kernel_chunk, tasks)
        return [cost for chunk_costs in per_chunk for cost in chunk_costs]

    # -- batched design sweeps ---------------------------------------------------------

    def workload_costs_batch(self, designs: Sequence, workload) -> list[WorkloadCostReport]:
        """Cost one workload under many designs as matrix reductions.

        This is the neighborhood-exploration shape of the paper's
        Algorithm 4 turned sideways: the query axis is fixed, the design
        axis fans out.  The workload's arena is bound once to the union
        of *all* designs' structures; each design's costs are then a
        masked min-reduction over its member rows.  Consecutive designs
        differing by exactly one structure — the shape every
        ``core/move.py`` neighborhood step produces — go through delta
        re-costing: only the queries that structure's table can touch
        are re-reduced, the rest keep their previous floats verbatim.
        Caches and counters behave exactly as if :meth:`workload_cost`
        had been called once per design in order — cached designs are
        served without touching the kernel, and duplicate designs hit
        the entries their first occurrence filled.
        """
        with _Timer(self.stats):
            materialized = list(workload)
            sqls: list[str] = []
            weights: list[float] = []
            for query in materialized:
                if isinstance(query, str):
                    sqls.append(query)
                    weights.append(1.0)
                else:
                    sqls.append(query.sql)
                    weights.append(float(query.frequency))
            workload_fp = workload_fingerprint(materialized)
            unique = list(dict.fromkeys(sqls))
            designs = list(designs)
            batch = None
            row_of: dict = {}
            q_index: dict[str, int] = {}
            reports: list[WorkloadCostReport] = []
            prev_members: set[int] | None = None
            prev_costs = None
            t = tracer()
            for design in designs:
                design_fp = self.design_fingerprint(design)
                self.stats.workload_requests += 1
                key = (design_fp, workload_fp)
                cached = self._workload_cache.get(key)
                if cached is not None:
                    self.stats.workload_hits += 1
                    self._workload_cache.move_to_end(key)
                    reports.append(cached)
                    continue
                self.stats.dedup_saved += len(sqls) - len(unique)
                self.stats.query_requests += len(unique)
                misses = [
                    sql for sql in unique if (design_fp, sql) not in self._query_cache
                ]
                self.stats.query_hits += len(unique) - len(misses)
                if self.kernel is None or len(misses) < KERNEL_MIN_BATCH:
                    self._fill_misses(design, design_fp, misses)
                elif misses:
                    if batch is None:
                        # One arena bind covers every design: the union of
                        # all structures, with per-design membership rows.
                        structures = list(
                            dict.fromkeys(s for d in designs for s in d)
                        )
                        row_of = {s: i for i, s in enumerate(structures)}
                        arena = self._arena_for(tuple(unique))
                        batch = self.kernel.bind(arena, structures)
                        q_index = {sql: i for i, sql in enumerate(unique)}
                        if t.enabled:
                            t.emit(
                                "kernel_bind",
                                substrate=self.kernel.name,
                                queries=batch.query_count,
                                structures=batch.structure_count,
                                words=batch.words,
                            )
                    members = [row_of[s] for s in design]
                    member_set = set(members)
                    changed = (
                        member_set ^ prev_members
                        if prev_members is not None
                        else None
                    )
                    if changed is not None and len(changed) == 1:
                        # Single-structure step: re-reduce only the
                        # queries the changed structure can touch; the
                        # rest keep their previous floats verbatim.
                        row = next(iter(changed))
                        costs = batch.delta_design_costs(
                            members, row, prev_costs
                        )
                        affected = int(batch.affected_queries(row).sum())
                        self.arena_stats.delta_recosts += 1
                        self.arena_stats.delta_queries_saved += (
                            batch.query_count - affected
                        )
                        if t.enabled:
                            t.emit(
                                "delta_recost",
                                design=design_fp,
                                changed_row=row,
                                affected=affected,
                                saved=batch.query_count - affected,
                            )
                    else:
                        costs = batch.design_costs(members)
                    prev_members = member_set
                    prev_costs = costs
                    for sql in misses:
                        self.stats.raw_model_calls += 1
                        self._remember_query(
                            (design_fp, sql), float(costs[q_index[sql]])
                        )
                    self.stats.kernel_batch_calls += 1
                    self.stats.kernel_pairs_priced += len(misses)
                    self.stats.write_pairs_priced += sum(
                        int(batch.is_write[q_index[sql]]) for sql in misses
                    )
                    if t.enabled:
                        t.emit(
                            "kernel_batch",
                            substrate=self.kernel.name,
                            design=design_fp,
                            pairs=len(misses),
                            structures=len(members),
                        )
                per_query = [
                    self._cached_cost(design_fp, sql, design) for sql in sqls
                ]
                report = WorkloadCostReport(
                    per_query_ms=per_query, weights=list(weights)
                )
                self._remember_workload(key, report)
                reports.append(report)
            return reports

    def candidate_costs(self, profiles: Sequence, candidates: Sequence, make_design):
        """``(base_costs, matrix)`` for greedy candidate selection.

        Pricing goes through the bounded candidate-matrix cache: priced
        (candidate-fingerprint × arena) columns persist across calls, so
        a designer re-run over an arena-resident workload prices only
        the (query, candidate) pairs the cache has never seen — new SQL
        extends the resident entry (and each stale column's tail) in
        place of a recompile, new candidates price fresh columns, and a
        fully warm call reduces to assembling cached columns.  Results
        are bit-identical to a cold rebuild, and so is **every exported
        counter**: priced cells are charged as-if-cold on every call —
        the cache is derived state, invisible to checkpoints (see
        :meth:`export_state`); its savings land in :class:`ArenaStats`
        (``matrix_hits``) only.  Cells whose candidate is unrelated to
        the query keep the base cost without being priced (an off-table
        structure cannot change any access path); anchor-table
        candidates that cannot serve the query are ``inf``, exactly
        like the scalar designer.
        """
        if self.kernel is None:
            raise RuntimeError(
                "candidate_costs requires a vectorized kernel; "
                "this cost model only supports the scalar path"
            )
        with _Timer(self.stats):
            profiles = list(profiles)
            candidates = list(candidates)
            sqls = [p.sql for p in profiles]
            empty_fp = self.design_fingerprint(make_design([]))
            fps = []
            for c in candidates:
                fp = self._single_fps.get(c)
                if fp is None:
                    fp = self.design_fingerprint(make_design([c]))
                    self._single_fps.put(c, fp)
                fps.append(fp)
            t = tracer()
            entry, mapped = self._matrix_entry_for(tuple(sqls), profiles, fps)
            rows = np.arange(len(sqls), dtype=np.intp) if mapped is None else mapped
            n_entry = len(entry.sqls)
            # Base (empty-design) costs go through the query cache
            # exactly as the cold path: the cache is exported state, so
            # hits and misses depend only on its contents, never on
            # matrix warmth.
            base = np.zeros(len(sqls), dtype=np.float64)
            base_misses: list[int] = []
            self.stats.query_requests += len(sqls)
            for q, sql in enumerate(sqls):
                cached = self._query_cache.get((empty_fp, sql))
                if cached is not None:
                    self.stats.query_hits += 1
                    self._query_cache.move_to_end((empty_fp, sql))
                    base[q] = cached
                else:
                    base_misses.append(q)
            for q in base_misses:
                cost = float(entry.base[rows[q]])
                base[q] = cost
                self.stats.raw_model_calls += 1
                self._remember_query((empty_fp, sqls[q]), cost)
            first_of: dict[str, int] = {}
            for i, fp in enumerate(fps):
                first_of.setdefault(fp, i)
            fresh = [fp for fp in first_of if fp not in entry.columns]
            stale_groups: dict[int, list[str]] = {}
            for fp in first_of:
                column = entry.columns.get(fp)
                if column is not None and column.values.shape[0] < n_entry:
                    stale_groups.setdefault(column.values.shape[0], []).append(fp)
            priced_entry_cells = 0
            if fresh:
                members = [candidates[first_of[fp]] for fp in fresh]
                batch = self.kernel.bind(entry.arena, members)
                if t.enabled:
                    t.emit(
                        "kernel_bind",
                        substrate=self.kernel.name,
                        queries=batch.query_count,
                        structures=batch.structure_count,
                        words=batch.words,
                    )
                price, unservable, numeric = self._matrix_costs(batch)
                for j, fp in enumerate(fresh):
                    entry.columns[fp] = _MatrixColumn(
                        values=np.where(price[j], numeric[j], 0.0),
                        price=np.array(price[j], dtype=bool),
                        unservable=np.array(unservable[j], dtype=bool),
                    )
                    priced_entry_cells += int(price[j].sum())
            for old_len in sorted(stale_groups):
                # Columns priced before the entry's last extension only
                # cover a prefix; price the missing tail rows, grouped by
                # prefix length so each group binds once.
                group = stale_groups[old_len]
                members = [candidates[first_of[fp]] for fp in group]
                batch = self.kernel.bind(entry.arena, members)
                if t.enabled:
                    t.emit(
                        "kernel_bind",
                        substrate=self.kernel.name,
                        queries=batch.query_count,
                        structures=batch.structure_count,
                        words=batch.words,
                    )
                tail = batch.take(list(range(old_len, n_entry)))
                price, unservable, numeric = self._matrix_costs(tail)
                for j, fp in enumerate(group):
                    column = entry.columns[fp]
                    entry.columns[fp] = _MatrixColumn(
                        values=np.concatenate(
                            [column.values, np.where(price[j], numeric[j], 0.0)]
                        ),
                        price=np.concatenate([column.price, price[j]]),
                        unservable=np.concatenate(
                            [column.unservable, unservable[j]]
                        ),
                    )
                    priced_entry_cells += int(price[j].sum())
            for fp in first_of:
                entry.columns.move_to_end(fp)
            if candidates:
                price_sub = np.stack([entry.columns[fp].price[rows] for fp in fps])
                unserv_sub = np.stack(
                    [entry.columns[fp].unservable[rows] for fp in fps]
                )
                values_sub = np.stack(
                    [entry.columns[fp].values[rows] for fp in fps]
                )
                matrix = np.where(
                    price_sub,
                    values_sub,
                    np.where(unserv_sub, np.inf, base[None, :]),
                )
            else:
                price_sub = np.zeros((0, len(sqls)), dtype=bool)
                matrix = np.zeros((0, len(sqls)), dtype=np.float64)
            priced_request = int(price_sub.sum())
            # As-if-cold accounting: every priced cell is one request and
            # one raw evaluation on every call, whatever the matrix cache
            # served — exported stats must not leak warmth.
            self.stats.query_requests += priced_request
            self.stats.raw_model_calls += priced_request
            self.stats.kernel_batch_calls += 1
            self.stats.kernel_pairs_priced += len(base_misses) + priced_request
            is_write = np.asarray(entry.arena.is_write, dtype=bool)[rows]
            self.stats.write_pairs_priced += sum(
                int(is_write[q]) for q in base_misses
            )
            self.stats.write_pairs_priced += int(
                (price_sub & is_write[None, :]).sum()
            )
            # Derived-state savings accounting (never exported): request
            # cells minus the cells this call actually priced.
            new_request = 0
            fresh_set = set(fresh)
            stale_len = {
                fp: old_len
                for old_len, group in stale_groups.items()
                for fp in group
            }
            counted: set[str] = set()
            for i, fp in enumerate(fps):
                if fp in counted:
                    continue
                if fp in fresh_set:
                    new_request += int(price_sub[i].sum())
                    counted.add(fp)
                elif fp in stale_len:
                    new_request += int(price_sub[i][rows >= stale_len[fp]].sum())
                    counted.add(fp)
            warm_cells = priced_request - new_request
            self.arena_stats.matrix_pairs_priced += priced_entry_cells
            self.arena_stats.matrix_hits += warm_cells
            if t.enabled:
                if warm_cells:
                    t.emit(
                        "matrix_hit",
                        key=entry.key,
                        cells=warm_cells,
                        candidates=len(candidates),
                        queries=len(sqls),
                    )
                t.emit(
                    "kernel_batch",
                    substrate=self.kernel.name,
                    queries=len(sqls),
                    structures=len(candidates),
                    pairs=len(base_misses) + priced_request,
                )
            self._shrink_matrix()
            return base, matrix

    def _matrix_costs(self, batch):
        """``(price, unservable, numeric)`` for a bound candidate batch,
        fanned out over the backend when one is attached.

        Process backends ship the batch once through shared memory and
        chunk the query axis; each worker returns its column slices and
        the parent concatenates in chunk order — bit-identical to the
        inline call at any worker count (every frame/cost op is
        per-query).
        """
        n = batch.query_count
        if self.backend is None or n < 2 or batch.structure_count == 0:
            price, unservable = batch.candidate_frame()
            return price, unservable, batch.candidate_costs()
        chunks = contiguous_chunks(
            list(range(n)), chunk_count(n, self.backend.jobs)
        )
        if isinstance(self.backend, ProcessBackend):
            self.arena_stats.shm_fanouts += 1
            with share_batch(batch) as handle:
                t = tracer()
                if t.enabled:
                    t.emit(
                        "shm_share",
                        segment=handle.segment,
                        bytes=handle.nbytes,
                        chunks=len(chunks),
                    )
                per_chunk = self.backend.map(
                    _evaluate_matrix_chunk_shm,
                    [(handle, chunk) for chunk in chunks],
                )
        else:
            tasks = [(batch.take(chunk),) for chunk in chunks]
            per_chunk = self.backend.map(_evaluate_matrix_chunk, tasks)
        price = np.concatenate([p for p, _, _ in per_chunk], axis=1)
        unservable = np.concatenate([u for _, u, _ in per_chunk], axis=1)
        numeric = np.concatenate([x for _, _, x in per_chunk], axis=1)
        return price, unservable, numeric


def _evaluate_kernel_chunk_shm(task) -> list[float]:
    """Worker body for one chunk of a shared-memory-published batch.

    The task carries only the segment handle and the chunk's query
    indices; the worker attaches the compiled arrays zero-copy, reduces
    its slice, and detaches.  Runs identically in the parent (the
    backend's serial degraded mode) — attaching from the creating
    process is just another view of the same pages.
    """
    handle, chunk = task
    with attached_batch(handle) as batch:
        return [float(cost) for cost in batch.take(chunk).design_costs()]


def _evaluate_kernel_chunk(task) -> list[float]:
    """Worker body for one compiled-batch chunk of cache misses.

    The task ships a pre-compiled array slice (``batch.take``), so process
    workers never re-profile queries or touch cost-model objects; like the
    scalar worker it returns raw costs only.
    """
    (batch,) = task
    return [float(cost) for cost in batch.design_costs()]


def _evaluate_matrix_chunk_shm(task) -> tuple:
    """Worker body for one query-axis chunk of a candidate matrix.

    Attaches the shared-memory batch, slices its chunk of the query
    axis, and returns materialized ``(price, unservable, numeric)``
    column slices — copies, because views into the segment do not
    outlive the attach block.
    """
    handle, chunk = task
    with attached_batch(handle) as batch:
        sub = batch.take(chunk)
        price, unservable = sub.candidate_frame()
        return (
            np.array(price, dtype=bool),
            np.array(unservable, dtype=bool),
            np.array(sub.candidate_costs(), dtype=np.float64),
        )


def _evaluate_matrix_chunk(task) -> tuple:
    """Worker body for one pre-sliced candidate-matrix chunk (thread
    backend: the ``batch.take`` slice ships in-process)."""
    (batch,) = task
    price, unservable = batch.candidate_frame()
    return price, unservable, batch.candidate_costs()


def _evaluate_cost_chunk(task) -> list[float]:
    """Worker body for one chunk of cache misses.

    Module-level (picklable for the process backend); returns raw costs
    only — the parent owns all cache and counter mutation.
    """
    cost_model, design, sqls = task
    return [cost_model.query_cost(sql, design) for sql in sqls]
