"""Vectorized batch costing: structure-of-arrays what-if evaluation.

The scalar cost models (``engine/optimizer.py``, ``rowstore/optimizer.py``,
``samples/optimizer.py``) price one (query, design) pair per Python call.
Robust-design search needs *matrices* of those pairs — every candidate
structure against every workload query, every neighborhood design against
a shared query pool — so this module compiles :class:`QueryProfile`s and
candidate structures into numpy structure-of-arrays form once and prices
whole matrices with a handful of vector operations.

Compiled layout:

* every ``(table, column)`` of the schema gets a global bit; column sets
  (query needs, projection columns, index keys, view groups, sample
  strata) become fixed-width ``uint64`` bit arrays, so coverage checks
  are ``np.bitwise_and`` + ``np.bitwise_count`` reductions (numpy >= 2.0,
  the same floor as :mod:`repro.workload.distance`),
* per-query anchor row counts, selectivities, predicate counts, and byte
  widths are ``float64`` arrays,
* everything that depends on a *(structure, query)* pair through Python
  semantics — sort-key-prefix selectivity walks, B-tree seek depths,
  GROUP BY/ORDER BY sort-order matches — is folded into precomputed
  per-pair factor matrices during compilation.

Compilation is split into two halves so workloads compile **once**:

* :meth:`compile_queries` turns a profile batch into a *workload arena*
  (:class:`ColumnarArena` / :class:`RowstoreArena` / :class:`SamplesArena`)
  — every array that depends only on the queries and the schema.  Arenas
  are immutable and design-independent, so the costing service caches
  them by workload fingerprint and reuses them across CliffGuard
  iterations, greedy sweeps, and replay windows;
* :meth:`bind` attaches a structure set to an arena, computing only the
  per-design masks and pair-factor matrices.  ``compile(profiles,
  structures)`` is exactly ``bind(compile_queries(profiles),
  structures)`` and remains the one-shot entry point.

Bound batches additionally support **delta re-costing**
(:meth:`~ColumnarBatch.delta_design_costs`): when a design changes by a
single structure, only the queries whose access paths that structure can
touch (its table is the query's anchor or one of its dimension tables)
are re-priced; every other query keeps its previous cost, which is
bit-identical by construction — an off-table structure contributes only
``inf``/invalid cells to the min-reductions.

Bit-identity contract (tolerance = 0): the kernels replicate the scalar
models' floating-point operations *in the same order*, element-wise, so
every cost is the exact float ``query_cost`` would have produced.  Two
rules make that possible:

* any term whose value involves ``math.log2`` (sort costs, B-tree seek
  levels, view rollup sorts) is computed scalarly with ``math.log2`` at
  compile time — ``np.log2`` is not guaranteed to round identically —
  and folded into a per-query / per-access / per-pair constant, and
* masked additions use ``np.where(cond, term, 0.0)``; adding ``+0.0``
  is bitwise-preserving because every partial cost here is positive.

The scalar ``query_cost`` remains the reference implementation; the
property tests in ``tests/test_costing_kernel.py`` assert exact equality
on all three substrates.  Models the dispatcher does not recognize
(stubs, subclasses with overridden constants) simply get no kernel and
stay on the scalar path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

import repro.engine.optimizer as _col
import repro.rowstore.optimizer as _row
import repro.samples.optimizer as _smp
from repro.costing.profile import QueryProfile, TableAccess
from repro.rowstore.matview import MaterializedView

__all__ = [
    "ColumnarArena",
    "ColumnarKernel",
    "RowstoreArena",
    "RowstoreKernel",
    "SamplesArena",
    "SamplesKernel",
    "kernel_for",
]


def _require_bitwise_count(module=np) -> None:
    """Fail fast (with an actionable message) on numpy < 2.0."""
    if not hasattr(module, "bitwise_count"):
        version = getattr(module, "__version__", "unknown")
        raise ImportError(
            "repro.costing.kernel requires numpy >= 2.0 "
            f"(np.bitwise_count is missing; installed numpy is {version}). "
            "Upgrade with: pip install 'numpy>=2.0'"
        )


_require_bitwise_count()


# -- bit namespace ----------------------------------------------------------------


class _ColumnBits:
    """Deterministic (table, column) -> bit assignment over one schema."""

    def __init__(self, schema):
        self.table_ids: dict[str, int] = {
            name: i for i, name in enumerate(schema.tables)
        }
        self.bits: dict[tuple[str, str], int] = {}
        for name, table in schema.tables.items():
            for column in table.column_names:
                self.bits[(name, column)] = len(self.bits)
        self.words = max(1, (len(self.bits) + 63) // 64)

    def table_id(self, name: str) -> int:
        """Table id, or -1 for tables the schema does not know."""
        return self.table_ids.get(name, -1)

    def mask(self, table: str, columns) -> np.ndarray:
        """uint64 bit-array for a column set (unknown columns are skipped:
        they can never appear in a query's needs, so they cannot change a
        coverage check)."""
        mask = np.zeros(self.words, dtype=np.uint64)
        for column in columns:
            bit = self.bits.get((table, column))
            if bit is None:
                continue
            mask[bit >> 6] |= np.uint64(1) << np.uint64(bit & 63)
        return mask

    def masks(self, items) -> np.ndarray:
        """(N, words) uint64 bit-arrays for ``[(table, columns), ...]`` —
        one flattened scatter instead of N per-item array builds."""
        out = np.zeros((len(items), self.words), dtype=np.uint64)
        rows: list[int] = []
        words: list[int] = []
        values: list[int] = []
        for i, (table, columns) in enumerate(items):
            for column in columns:
                bit = self.bits.get((table, column))
                if bit is None:
                    continue
                rows.append(i)
                words.append(bit >> 6)
                values.append(1 << (bit & 63))
        if rows:
            np.bitwise_or.at(
                out,
                (np.array(rows, dtype=np.intp), np.array(words, dtype=np.intp)),
                np.array(values, dtype=np.uint64),
            )
        return out


def _covered(need: np.ndarray, have: np.ndarray) -> np.ndarray:
    """(S, A) bool: ``need[a] ⊆ have[s]`` via popcount of ``need & ~have``."""
    if have.shape[0] == 0 or need.shape[0] == 0:
        return np.zeros((have.shape[0], need.shape[0]), dtype=bool)
    missing = need[None, :, :] & ~have[:, None, :]
    return np.bitwise_count(missing).sum(axis=2, dtype=np.int64) == 0


# -- shared access-side compilation -----------------------------------------------


@dataclass
class _AccessTable:
    """Deduplicated anchor + dimension accesses of one profile batch."""

    accesses: list[TableAccess]
    anchor_acc: np.ndarray  # (Q,) index into accesses
    dim_pad: np.ndarray  # (Q, Dmax) index into accesses, -1 padded


def _compile_accesses(profiles: list[QueryProfile]) -> _AccessTable:
    index: dict[TableAccess, int] = {}
    accesses: list[TableAccess] = []

    def intern(access: TableAccess) -> int:
        slot = index.get(access)
        if slot is None:
            slot = len(accesses)
            index[access] = slot
            accesses.append(access)
        return slot

    anchor_acc = np.array(
        [intern(p.anchor) for p in profiles], dtype=np.intp
    ).reshape(len(profiles))
    dim_lists = [[intern(d) for d in p.dimensions] for p in profiles]
    dmax = max((len(d) for d in dim_lists), default=0)
    dim_pad = np.full((len(profiles), dmax), -1, dtype=np.intp)
    for q, dims in enumerate(dim_lists):
        for j, a in enumerate(dims):
            dim_pad[q, j] = a
    return _AccessTable(accesses=accesses, anchor_acc=anchor_acc, dim_pad=dim_pad)


def _dim_sum_vector(dim_pad: np.ndarray, term: np.ndarray) -> np.ndarray:
    """Left-to-right padded accumulation of per-access ``term`` -> (Q,).

    Mirrors the scalar ``sum(dimension_cost(d) for d in dims)`` exactly:
    Python's ``sum`` folds left starting at 0, and adding a masked 0.0
    preserves every (positive) partial sum bit-for-bit.
    """
    total = np.zeros(dim_pad.shape[0], dtype=np.float64)
    for j in range(dim_pad.shape[1]):
        col = dim_pad[:, j]
        total = total + np.where(col >= 0, term[np.maximum(col, 0)], 0.0)
    return total


def _dim_sum_matrix(dim_pad: np.ndarray, term: np.ndarray) -> np.ndarray:
    """The (S, A)-term variant of :func:`_dim_sum_vector` -> (S, Q)."""
    total = np.zeros((term.shape[0], dim_pad.shape[0]), dtype=np.float64)
    for j in range(dim_pad.shape[1]):
        col = dim_pad[:, j]
        contrib = term[:, np.maximum(col, 0)]
        total = total + np.where((col >= 0)[None, :], contrib, 0.0)
    return total


def _related_mask(
    struct_table: np.ndarray,
    anchor_table: np.ndarray,
    acc_table: np.ndarray,
    dim_pad: np.ndarray,
) -> np.ndarray:
    """(S, Q) bool: the structure's table is the query's anchor table or
    one of its dimension tables — the only pairs whose single-structure
    cost can differ from the empty-design cost."""
    related = struct_table[:, None] == anchor_table[None, :]
    for j in range(dim_pad.shape[1]):
        col = dim_pad[:, j]
        tables = acc_table[np.maximum(col, 0)]
        related = related | ((col >= 0)[None, :] & (struct_table[:, None] == tables[None, :]))
    return related


def _write_touch_mask(
    struct_table: np.ndarray,
    struct_write_mask: np.ndarray,
    anchor_tid: np.ndarray,
    is_write: np.ndarray,
    always_touch: np.ndarray,
    written_mask: np.ndarray,
) -> np.ndarray:
    """(S, Q) bool: the write in query ``q`` forces maintenance of ``s``.

    Mirrors the scalar ``write_touches``: the structure lives on the
    written table, and either the statement rewrites whole rows
    (insert/delete, ``always_touch``) or the update's written-column set
    intersects the structure's column set (bitmask AND + popcount).
    """
    same = struct_table[:, None] == anchor_tid[None, :]
    if struct_write_mask.shape[0] == 0 or written_mask.shape[0] == 0:
        return np.zeros(
            (struct_write_mask.shape[0], written_mask.shape[0]), dtype=bool
        )
    overlap = struct_write_mask[:, None, :] & written_mask[None, :, :]
    has_common = np.bitwise_count(overlap).sum(axis=2, dtype=np.int64) > 0
    return same & is_write[None, :] & (always_touch[None, :] | has_common)


def _write_fold_order(keys) -> np.ndarray:
    """(S,) rank of each structure in the scalar maintenance fold.

    The scalar ``_write_cost`` iterates a table's structures in the
    design container's canonical *sorted* order (``for_table`` /
    ``indices_for`` + ``views_for``), not bind order.  Float addition is
    not associative, so the kernel must add the same maintenance terms
    in the same sequence to stay bit-identical.  ``keys`` is one sort
    key per structure whose per-table restriction reproduces the
    container's ordering; cross-table interleaving is harmless because
    non-touching members contribute an exact ``+0.0``.
    """
    order = sorted(range(len(keys)), key=keys.__getitem__)
    rank = np.empty(len(keys), dtype=np.intp)
    rank[order] = np.arange(len(keys), dtype=np.intp)
    return rank


def _compile_write_side(profiles, bits: "_ColumnBits", model):
    """Query-side write arrays shared by all three substrate compiles.

    ``base_write`` is folded scalarly through the model's own
    ``base_write_cost`` so the stored float is the exact one the scalar
    reference produces.
    """
    count = len(profiles)
    is_write = np.zeros(count, dtype=bool)
    is_insert = np.zeros(count, dtype=bool)
    always_touch = np.zeros(count, dtype=bool)
    affected = np.zeros(count, dtype=np.float64)
    base_write = np.zeros(count, dtype=np.float64)
    written_mask = np.zeros((count, bits.words), dtype=np.uint64)
    for q, profile in enumerate(profiles):
        if not profile.is_write:
            continue
        is_write[q] = True
        is_insert[q] = profile.statement_kind == "insert"
        always_touch[q] = profile.statement_kind != "update"
        affected[q] = profile.affected_rows
        base_write[q] = model.base_write_cost(profile)
        written_mask[q] = bits.mask(profile.anchor.table, profile.written_columns)
    return is_write, is_insert, always_touch, affected, base_write, written_mask


def _delta_design_costs(batch, members, changed_row: int, prev_costs) -> np.ndarray:
    """Shared body of the per-substrate ``delta_design_costs`` methods.

    ``prev_costs`` are the (Q,) per-query costs under the *previous*
    design; ``members`` is the new member row set, which differs from the
    previous one by exactly the structure in row ``changed_row`` (added
    or removed — the math is symmetric).  Queries the changed structure
    cannot touch keep their previous float verbatim; the rest are
    re-priced through the full min-reduction, restricted to the affected
    query subset (``take`` + ``design_costs`` — element-wise per query,
    so the subset evaluation is bit-identical to a full one).
    """
    out = np.array(prev_costs, dtype=np.float64, copy=True)
    if out.shape[0] != batch.query_count:
        raise ValueError(
            f"prev_costs has {out.shape[0]} entries for "
            f"{batch.query_count} compiled queries"
        )
    affected = np.flatnonzero(batch.affected_queries(changed_row))
    if affected.size:
        out[affected] = batch.take(affected).design_costs(members)
    return out


def affected_union(batch) -> np.ndarray:
    """(Q,) bool: queries whose cost can depend on *any* of the bound
    batch's structures — the OR of ``affected_queries`` over every
    structure row.  This is the multi-structure generalisation the
    design-diff delta path needs: a design step that adds and removes
    several structures can only move the costs inside this mask.
    """
    mask = np.zeros(batch.query_count, dtype=bool)
    for row in range(batch.structure_count):
        mask |= np.asarray(batch.affected_queries(row), dtype=bool)
    return mask


# -- columnar ---------------------------------------------------------------------


@dataclass
class ColumnarBatch:
    """Compiled (projections × queries) batch for the columnar model."""

    sqls: list[str]
    words: int
    # structures (S)
    struct_table: np.ndarray
    # accesses (A)
    acc_table: np.ndarray
    acc_rows: np.ndarray
    acc_needed_bytes: np.ndarray
    acc_pred: np.ndarray
    acc_super_scan: np.ndarray  # scan cost via the table's super-projection
    acc_build_add: np.ndarray  # max(rows·sel, 1) · JOIN_BUILD_COST_MS
    # (S, A) pair factors
    scan_valid: np.ndarray  # table match & coverage
    prefix: np.ndarray  # folded sort-key-prefix selectivity
    # per query (Q)
    anchor_acc: np.ndarray
    dim_pad: np.ndarray
    super_anchor: np.ndarray  # full anchor-path cost via the super-projection
    has_group: np.ndarray
    has_order: np.ndarray
    agg_sorted_add: np.ndarray  # rows_out · SORTED_AGG_COST_MS
    agg_hash_add: np.ndarray  # rows_out · HASH_AGG_COST_MS
    sort_add: np.ndarray  # n · log2(n) · SORT_COST_MS (math.log2, folded)
    n_dims: np.ndarray
    # (S, Q) pair booleans
    sorted_groups: np.ndarray
    order_free: np.ndarray
    # write-cost path (all zeros / False for pure-read workloads)
    is_write: np.ndarray  # (Q,) bool
    is_insert: np.ndarray  # (Q,) bool
    affected: np.ndarray  # (Q,) estimated affected rows
    base_write: np.ndarray  # (Q,) folded base write cost
    write_weight: np.ndarray  # (S,) per-affected-row maintenance weight
    write_touch: np.ndarray  # (S, Q) bool: write q maintains structure s
    write_rank: np.ndarray  # (S,) scalar maintenance fold order (see _write_fold_order)

    @property
    def structure_count(self) -> int:
        return int(self.struct_table.shape[0])

    @property
    def query_count(self) -> int:
        return len(self.sqls)

    @property
    def any_write(self) -> bool:
        return bool(self.is_write.any())

    def take(self, q_indices) -> "ColumnarBatch":
        """A batch restricted to a subset of queries (for chunked workers)."""
        idx = np.asarray(q_indices, dtype=np.intp)
        return replace(
            self,
            sqls=[self.sqls[i] for i in idx],
            anchor_acc=self.anchor_acc[idx],
            dim_pad=self.dim_pad[idx],
            super_anchor=self.super_anchor[idx],
            has_group=self.has_group[idx],
            has_order=self.has_order[idx],
            agg_sorted_add=self.agg_sorted_add[idx],
            agg_hash_add=self.agg_hash_add[idx],
            sort_add=self.sort_add[idx],
            n_dims=self.n_dims[idx],
            sorted_groups=self.sorted_groups[:, idx],
            order_free=self.order_free[:, idx],
            is_write=self.is_write[idx],
            is_insert=self.is_insert[idx],
            affected=self.affected[idx],
            base_write=self.base_write[idx],
            write_touch=self.write_touch[:, idx],
        )

    def _write_costs(self, locate: np.ndarray, members: np.ndarray) -> np.ndarray:
        """(Q,) write-path costs given the per-query locate best.

        Replicates the scalar ``_write_cost`` fold exactly: inserts skip
        the locate, then maintenance terms accumulate in member order
        (masked adds of ``+0.0`` are bit-preserving for non-touching
        members, so the interleaved fold matches the scalar per-table
        restriction of the design order).
        """
        cost = (
            _col.QUERY_OVERHEAD_MS + np.where(self.is_insert, 0.0, locate)
        ) + self.base_write
        fold = members[np.argsort(self.write_rank[members], kind="stable")]
        for m in fold.tolist():
            cost = cost + np.where(
                self.write_touch[m], self.affected * self.write_weight[m], 0.0
            )
        return cost

    # -- matrices ----------------------------------------------------------------

    def _anchor_matrix(self, rows_s=None) -> np.ndarray:
        """(S', Q) full anchor-path cost, inf where the projection cannot
        serve the query (wrong table or missing columns).  ``rows_s``
        restricts the structure axis (None = all rows): the sliced
        computation is element-wise identical to slicing the full matrix,
        without materializing the unused rows."""
        a = self.anchor_acc
        rows = self.acc_rows[a]
        prefix = self.prefix[:, a] if rows_s is None else self.prefix[rows_s][:, a]
        sorted_groups = (
            self.sorted_groups if rows_s is None else self.sorted_groups[rows_s]
        )
        order_free = self.order_free if rows_s is None else self.order_free[rows_s]
        scan_valid = (
            self.scan_valid[:, a] if rows_s is None else self.scan_valid[rows_s][:, a]
        )
        rows_scanned = np.maximum(rows[None, :] * prefix, 1.0)
        cost = (rows_scanned * self.acc_needed_bytes[a][None, :]) * _col.BYTE_COST_MS
        cost = cost + (rows_scanned * self.acc_pred[a][None, :]) * _col.PREDICATE_COST_MS
        agg = np.where(
            sorted_groups, self.agg_sorted_add[None, :], self.agg_hash_add[None, :]
        )
        cost = cost + np.where(self.has_group[None, :], agg, 0.0)
        needs_sort = self.has_order[None, :] & ~order_free
        cost = cost + np.where(needs_sort, self.sort_add[None, :], 0.0)
        cost = cost + (rows_scanned * self.n_dims[None, :]) * _col.JOIN_PROBE_COST_MS
        return np.where(scan_valid, cost, np.inf)

    def _dim_scan_matrix(self, rows_s=None) -> np.ndarray:
        """(S', A) projection scan cost per access, inf where unusable."""
        prefix = self.prefix if rows_s is None else self.prefix[rows_s]
        scan_valid = self.scan_valid if rows_s is None else self.scan_valid[rows_s]
        rows_scanned = np.maximum(self.acc_rows[None, :] * prefix, 1.0)
        cost = (rows_scanned * self.acc_needed_bytes[None, :]) * _col.BYTE_COST_MS
        cost = cost + (rows_scanned * self.acc_pred[None, :]) * _col.PREDICATE_COST_MS
        return np.where(scan_valid, cost, np.inf)

    # -- evaluation --------------------------------------------------------------

    def base_costs(self) -> np.ndarray:
        """(Q,) empty-design costs."""
        dim_term = self.acc_super_scan + self.acc_build_add
        total = _dim_sum_vector(self.dim_pad, dim_term)
        read = (_col.QUERY_OVERHEAD_MS + self.super_anchor) + total
        if not self.any_write:
            return read
        wcost = self._write_costs(
            self.super_anchor, np.zeros(0, dtype=np.intp)
        )
        return np.where(self.is_write, wcost, read)

    def design_costs(self, members=None) -> np.ndarray:
        """(Q,) costs under the design made of ``members`` (structure row
        indices; None = all compiled structures)."""
        members = (
            np.arange(self.structure_count, dtype=np.intp)
            if members is None
            else np.asarray(members, dtype=np.intp)
        )
        if members.size:
            anchor = self._anchor_matrix(members)
            best = np.minimum(self.super_anchor, anchor.min(axis=0))
            dim_best = np.minimum(
                self.acc_super_scan, self._dim_scan_matrix(members).min(axis=0)
            )
        else:
            best = self.super_anchor
            dim_best = self.acc_super_scan
        total = _dim_sum_vector(self.dim_pad, dim_best + self.acc_build_add)
        read = (_col.QUERY_OVERHEAD_MS + best) + total
        if not self.any_write:
            return read
        return np.where(self.is_write, self._write_costs(best, members), read)

    def affected_queries(self, row: int) -> np.ndarray:
        """(Q,) bool: queries whose cost can change when structure ``row``
        enters or leaves a design (its table is the query's anchor table
        or one of its dimension tables)."""
        return _related_mask(
            self.struct_table[row : row + 1],
            self.acc_table[self.anchor_acc],
            self.acc_table,
            self.dim_pad,
        )[0]

    def delta_design_costs(self, members, changed_row: int, prev_costs) -> np.ndarray:
        """(Q,) costs under ``members``, re-pricing only the queries the
        single changed structure can touch (see :func:`_delta_design_costs`)."""
        return _delta_design_costs(self, members, changed_row, prev_costs)

    def candidate_frame(self) -> tuple[np.ndarray, np.ndarray]:
        """``(price, unservable)`` masks for the greedy candidate matrix.

        ``price[s, q]`` marks pairs whose single-structure cost can differ
        from the base cost: the candidate's table appears in the query
        (anchor or dimension) and, when it is the anchor table, the
        candidate can serve the anchor.  ``unservable[s, q]`` marks
        anchor-table candidates that cannot serve the query at all (the
        scalar designer leaves those cells at ``inf``); every remaining
        cell is exactly the base cost (off-table candidates leave every
        access path unchanged).
        """
        anchor_valid = self.scan_valid[:, self.anchor_acc]
        same_anchor = self.struct_table[:, None] == self.acc_table[self.anchor_acc][None, :]
        related = _related_mask(
            self.struct_table, self.acc_table[self.anchor_acc], self.acc_table, self.dim_pad
        )
        # A write is never *served* by a structure, but a same-table
        # structure still changes its cost (maintenance + locate), so
        # write cells are priced rather than marked unservable.
        unservable = same_anchor & ~anchor_valid & ~self.is_write[None, :]
        return related & ~unservable, unservable

    def candidate_costs(self) -> np.ndarray:
        """(S, Q) query cost with only structure ``s`` deployed."""
        anchor = self._anchor_matrix()
        best = np.minimum(self.super_anchor[None, :], anchor)
        dim_term = (
            np.minimum(self.acc_super_scan[None, :], self._dim_scan_matrix())
            + self.acc_build_add[None, :]
        )
        total = _dim_sum_matrix(self.dim_pad, dim_term)
        read = (_col.QUERY_OVERHEAD_MS + best) + total
        if not self.any_write:
            return read
        wcost = (
            _col.QUERY_OVERHEAD_MS + np.where(self.is_insert[None, :], 0.0, best)
        ) + self.base_write[None, :]
        wcost = wcost + np.where(
            self.write_touch,
            self.affected[None, :] * self.write_weight[:, None],
            0.0,
        )
        return np.where(self.is_write[None, :], wcost, read)


@dataclass
class ColumnarArena:
    """Query-side compiled state for the columnar substrate.

    Everything here depends only on the profiles and the schema — never
    on any structure — so one arena serves every design bound against it
    (:meth:`ColumnarKernel.bind`).  Arenas are immutable once built.
    """

    sqls: list[str]
    bits: _ColumnBits
    accesses: list[TableAccess]
    acc_table: np.ndarray
    acc_rows: np.ndarray
    acc_needed_bytes: np.ndarray
    acc_pred: np.ndarray
    acc_super_scan: np.ndarray
    acc_build_add: np.ndarray
    acc_mask: np.ndarray
    anchor_acc: np.ndarray
    dim_pad: np.ndarray
    super_anchor: np.ndarray
    has_group: np.ndarray
    has_order: np.ndarray
    agg_sorted_add: np.ndarray
    agg_hash_add: np.ndarray
    sort_add: np.ndarray
    n_dims: np.ndarray
    # write-cost path (query-side; the touch matrix is bound per design)
    is_write: np.ndarray
    is_insert: np.ndarray
    always_touch: np.ndarray
    affected: np.ndarray
    base_write: np.ndarray
    written_mask: np.ndarray
    #: (anchor table id, group-by set / order-by tuple) -> query rows.
    group_queries: dict
    order_queries: dict

    @property
    def query_count(self) -> int:
        return len(self.sqls)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the compiled arrays."""
        return _arena_nbytes(self)


def _arena_nbytes(arena) -> int:
    total = 0
    for value in vars(arena).values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
    return total


class ColumnarKernel:
    """Compiles and batch-prices the columnar (projection) substrate."""

    name = "columnar"

    def __init__(self, model):
        self.model = model

    def compile(self, profiles, structures) -> ColumnarBatch:
        """One-shot compile: ``bind(compile_queries(profiles), structures)``."""
        return self.bind(self.compile_queries(profiles), structures)

    def compile_queries(self, profiles) -> ColumnarArena:
        model = self.model
        profiles = list(profiles)
        bits = _ColumnBits(model.schema)
        table = _compile_accesses(profiles)
        accesses = table.accesses

        acc_table = np.array(
            [bits.table_id(a.table) for a in accesses], dtype=np.int64
        ).reshape(len(accesses))
        acc_rows = np.array([float(a.row_count) for a in accesses], dtype=np.float64)
        acc_needed_bytes = np.array(
            [float(a.needed_bytes) for a in accesses], dtype=np.float64
        )
        acc_pred = np.array(
            [float(a.predicate_count) for a in accesses], dtype=np.float64
        )
        acc_super_scan = np.zeros(len(accesses), dtype=np.float64)
        acc_build_add = np.zeros(len(accesses), dtype=np.float64)
        for i, access in enumerate(accesses):
            acc_super_scan[i] = model._scan_cost(access, model._super[access.table])
            rows = max(access.row_count * access.total_selectivity, 1.0)
            acc_build_add[i] = rows * _col.JOIN_BUILD_COST_MS

        acc_mask = bits.masks([(a.table, a.needed_columns) for a in accesses])

        # Per-query folded terms (all log2 work happens here, scalarly).
        count = len(profiles)
        super_anchor = np.zeros(count, dtype=np.float64)
        has_group = np.zeros(count, dtype=bool)
        has_order = np.zeros(count, dtype=bool)
        agg_sorted_add = np.zeros(count, dtype=np.float64)
        agg_hash_add = np.zeros(count, dtype=np.float64)
        sort_add = np.zeros(count, dtype=np.float64)
        n_dims = np.zeros(count, dtype=np.float64)
        is_write, is_insert, always_touch, affected, base_write, written_mask = (
            _compile_write_side(profiles, bits, model)
        )
        for q, profile in enumerate(profiles):
            access = profile.anchor
            super_anchor[q] = model.projection_cost(
                profile, model._super[access.table]
            )
            has_group[q] = bool(profile.group_by)
            has_order[q] = bool(profile.order_by)
            n_dims[q] = float(len(profile.dimensions))
            rows_out = max(access.row_count * access.total_selectivity, 1.0)
            agg_sorted_add[q] = rows_out * _col.SORTED_AGG_COST_MS
            agg_hash_add[q] = rows_out * _col.HASH_AGG_COST_MS
            if profile.group_by:
                result_rows = max(min(profile.group_cardinality, rows_out), 1.0)
            else:
                result_rows = rows_out
            if profile.order_by:
                n = max(result_rows, 2.0)
                sort_add[q] = n * math.log2(n) * _col.SORT_COST_MS

        # Group/order combinations: queries are template-derived, so
        # distinct (anchor table, group-by set) / (anchor table, order-by
        # tuple) pairs are few; the bind step evaluates each combination
        # once per table's structures instead of per (structure, query).
        anchor_tid = acc_table[table.anchor_acc]
        group_queries: dict[tuple[int, tuple], list[int]] = {}
        order_queries: dict[tuple[int, tuple], list[int]] = {}
        for q, (profile, tid) in enumerate(zip(profiles, anchor_tid.tolist())):
            if profile.group_by:
                key = (tid, tuple(profile.group_by))
                group_queries.setdefault(key, []).append(q)
            elif profile.order_by:
                order_queries.setdefault((tid, profile.order_by), []).append(q)

        return ColumnarArena(
            sqls=[p.sql for p in profiles],
            bits=bits,
            accesses=accesses,
            acc_table=acc_table,
            acc_rows=acc_rows,
            acc_needed_bytes=acc_needed_bytes,
            acc_pred=acc_pred,
            acc_super_scan=acc_super_scan,
            acc_build_add=acc_build_add,
            acc_mask=acc_mask,
            anchor_acc=table.anchor_acc,
            dim_pad=table.dim_pad,
            super_anchor=super_anchor,
            has_group=has_group,
            has_order=has_order,
            agg_sorted_add=agg_sorted_add,
            agg_hash_add=agg_hash_add,
            sort_add=sort_add,
            n_dims=n_dims,
            is_write=is_write,
            is_insert=is_insert,
            always_touch=always_touch,
            affected=affected,
            base_write=base_write,
            written_mask=written_mask,
            group_queries=group_queries,
            order_queries=order_queries,
        )

    def bind(self, arena: ColumnarArena, structures) -> ColumnarBatch:
        structures = list(structures)
        bits = arena.bits
        accesses = arena.accesses
        acc_table = arena.acc_table
        struct_table = np.array(
            [bits.table_id(s.table) for s in structures], dtype=np.int64
        ).reshape(len(structures))
        struct_mask = bits.masks([(s.table, s.columns) for s in structures])
        scan_valid = _covered(arena.acc_mask, struct_mask) & (
            struct_table[:, None] == acc_table[None, :]
        )

        # Fold sort-key-prefix selectivity per (structure, access) pair —
        # the same multiply-in-order walk the scalar model does, vectorized
        # over structures.  Sort-key columns are interned to global bit ids
        # (id ``n_bits`` = "unknown": never eq, never range); per access,
        # position j contributes its eq/range factor only while every
        # earlier position matched an eq predicate, and a range match ends
        # the walk.  Skipped positions multiply by exactly 1.0, which is a
        # bit-exact identity, and the explicit per-position fold below
        # keeps the scalar model's left-to-right multiply order.
        sort_keys = [s.sort_key for s in structures]
        prefix = np.ones((len(structures), len(accesses)), dtype=np.float64)
        key_width = max((len(k) for k in sort_keys), default=0)
        if structures and accesses and key_width:
            n_bits = len(bits.bits)
            key_ids = np.full((len(structures), key_width), n_bits, dtype=np.intp)
            for s, structure in enumerate(structures):
                for j, name in enumerate(sort_keys[s]):
                    key_ids[s, j] = bits.bits.get((structure.table, name), n_bits)
            structs_by_table: dict[int, list[int]] = {}
            for s, tid in enumerate(struct_table.tolist()):
                structs_by_table.setdefault(tid, []).append(s)
            for a, (access, tid) in enumerate(zip(accesses, acc_table.tolist())):
                rows_s = structs_by_table.get(tid)
                if not rows_s:
                    continue
                eq_sel = np.ones(n_bits + 1, dtype=np.float64)
                rng_sel = np.ones(n_bits + 1, dtype=np.float64)
                is_eq = np.zeros(n_bits + 1, dtype=bool)
                is_rng = np.zeros(n_bits + 1, dtype=bool)
                for name, sel in access.eq_map.items():
                    bit = bits.bits.get((access.table, name))
                    if bit is not None:
                        is_eq[bit] = True
                        eq_sel[bit] = sel
                for name, sel in access.range_map.items():
                    bit = bits.bits.get((access.table, name))
                    if bit is not None:
                        is_rng[bit] = True
                        rng_sel[bit] = sel
                ids = key_ids[rows_s]
                eq_hit = is_eq[ids]
                factor = np.where(
                    eq_hit,
                    eq_sel[ids],
                    np.where(is_rng[ids], rng_sel[ids], 1.0),
                )
                alive = np.ones(len(rows_s), dtype=bool)
                total = np.ones(len(rows_s), dtype=np.float64)
                for j in range(ids.shape[1]):
                    total = total * np.where(alive, factor[:, j], 1.0)
                    alive = alive & eq_hit[:, j]
                prefix[rows_s, a] = total

        # Pair booleans: GROUP BY streaming and ORDER BY-free matches.
        # The arena pre-grouped queries by distinct (anchor table,
        # group-by set) / (anchor table, order-by tuple) combination;
        # evaluating each combination once against the per-table
        # structures replaces the per-(structure, query) Python loop.
        count = arena.query_count
        sorted_groups = np.zeros((len(structures), count), dtype=bool)
        order_free = np.zeros((len(structures), count), dtype=bool)
        rows_by_table: dict[int, list[int]] = {}
        for s, tid in enumerate(struct_table.tolist()):
            rows_by_table.setdefault(tid, []).append(s)
        structs_of = {
            tid: np.array(rows, dtype=np.intp) for tid, rows in rows_by_table.items()
        }
        for (tid, group_by), qs in arena.group_queries.items():
            rows_s = structs_of.get(tid)
            if rows_s is None:
                continue
            width = len(group_by)
            group_set = set(group_by)
            hits = np.fromiter(
                (
                    len(sort_keys[s]) >= width
                    and set(sort_keys[s][:width]) == group_set
                    for s in rows_s
                ),
                dtype=bool,
                count=len(rows_s),
            )
            if hits.any():
                sorted_groups[np.ix_(rows_s[hits], qs)] = True
        for (tid, order_by), qs in arena.order_queries.items():
            rows_s = structs_of.get(tid)
            if rows_s is None:
                continue
            width = len(order_by)
            hits = np.fromiter(
                (sort_keys[s][:width] == order_by for s in rows_s),
                dtype=bool,
                count=len(rows_s),
            )
            if hits.any():
                order_free[np.ix_(rows_s[hits], qs)] = True

        write_weight = np.array(
            [self.model.maintenance_weight(s) for s in structures],
            dtype=np.float64,
        ).reshape(len(structures))
        write_touch = _write_touch_mask(
            struct_table,
            struct_mask,
            acc_table[arena.anchor_acc],
            arena.is_write,
            arena.always_touch,
            arena.written_mask,
        )
        write_rank = _write_fold_order(
            [(s.table, s.columns, s.sort_key) for s in structures]
        )

        return ColumnarBatch(
            sqls=list(arena.sqls),
            words=bits.words,
            struct_table=struct_table,
            acc_table=acc_table,
            acc_rows=arena.acc_rows,
            acc_needed_bytes=arena.acc_needed_bytes,
            acc_pred=arena.acc_pred,
            acc_super_scan=arena.acc_super_scan,
            acc_build_add=arena.acc_build_add,
            scan_valid=scan_valid,
            prefix=prefix,
            anchor_acc=arena.anchor_acc,
            dim_pad=arena.dim_pad,
            super_anchor=arena.super_anchor,
            has_group=arena.has_group,
            has_order=arena.has_order,
            agg_sorted_add=arena.agg_sorted_add,
            agg_hash_add=arena.agg_hash_add,
            sort_add=arena.sort_add,
            n_dims=arena.n_dims,
            sorted_groups=sorted_groups,
            order_free=order_free,
            is_write=arena.is_write,
            is_insert=arena.is_insert,
            affected=arena.affected,
            base_write=arena.base_write,
            write_weight=write_weight,
            write_touch=write_touch,
            write_rank=write_rank,
        )


# -- rowstore ---------------------------------------------------------------------


@dataclass
class RowstoreBatch:
    """Compiled (indices/views × queries) batch for the row store."""

    sqls: list[str]
    words: int
    struct_table: np.ndarray  # (S,)
    is_view: np.ndarray  # (S,) bool
    key_bytes: np.ndarray  # (S,) covering-read width (0 for views)
    # accesses (A)
    acc_table: np.ndarray
    acc_rows: np.ndarray
    acc_row_bytes: np.ndarray
    acc_pred: np.ndarray
    acc_seek_add: np.ndarray  # SEEK_COST_MS · log2(max(rows, 2)), folded
    acc_base_scan: np.ndarray  # full-table-scan cost (dimension fallback)
    acc_build_add: np.ndarray
    # (S, A) pair factors (index rows only; view rows are invalid)
    seek_valid: np.ndarray
    seek_sel: np.ndarray  # folded seek-prefix selectivity
    seek_depth: np.ndarray  # folded seek depth (float64)
    covering: np.ndarray
    # per query (Q)
    anchor_acc: np.ndarray
    dim_pad: np.ndarray
    base_path: np.ndarray  # scan + post cost (the NoDesign anchor path)
    post: np.ndarray  # aggregation/sort/probe work after index fetch
    # (S, Q): view rollup costs (inf for index rows / unanswerable pairs)
    view_cost: np.ndarray
    # write-cost path (all zeros / False for pure-read workloads)
    is_write: np.ndarray  # (Q,) bool
    is_insert: np.ndarray  # (Q,) bool
    affected: np.ndarray  # (Q,) estimated affected rows
    base_write: np.ndarray  # (Q,) folded base write cost
    write_weight: np.ndarray  # (S,) per-affected-row maintenance weight
    write_touch: np.ndarray  # (S, Q) bool: write q maintains structure s
    write_rank: np.ndarray  # (S,) scalar maintenance fold order (see _write_fold_order)

    @property
    def structure_count(self) -> int:
        return int(self.struct_table.shape[0])

    @property
    def query_count(self) -> int:
        return len(self.sqls)

    @property
    def any_write(self) -> bool:
        return bool(self.is_write.any())

    def take(self, q_indices) -> "RowstoreBatch":
        idx = np.asarray(q_indices, dtype=np.intp)
        return replace(
            self,
            sqls=[self.sqls[i] for i in idx],
            anchor_acc=self.anchor_acc[idx],
            dim_pad=self.dim_pad[idx],
            base_path=self.base_path[idx],
            post=self.post[idx],
            view_cost=self.view_cost[:, idx],
            is_write=self.is_write[idx],
            is_insert=self.is_insert[idx],
            affected=self.affected[idx],
            base_write=self.base_write[idx],
            write_touch=self.write_touch[:, idx],
        )

    def _write_costs(self, locate: np.ndarray, members: np.ndarray) -> np.ndarray:
        """(Q,) write-path costs given the per-query locate best.

        Same contract as :meth:`ColumnarBatch._write_costs`: inserts skip
        the locate, maintenance accumulates in member order with masked
        ``+0.0`` adds (bit-preserving), matching the scalar fold.
        """
        cost = (
            _row.QUERY_OVERHEAD_MS + np.where(self.is_insert, 0.0, locate)
        ) + self.base_write
        fold = members[np.argsort(self.write_rank[members], kind="stable")]
        for m in fold.tolist():
            cost = cost + np.where(
                self.write_touch[m], self.affected * self.write_weight[m], 0.0
            )
        return cost

    def _index_access_matrix(self, rows_s=None) -> np.ndarray:
        """(S, A) cost of driving each access through each index.

        ``rows_s`` restricts the structure axis *before* any elementwise
        work, so member-sized designs never materialize the full matrix.
        """
        sl = slice(None) if rows_s is None else rows_s
        matched = np.maximum(self.acc_rows[None, :] * self.seek_sel[sl], 1.0)
        fetch = np.where(
            self.covering[sl],
            (matched * self.key_bytes[sl][:, None]) * _row.BYTE_COST_MS,
            ((matched * self.acc_row_bytes[None, :]) * _row.BYTE_COST_MS)
            * _row.RANDOM_READ_FACTOR,
        )
        cost = self.acc_seek_add[None, :] + fetch
        remaining = np.maximum(self.acc_pred[None, :] - self.seek_depth[sl], 0.0)
        cost = cost + (matched * remaining) * _row.PREDICATE_COST_MS
        return np.where(self.seek_valid[sl], cost, np.inf)

    def _anchor_matrix(self, rows_s=None) -> np.ndarray:
        """(S, Q) full query cost via each structure's anchor path."""
        sl = slice(None) if rows_s is None else rows_s
        idx_anchor = (
            self._index_access_matrix(rows_s)[:, self.anchor_acc] + self.post[None, :]
        )
        return np.where(self.is_view[sl][:, None], self.view_cost[sl], idx_anchor)

    def base_costs(self) -> np.ndarray:
        total = _dim_sum_vector(self.dim_pad, self.acc_base_scan + self.acc_build_add)
        read = (_row.QUERY_OVERHEAD_MS + self.base_path) + total
        if not self.any_write:
            return read
        wcost = self._write_costs(self.base_path, np.zeros(0, dtype=np.intp))
        return np.where(self.is_write, wcost, read)

    def design_costs(self, members=None) -> np.ndarray:
        members = (
            np.arange(self.structure_count, dtype=np.intp)
            if members is None
            else np.asarray(members, dtype=np.intp)
        )
        if members.size:
            best = np.minimum(self.base_path, self._anchor_matrix(members).min(axis=0))
            dim_best = np.minimum(
                self.acc_base_scan, self._index_access_matrix(members).min(axis=0)
            )
        else:
            best = self.base_path
            dim_best = self.acc_base_scan
        total = _dim_sum_vector(self.dim_pad, dim_best + self.acc_build_add)
        read = (_row.QUERY_OVERHEAD_MS + best) + total
        if not self.any_write:
            return read
        return np.where(self.is_write, self._write_costs(best, members), read)

    def affected_queries(self, row: int) -> np.ndarray:
        """(Q,) bool: queries whose cost can change when structure ``row``
        enters or leaves a design (its table is the query's anchor or one
        of its dimension tables; views only answer anchor-table queries)."""
        return _related_mask(
            self.struct_table[row : row + 1],
            self.acc_table[self.anchor_acc],
            self.acc_table,
            self.dim_pad,
        )[0]

    def delta_design_costs(self, members, changed_row: int, prev_costs) -> np.ndarray:
        """Re-price only the queries structure ``changed_row`` can touch."""
        return _delta_design_costs(self, members, changed_row, prev_costs)

    def candidate_frame(self) -> tuple[np.ndarray, np.ndarray]:
        anchor = self._anchor_matrix()
        anchor_tid = self.acc_table[self.anchor_acc]
        same_anchor = self.struct_table[:, None] == anchor_tid[None, :]
        related = _related_mask(
            self.struct_table, anchor_tid, self.acc_table, self.dim_pad
        )
        # A write is never *served* by a structure, but a same-table
        # structure still changes its cost (maintenance + locate), so
        # write cells are priced rather than marked unservable.
        unservable = same_anchor & ~np.isfinite(anchor) & ~self.is_write[None, :]
        return related & ~unservable, unservable

    def candidate_costs(self) -> np.ndarray:
        best = np.minimum(self.base_path[None, :], self._anchor_matrix())
        dim_term = (
            np.minimum(self.acc_base_scan[None, :], self._index_access_matrix())
            + self.acc_build_add[None, :]
        )
        total = _dim_sum_matrix(self.dim_pad, dim_term)
        read = (_row.QUERY_OVERHEAD_MS + best) + total
        if not self.any_write:
            return read
        wcost = (
            _row.QUERY_OVERHEAD_MS + np.where(self.is_insert[None, :], 0.0, best)
        ) + self.base_write[None, :]
        wcost = wcost + np.where(
            self.write_touch,
            self.affected[None, :] * self.write_weight[:, None],
            0.0,
        )
        return np.where(self.is_write[None, :], wcost, read)


@dataclass
class RowstoreArena:
    """Query-side compiled state for the row-store substrate.

    Keeps the source :class:`QueryProfile` list (unlike the other
    arenas): materialized-view rollup costs go through the scalar
    ``model._view_cost(profile, view)`` at bind time, pair by pair.
    """

    sqls: list[str]
    bits: _ColumnBits
    accesses: list[TableAccess]
    profiles: list[QueryProfile]
    acc_table: np.ndarray
    acc_rows: np.ndarray
    acc_row_bytes: np.ndarray
    acc_pred: np.ndarray
    acc_seek_add: np.ndarray
    acc_base_scan: np.ndarray
    acc_build_add: np.ndarray
    acc_mask: np.ndarray
    anchor_acc: np.ndarray
    dim_pad: np.ndarray
    base_path: np.ndarray
    post: np.ndarray
    # write-cost path (query-side; see _compile_write_side)
    is_write: np.ndarray
    is_insert: np.ndarray
    always_touch: np.ndarray
    affected: np.ndarray
    base_write: np.ndarray
    written_mask: np.ndarray

    @property
    def query_count(self) -> int:
        return len(self.sqls)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the compiled arrays."""
        return _arena_nbytes(self)


class RowstoreKernel:
    """Compiles and batch-prices the row-store (index/view) substrate."""

    name = "rowstore"

    def __init__(self, model):
        self.model = model

    def compile(self, profiles, structures) -> RowstoreBatch:
        """One-shot compile: ``bind(compile_queries(profiles), structures)``."""
        return self.bind(self.compile_queries(profiles), structures)

    def compile_queries(self, profiles) -> RowstoreArena:
        model = self.model
        profiles = list(profiles)
        bits = _ColumnBits(model.schema)
        table = _compile_accesses(profiles)
        accesses = table.accesses

        acc_table = np.array(
            [bits.table_id(a.table) for a in accesses], dtype=np.int64
        ).reshape(len(accesses))
        acc_rows = np.array([float(a.row_count) for a in accesses], dtype=np.float64)
        acc_row_bytes = np.array(
            [float(a.row_bytes) for a in accesses], dtype=np.float64
        )
        acc_pred = np.array(
            [float(a.predicate_count) for a in accesses], dtype=np.float64
        )
        acc_seek_add = np.zeros(len(accesses), dtype=np.float64)
        acc_base_scan = np.zeros(len(accesses), dtype=np.float64)
        acc_build_add = np.zeros(len(accesses), dtype=np.float64)
        for i, access in enumerate(accesses):
            acc_seek_add[i] = _row.SEEK_COST_MS * math.log2(max(access.row_count, 2))
            acc_base_scan[i] = model._scan_cost(access)
            rows = max(access.row_count * access.total_selectivity, 1.0)
            acc_build_add[i] = rows * _row.JOIN_BUILD_COST_MS

        acc_mask = (
            np.stack([bits.mask(a.table, a.needed_columns) for a in accesses])
            if accesses
            else np.zeros((0, bits.words), dtype=np.uint64)
        )

        count = len(profiles)
        base_path = np.zeros(count, dtype=np.float64)
        post = np.zeros(count, dtype=np.float64)
        for q, profile in enumerate(profiles):
            post[q] = model._post_cost(profile)
            base_path[q] = model._scan_cost(profile.anchor) + model._post_cost(profile)

        (
            is_write,
            is_insert,
            always_touch,
            affected,
            base_write,
            written_mask,
        ) = _compile_write_side(profiles, bits, model)

        return RowstoreArena(
            sqls=[p.sql for p in profiles],
            bits=bits,
            accesses=accesses,
            profiles=profiles,
            acc_table=acc_table,
            acc_rows=acc_rows,
            acc_row_bytes=acc_row_bytes,
            acc_pred=acc_pred,
            acc_seek_add=acc_seek_add,
            acc_base_scan=acc_base_scan,
            acc_build_add=acc_build_add,
            acc_mask=acc_mask,
            anchor_acc=table.anchor_acc,
            dim_pad=table.dim_pad,
            base_path=base_path,
            post=post,
            is_write=is_write,
            is_insert=is_insert,
            always_touch=always_touch,
            affected=affected,
            base_write=base_write,
            written_mask=written_mask,
        )

    def bind(self, arena: RowstoreArena, structures) -> RowstoreBatch:
        model = self.model
        structures = list(structures)
        bits = arena.bits
        accesses = arena.accesses
        profiles = arena.profiles
        acc_table = arena.acc_table

        is_view = np.array(
            [isinstance(s, MaterializedView) for s in structures], dtype=bool
        ).reshape(len(structures))
        struct_table = np.array(
            [bits.table_id(s.table) for s in structures], dtype=np.int64
        ).reshape(len(structures))
        key_bytes = np.zeros(len(structures), dtype=np.float64)
        acc_mask = arena.acc_mask
        index_mask = np.zeros((len(structures), bits.words), dtype=np.uint64)
        for s, structure in enumerate(structures):
            if is_view[s]:
                continue
            index_mask[s] = bits.mask(structure.table, structure.columns)
            if struct_table[s] >= 0:
                schema_table = model.schema.table(structure.table)
                key_bytes[s] = float(
                    sum(
                        schema_table.column(c).type.byte_width
                        for c in structure.columns
                    )
                )
        covering = _covered(acc_mask, index_mask) & ~is_view[:, None]

        # Fold seek depth + prefix selectivity per (index, access) pair.
        seek_valid = np.zeros((len(structures), len(accesses)), dtype=bool)
        seek_sel = np.ones((len(structures), len(accesses)), dtype=np.float64)
        seek_depth = np.zeros((len(structures), len(accesses)), dtype=np.float64)
        eq_maps = [a.eq_map for a in accesses]
        range_maps = [a.range_map for a in accesses]
        acc_by_table: dict[int, list[int]] = {}
        for i, tid in enumerate(acc_table.tolist()):
            acc_by_table.setdefault(tid, []).append(i)
        for s, structure in enumerate(structures):
            if is_view[s]:
                continue
            tid = bits.table_id(structure.table)
            for a in acc_by_table.get(tid, ()):
                eq, rng = eq_maps[a], range_maps[a]
                depth, _used_range = structure.seek_prefix(set(eq), set(rng))
                if depth == 0:
                    continue
                selectivity = 1.0
                for name in structure.columns[:depth]:
                    selectivity *= eq.get(name, rng.get(name, 1.0))
                seek_valid[s, a] = True
                seek_sel[s, a] = selectivity
                seek_depth[s, a] = float(depth)

        # View rollup costs are per (view, query) through a log2 term, so
        # they are folded pair-by-pair with the scalar helper itself.
        count = arena.query_count
        view_cost = np.full((len(structures), count), np.inf, dtype=np.float64)
        for s, structure in enumerate(structures):
            if not is_view[s]:
                continue
            for q, profile in enumerate(profiles):
                cost = model._view_cost(profile, structure)
                if cost is not None:
                    view_cost[s, q] = cost

        # Write-side: a view is "touched" through its groupings + measures,
        # an index through its key columns (the scalar write_touches rule).
        struct_write_mask = index_mask.copy()
        for s, structure in enumerate(structures):
            if is_view[s]:
                struct_write_mask[s] = bits.mask(
                    structure.table,
                    tuple(structure.group_columns) + tuple(structure.measure_columns),
                )
        write_weight = np.array(
            [model.maintenance_weight(s) for s in structures],
            dtype=np.float64,
        ).reshape(len(structures))
        write_touch = _write_touch_mask(
            struct_table,
            struct_write_mask,
            acc_table[arena.anchor_acc],
            arena.is_write,
            arena.always_touch,
            arena.written_mask,
        )
        # Scalar fold order: all of a table's indexes (by columns), then
        # its views (by groupings + measures) — see ``_write_cost``.
        write_rank = _write_fold_order(
            [
                (s.table, 1, tuple(s.group_columns), tuple(s.measure_columns))
                if is_view[i]
                else (s.table, 0, tuple(s.columns), ())
                for i, s in enumerate(structures)
            ]
        )

        return RowstoreBatch(
            sqls=list(arena.sqls),
            words=bits.words,
            struct_table=struct_table,
            is_view=is_view,
            key_bytes=key_bytes,
            acc_table=acc_table,
            acc_rows=arena.acc_rows,
            acc_row_bytes=arena.acc_row_bytes,
            acc_pred=arena.acc_pred,
            acc_seek_add=arena.acc_seek_add,
            acc_base_scan=arena.acc_base_scan,
            acc_build_add=arena.acc_build_add,
            seek_valid=seek_valid,
            seek_sel=seek_sel,
            seek_depth=seek_depth,
            covering=covering,
            anchor_acc=arena.anchor_acc,
            dim_pad=arena.dim_pad,
            base_path=arena.base_path,
            post=arena.post,
            view_cost=view_cost,
            is_write=arena.is_write,
            is_insert=arena.is_insert,
            affected=arena.affected,
            base_write=arena.base_write,
            write_weight=write_weight,
            write_touch=write_touch,
            write_rank=write_rank,
        )


# -- samples ----------------------------------------------------------------------


@dataclass
class SamplesBatch:
    """Compiled (stratified samples × queries) batch."""

    sqls: list[str]
    words: int
    struct_table: np.ndarray
    sample_rows: np.ndarray  # (S,)
    acc_table: np.ndarray  # anchor tables only (samples ignore dimensions)
    anchor_acc: np.ndarray
    dim_pad: np.ndarray
    # per query (Q)
    exact: np.ndarray
    needed_bytes: np.ndarray
    pred: np.ndarray
    total_sel: np.ndarray
    agg_flag: np.ndarray  # group_by or has_aggregates
    # (S, Q)
    valid: np.ndarray  # the full `answers` predicate
    # write-cost path (all zeros / False for pure-read workloads)
    is_write: np.ndarray  # (Q,) bool
    is_insert: np.ndarray  # (Q,) bool
    affected: np.ndarray  # (Q,) estimated affected rows
    base_write: np.ndarray  # (Q,) folded base write cost
    write_weight: np.ndarray  # (S,) per-affected-row maintenance weight
    write_touch: np.ndarray  # (S, Q) bool: write q maintains structure s
    write_rank: np.ndarray  # (S,) scalar maintenance fold order (see _write_fold_order)

    @property
    def structure_count(self) -> int:
        return int(self.struct_table.shape[0])

    @property
    def query_count(self) -> int:
        return len(self.sqls)

    @property
    def any_write(self) -> bool:
        return bool(self.is_write.any())

    def take(self, q_indices) -> "SamplesBatch":
        idx = np.asarray(q_indices, dtype=np.intp)
        return replace(
            self,
            sqls=[self.sqls[i] for i in idx],
            anchor_acc=self.anchor_acc[idx],
            dim_pad=self.dim_pad[idx],
            exact=self.exact[idx],
            needed_bytes=self.needed_bytes[idx],
            pred=self.pred[idx],
            total_sel=self.total_sel[idx],
            agg_flag=self.agg_flag[idx],
            valid=self.valid[:, idx],
            is_write=self.is_write[idx],
            is_insert=self.is_insert[idx],
            affected=self.affected[idx],
            base_write=self.base_write[idx],
            write_touch=self.write_touch[:, idx],
        )

    def _write_costs(self, members: np.ndarray) -> np.ndarray:
        """(Q,) write-path costs.  Samples never answer a write's locate
        scan, so the locate term is always the exact full-table cost (the
        scalar ``_write_cost`` does the same); maintenance accumulates in
        member order with bit-preserving masked adds."""
        cost = (
            _smp.QUERY_OVERHEAD_MS + np.where(self.is_insert, 0.0, self.exact)
        ) + self.base_write
        fold = members[np.argsort(self.write_rank[members], kind="stable")]
        for m in fold.tolist():
            cost = cost + np.where(
                self.write_touch[m], self.affected * self.write_weight[m], 0.0
            )
        return cost

    def _sample_matrix(self, rows_s=None) -> np.ndarray:
        """(S, Q) sample scan cost, inf where the sample cannot answer.

        ``rows_s`` restricts the structure axis *before* any elementwise
        work, so member-sized designs never materialize the full matrix.
        """
        sl = slice(None) if rows_s is None else rows_s
        rows = self.sample_rows[sl][:, None]
        cost = (rows * self.needed_bytes[None, :]) * _smp.BYTE_COST_MS
        cost = cost + (rows * self.pred[None, :]) * _smp.PREDICATE_COST_MS
        filtered = np.maximum(rows * self.total_sel[None, :], 1.0)
        cost = cost + np.where(
            self.agg_flag[None, :], filtered * _smp.HASH_AGG_COST_MS, 0.0
        )
        return np.where(self.valid[sl], cost, np.inf)

    def base_costs(self) -> np.ndarray:
        read = _smp.QUERY_OVERHEAD_MS + self.exact
        if not self.any_write:
            return read
        wcost = self._write_costs(np.zeros(0, dtype=np.intp))
        return np.where(self.is_write, wcost, read)

    def design_costs(self, members=None) -> np.ndarray:
        members = (
            np.arange(self.structure_count, dtype=np.intp)
            if members is None
            else np.asarray(members, dtype=np.intp)
        )
        if members.size:
            best = np.minimum(self.exact, self._sample_matrix(members).min(axis=0))
        else:
            best = self.exact
        read = _smp.QUERY_OVERHEAD_MS + best
        if not self.any_write:
            return read
        return np.where(self.is_write, self._write_costs(members), read)

    def affected_queries(self, row: int) -> np.ndarray:
        """(Q,) bool: queries structure ``row`` can touch.  A sample only
        ever answers queries anchored on its own table."""
        anchor_tid = self.acc_table[self.anchor_acc]
        return anchor_tid == self.struct_table[row]

    def delta_design_costs(self, members, changed_row: int, prev_costs) -> np.ndarray:
        """Re-price only the queries structure ``changed_row`` can touch."""
        return _delta_design_costs(self, members, changed_row, prev_costs)

    def candidate_frame(self) -> tuple[np.ndarray, np.ndarray]:
        anchor_tid = self.acc_table[self.anchor_acc]
        same_anchor = self.struct_table[:, None] == anchor_tid[None, :]
        # Write cells are priced (maintenance), never marked unservable.
        price = same_anchor & (self.valid | self.is_write[None, :])
        unservable = same_anchor & ~self.valid & ~self.is_write[None, :]
        return price, unservable

    def candidate_costs(self) -> np.ndarray:
        read = _smp.QUERY_OVERHEAD_MS + np.minimum(
            self.exact[None, :], self._sample_matrix()
        )
        if not self.any_write:
            return read
        wcost = (
            _smp.QUERY_OVERHEAD_MS
            + np.where(self.is_insert[None, :], 0.0, self.exact[None, :])
        ) + self.base_write[None, :]
        wcost = wcost + np.where(
            self.write_touch,
            self.affected[None, :] * self.write_weight[:, None],
            0.0,
        )
        return np.where(self.is_write[None, :], wcost, read)


@dataclass
class SamplesArena:
    """Query-side compiled state for the stratified-samples substrate."""

    sqls: list[str]
    bits: _ColumnBits
    acc_table: np.ndarray
    anchor_acc: np.ndarray
    dim_pad: np.ndarray
    exact: np.ndarray
    needed_bytes: np.ndarray
    pred: np.ndarray
    total_sel: np.ndarray
    agg_flag: np.ndarray
    answerable: np.ndarray
    depends_mask: np.ndarray
    # write-cost path (query-side; see _compile_write_side)
    is_write: np.ndarray
    is_insert: np.ndarray
    always_touch: np.ndarray
    affected: np.ndarray
    base_write: np.ndarray
    written_mask: np.ndarray

    @property
    def query_count(self) -> int:
        return len(self.sqls)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the compiled arrays."""
        return _arena_nbytes(self)


class SamplesKernel:
    """Compiles and batch-prices the stratified-samples substrate."""

    name = "samples"

    def __init__(self, model):
        self.model = model

    def compile(self, profiles, structures) -> SamplesBatch:
        """One-shot compile: ``bind(compile_queries(profiles), structures)``."""
        return self.bind(self.compile_queries(profiles), structures)

    def compile_queries(self, profiles) -> SamplesArena:
        model = self.model
        profiles = list(profiles)
        bits = _ColumnBits(model.schema)
        table = _compile_accesses(profiles)
        accesses = table.accesses
        acc_table = np.array(
            [bits.table_id(a.table) for a in accesses], dtype=np.int64
        ).reshape(len(accesses))

        count = len(profiles)
        exact = np.zeros(count, dtype=np.float64)
        needed_bytes = np.zeros(count, dtype=np.float64)
        pred = np.zeros(count, dtype=np.float64)
        total_sel = np.zeros(count, dtype=np.float64)
        agg_flag = np.zeros(count, dtype=bool)
        answerable = np.zeros(count, dtype=bool)
        depends_mask = np.zeros((count, bits.words), dtype=np.uint64)
        for q, profile in enumerate(profiles):
            access = profile.anchor
            exact[q] = model.exact_cost(profile)
            needed_bytes[q] = float(access.needed_bytes)
            pred[q] = float(access.predicate_count)
            total_sel[q] = access.total_selectivity
            agg_flag[q] = bool(profile.group_by) or profile.has_aggregates
            answerable[q] = (
                not profile.dimensions
                and profile.has_aggregates
                and not any(agg.distinct for agg in profile.aggregates)
            )
            depends_mask[q] = bits.mask(
                access.table, access.predicate_columns | set(profile.group_by)
            )

        (
            is_write,
            is_insert,
            always_touch,
            affected,
            base_write,
            written_mask,
        ) = _compile_write_side(profiles, bits, model)

        return SamplesArena(
            sqls=[p.sql for p in profiles],
            bits=bits,
            acc_table=acc_table,
            anchor_acc=table.anchor_acc,
            dim_pad=table.dim_pad,
            exact=exact,
            needed_bytes=needed_bytes,
            pred=pred,
            total_sel=total_sel,
            agg_flag=agg_flag,
            answerable=answerable,
            depends_mask=depends_mask,
            is_write=is_write,
            is_insert=is_insert,
            always_touch=always_touch,
            affected=affected,
            base_write=base_write,
            written_mask=written_mask,
        )

    def bind(self, arena: SamplesArena, structures) -> SamplesBatch:
        model = self.model
        structures = list(structures)
        bits = arena.bits
        acc_table = arena.acc_table

        struct_table = np.array(
            [bits.table_id(s.table) for s in structures], dtype=np.int64
        ).reshape(len(structures))
        sample_rows = np.zeros(len(structures), dtype=np.float64)
        error_ok = np.zeros(len(structures), dtype=bool)
        strata_mask = np.zeros((len(structures), bits.words), dtype=np.uint64)
        for s, sample in enumerate(structures):
            strata_mask[s] = bits.mask(sample.table, sample.strata_columns)
            stats = model.statistics.get(sample.table)
            if stats is None:
                continue
            sample_rows[s] = float(sample.sample_rows(stats))
            error_ok[s] = sample.relative_error(stats) <= _smp.MAX_RELATIVE_ERROR

        anchor_tid = acc_table[arena.anchor_acc]
        valid = (
            (struct_table[:, None] == anchor_tid[None, :])
            & arena.answerable[None, :]
            & error_ok[:, None]
            & _covered(arena.depends_mask, strata_mask)
        )

        # Write-side: a sample is "touched" through its stratum columns.
        write_weight = np.array(
            [model.maintenance_weight(s) for s in structures],
            dtype=np.float64,
        ).reshape(len(structures))
        write_touch = _write_touch_mask(
            struct_table,
            strata_mask,
            anchor_tid,
            arena.is_write,
            arena.always_touch,
            arena.written_mask,
        )
        write_rank = _write_fold_order(
            [(s.table, s.strata_columns, s.fraction) for s in structures]
        )

        return SamplesBatch(
            sqls=list(arena.sqls),
            words=bits.words,
            struct_table=struct_table,
            sample_rows=sample_rows,
            acc_table=acc_table,
            anchor_acc=arena.anchor_acc,
            dim_pad=arena.dim_pad,
            exact=arena.exact,
            needed_bytes=arena.needed_bytes,
            pred=arena.pred,
            total_sel=arena.total_sel,
            agg_flag=arena.agg_flag,
            valid=valid,
            is_write=arena.is_write,
            is_insert=arena.is_insert,
            affected=arena.affected,
            base_write=arena.base_write,
            write_weight=write_weight,
            write_touch=write_touch,
            write_rank=write_rank,
        )


# -- dispatch ---------------------------------------------------------------------


def kernel_for(cost_model):
    """The batch kernel matching ``cost_model``, or None (scalar path).

    Dispatch is deliberately exact-type: a subclass may override cost
    arithmetic the kernel would silently disagree with, and protocol
    stubs (tests, foreign models) have no compiled form at all.
    """
    if type(cost_model) is _col.ColumnarCostModel:
        return ColumnarKernel(cost_model)
    if type(cost_model) is _row.RowstoreCostModel:
        return RowstoreKernel(cost_model)
    if type(cost_model) is _smp.SamplesCostModel:
        return SamplesKernel(cost_model)
    return None
