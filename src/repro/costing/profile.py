"""Query profiles: parsed, schema-resolved, selectivity-annotated queries.

A profile is pure data.  Costing a profile against a candidate structure is
plain arithmetic, which is what keeps designer search loops (thousands of
query × structure evaluations) fast enough for the robust-design search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema, SchemaError
from repro.catalog.statistics import TableStatistics
from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    DeleteStatement,
    InPredicate,
    InsertStatement,
    PredicateType,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sql.parser import parse


def resolve_column(
    schema: Schema, ref: ColumnRef, default_table: str
) -> tuple[str, str] | None:
    """Resolve a column reference to ``(table, bare_name)``.

    Qualified names resolve directly; bare names prefer the query's anchor
    table, then fall back to a unique owner anywhere in the schema.  Returns
    ``None`` for columns the schema does not know (stale workload queries
    must not crash the designers — the paper's real trace had exactly this:
    only 15.5K of its 430K queries conformed to the latest schema).
    """
    if ref.table is not None:
        if ref.table not in schema.tables:
            return None
        if not schema.table(ref.table).has_column(ref.name):
            return None
        return ref.table, ref.name
    table = schema.tables.get(default_table)
    if table is not None and table.has_column(ref.name):
        return default_table, ref.name
    try:
        owner, column = schema.resolve(ref.name)
    except SchemaError:
        return None
    return owner.name, column.name


@dataclass(frozen=True)
class TableAccess:
    """Everything a cost model needs about one table's role in a query."""

    table: str
    row_count: int
    #: Bare names of the referenced columns that exist in the table.
    needed_columns: frozenset[str]
    #: Bytes per row to read the needed columns (columnar read width).
    needed_bytes: int
    #: Bytes per full row of the table (row-store read width).
    row_bytes: int
    #: column -> selectivity for equality-like predicates (=, IN).
    eq_selectivity: tuple[tuple[str, float], ...]
    #: column -> selectivity for range-like predicates (<, BETWEEN, ...).
    range_selectivity: tuple[tuple[str, float], ...]
    #: Combined selectivity of the full conjunction on this table.
    total_selectivity: float
    #: Number of predicates on this table.
    predicate_count: int

    @property
    def eq_map(self) -> dict[str, float]:
        return dict(self.eq_selectivity)

    @property
    def range_map(self) -> dict[str, float]:
        return dict(self.range_selectivity)

    @property
    def predicate_columns(self) -> frozenset[str]:
        """All columns carrying a predicate on this table."""
        return frozenset(name for name, _ in self.eq_selectivity) | frozenset(
            name for name, _ in self.range_selectivity
        )


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the select list, resolved to a bare anchor column."""

    func: str
    column: str | None  # None means COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class QueryProfile:
    """A fully annotated query, ready to be priced by any engine."""

    sql: str
    anchor: TableAccess
    dimensions: tuple[TableAccess, ...]
    group_by: tuple[str, ...]  # bare names on the anchor table
    order_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    #: Bare anchor-column names appearing as plain select items.
    select_columns: tuple[str, ...]
    limit: int | None
    group_cardinality: int
    #: ``"select"`` for reads; ``"insert"``/``"update"``/``"delete"`` for
    #: writes.  Write profiles carry no dimensions, groupings, or
    #: aggregates — only the anchor access (used to locate affected rows)
    #: plus the write annotations below.
    statement_kind: str = "select"
    #: Bare anchor-column names the statement writes (INSERT column list,
    #: UPDATE SET targets; empty for DELETE — the whole row goes away).
    written_columns: tuple[str, ...] = ()
    #: Bytes modified per affected row (written-column widths; full row
    #: width for DELETE).
    written_bytes: int = 0
    #: Estimated number of rows the statement touches.
    affected_rows: float = 0.0

    @property
    def is_write(self) -> bool:
        return self.statement_kind != "select"

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates)

    @property
    def tables(self) -> tuple[TableAccess, ...]:
        return (self.anchor, *self.dimensions)


class QueryProfiler:
    """Builds and caches :class:`QueryProfile` objects for one schema."""

    def __init__(self, schema: Schema, statistics: dict[str, TableStatistics]):
        self.schema = schema
        self.statistics = statistics
        self._profiles: dict[str, QueryProfile] = {}

    def profile(self, sql: str) -> QueryProfile:
        """Parse and annotate ``sql`` (cached by exact text)."""
        cached = self._profiles.get(sql)
        if cached is not None:
            return cached
        profile = self._build(sql, parse(sql))
        self._profiles[sql] = profile
        return profile

    def _build(self, sql: str, stmt: Statement) -> QueryProfile:
        if isinstance(stmt, (InsertStatement, UpdateStatement, DeleteStatement)):
            return self._build_write(sql, stmt)
        anchor_name = stmt.table
        if anchor_name not in self.schema.tables:
            raise SchemaError(f"query references unknown table {anchor_name!r}")
        table_names = [anchor_name] + [
            j.table for j in stmt.joins if j.table in self.schema.tables
        ]

        needed: dict[str, set[str]] = {name: set() for name in table_names}
        predicates: dict[str, list[PredicateType]] = {name: [] for name in table_names}

        def note_column(ref: ColumnRef) -> tuple[str, str] | None:
            resolved = resolve_column(self.schema, ref, anchor_name)
            if resolved is not None and resolved[0] in needed:
                needed[resolved[0]].add(resolved[1])
                return resolved
            return None

        aggregates: list[AggregateSpec] = []
        select_columns: list[str] = []
        if stmt.select_star:
            for name in table_names:
                needed[name].update(self.schema.table(name).column_names)
        for item in stmt.select:
            if isinstance(item.expr, Aggregate):
                agg = item.expr
                column_name: str | None = None
                if agg.column is not None:
                    resolved = note_column(agg.column)
                    if resolved is not None and resolved[0] == anchor_name:
                        column_name = resolved[1]
                aggregates.append(
                    AggregateSpec(func=agg.func, column=column_name, distinct=agg.distinct)
                )
            else:
                resolved = note_column(item.expr)
                if resolved is not None and resolved[0] == anchor_name:
                    select_columns.append(resolved[1])
        for join in stmt.joins:
            note_column(join.left)
            note_column(join.right)
        for pred in stmt.where:
            resolved = resolve_column(self.schema, pred.column, anchor_name)
            if resolved is not None and resolved[0] in needed:
                needed[resolved[0]].add(resolved[1])
                predicates[resolved[0]].append(pred)

        group_by: list[str] = []
        for col in stmt.group_by:
            resolved = note_column(col)
            if resolved is not None and resolved[0] == anchor_name:
                group_by.append(resolved[1])
        order_by: list[str] = []
        for item in stmt.order_by:
            resolved = note_column(item.column)
            if resolved is not None and resolved[0] == anchor_name:
                order_by.append(resolved[1])

        anchor = self._build_access(anchor_name, needed[anchor_name], predicates[anchor_name])
        dims = tuple(
            self._build_access(name, needed[name], predicates[name])
            for name in table_names[1:]
        )

        group_cardinality = 1
        stats = self.statistics[anchor_name]
        for col in group_by:
            if col in stats.columns:
                group_cardinality *= max(1, stats.columns[col].ndv)
            group_cardinality = min(group_cardinality, anchor.row_count)

        return QueryProfile(
            sql=sql,
            anchor=anchor,
            dimensions=dims,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            aggregates=tuple(aggregates),
            select_columns=tuple(select_columns),
            limit=stmt.limit,
            group_cardinality=group_cardinality,
        )

    def _build_write(
        self,
        sql: str,
        stmt: InsertStatement | UpdateStatement | DeleteStatement,
    ) -> QueryProfile:
        """Annotate a DML statement.

        The anchor access describes the *locate* work — the columns and
        predicates needed to find the affected rows — while the write
        annotations (``written_columns``/``written_bytes``/
        ``affected_rows``) describe the modification the cost models
        charge maintenance for.
        """
        anchor_name = stmt.table
        if anchor_name not in self.schema.tables:
            raise SchemaError(f"statement references unknown table {anchor_name!r}")
        table = self.schema.table(anchor_name)

        written: list[str] = []
        if isinstance(stmt, InsertStatement):
            refs = list(stmt.columns)
        elif isinstance(stmt, UpdateStatement):
            refs = [a.column for a in stmt.assignments]
        else:
            refs = []
        for ref in refs:
            resolved = resolve_column(self.schema, ref, anchor_name)
            if resolved is not None and resolved[0] == anchor_name:
                written.append(resolved[1])

        needed: set[str] = set(written)
        preds: list[PredicateType] = []
        if isinstance(stmt, (UpdateStatement, DeleteStatement)):
            for pred in stmt.where:
                resolved = resolve_column(self.schema, pred.column, anchor_name)
                if resolved is not None and resolved[0] == anchor_name:
                    needed.add(resolved[1])
                    preds.append(pred)

        anchor = self._build_access(anchor_name, needed, preds)
        if isinstance(stmt, InsertStatement):
            kind = "insert"
            affected = float(len(stmt.rows))
            written_bytes = sum(
                table.column(c).type.byte_width for c in written
            )
        elif isinstance(stmt, UpdateStatement):
            kind = "update"
            affected = max(anchor.row_count * anchor.total_selectivity, 1.0)
            written_bytes = sum(
                table.column(c).type.byte_width for c in written
            )
        else:
            kind = "delete"
            affected = max(anchor.row_count * anchor.total_selectivity, 1.0)
            written_bytes = anchor.row_bytes

        return QueryProfile(
            sql=sql,
            anchor=anchor,
            dimensions=(),
            group_by=(),
            order_by=(),
            aggregates=(),
            select_columns=(),
            limit=None,
            group_cardinality=1,
            statement_kind=kind,
            written_columns=tuple(written),
            written_bytes=max(written_bytes, 1),
            affected_rows=affected,
        )

    def _build_access(
        self, table_name: str, columns: set[str], preds: list[PredicateType]
    ) -> TableAccess:
        table = self.schema.table(table_name)
        stats = self.statistics[table_name]
        eq: list[tuple[str, float]] = []
        rng: list[tuple[str, float]] = []
        for pred in preds:
            selectivity = stats.predicate_selectivity(pred)
            name = pred.column.name
            if isinstance(pred, ComparisonPredicate) and pred.op == "=":
                eq.append((name, selectivity))
            elif isinstance(pred, InPredicate):
                eq.append((name, selectivity))
            elif isinstance(pred, (ComparisonPredicate, BetweenPredicate)):
                rng.append((name, selectivity))
            else:
                rng.append((name, selectivity))
        needed_bytes = sum(
            table.column(c).type.byte_width for c in columns if table.has_column(c)
        )
        return TableAccess(
            table=table_name,
            row_count=stats.row_count,
            needed_columns=frozenset(columns),
            needed_bytes=max(needed_bytes, 1),
            row_bytes=max(table.row_bytes, 1),
            eq_selectivity=tuple(sorted(eq)),
            range_selectivity=tuple(sorted(rng)),
            total_selectivity=stats.conjunction_selectivity(tuple(preds)),
            predicate_count=len(preds),
        )
