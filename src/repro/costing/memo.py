"""Bounded memoization for the engine cost models' per-pair caches.

The three cost models memoize per-(query, structure) costs — columnar
projection costs, rowstore structure costs, samples costs — in plain
dicts.  Those memos are correct (keys are content: exact SQL text plus a
frozen structure), but unbounded: a months-long ``scheduled_replay`` or
monitor run prices an ever-growing set of (query, structure) pairs and
the dicts grow with it.  :class:`BoundedMemo` is a drop-in replacement
with the same access idiom (``in`` / ``[key]`` / ``[key] =``), an LRU
bound, and evictions counted in the process-wide metrics registry —
the same pattern as ``workload/distance.py``'s per-workload caches.

Cached values include ``None`` ("this structure cannot serve this
query"), so membership — not ``.get`` — is the read idiom.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs import get_metrics

#: Default bound on one model's per-(query, structure) memo.  Sized like
#: the service's query cache: large enough for a bench-scale candidate ×
#: query working set, small enough to cap a months-long replay.
DEFAULT_MEMO_ENTRIES = 262_144


class BoundedMemo:
    """LRU-bounded mapping with metrics-counted evictions.

    Supports exactly the idiom the cost models use::

        if key in memo:
            return memo[key]
        memo[key] = compute()

    ``in`` does not refresh recency (it is always followed by ``[key]``,
    which does).  Evictions increment ``counter_name`` in the
    process-wide metrics registry.  Instances are picklable, so cost
    models carrying one can still ship to process-backend workers.
    """

    def __init__(self, counter_name: str, max_entries: int = DEFAULT_MEMO_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.counter_name = counter_name
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __getitem__(self, key):
        value = self._entries[key]
        self._entries.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            get_metrics().counter(self.counter_name).inc()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
