"""`QuerySource` — the single source-of-queries abstraction.

Batch harnesses (``replay``/``scheduled_replay``) and the online daemon
(:mod:`repro.serve.daemon`) consume queries through the same protocol:

* :class:`TraceSource` wraps a fixed trace (the batch case, and the
  daemon's self-driving mode).  It is *replayable*: iterating it twice
  yields the same queries, which is what makes ``--resume``
  fast-forwarding possible.
* :class:`QueueSource` is the in-process live source — producers ``put``
  :class:`~repro.workload.query.WorkloadQuery` objects on an
  ``asyncio.Queue`` from the serving loop's thread.
* :class:`SocketSource` is the wire frontend — a newline-JSON
  (:mod:`repro.serve.protocol`) TCP or Unix-socket listener; any number
  of clients may connect and their streams merge in arrival order.

Live sources are **not** replayable: after a crash the daemon relies on
the producer re-sending the stream (the ``repro feed`` client always
sends from the top) and skips the first ``position`` queries itself.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import warnings
from abc import ABC, abstractmethod
from typing import AsyncIterator, Iterable

from repro.serve.protocol import SHUTDOWN_OP, ProtocolError, ServeControl, decode_line
from repro.workload.query import WorkloadQuery
from repro.workload.windows import split_windows
from repro.workload.workload import Workload


class QuerySource(ABC):
    """A stream of timestamp-ordered :class:`WorkloadQuery` objects."""

    #: Human-readable kind tag (used in events and run keys).
    name: str = "source"

    #: Replayable sources yield the identical stream on every call to
    #: :meth:`stream` — a resumed run can fast-forward through them.
    replayable: bool = False

    @abstractmethod
    def stream(self) -> AsyncIterator[WorkloadQuery]:
        """Asynchronously yield queries until the stream ends."""

    def windows(self, window_days: float | None = None) -> list[Workload]:
        """The full stream split into calendar windows (bounded sources only)."""
        raise TypeError(f"{type(self).__name__} is unbounded; it cannot be windowed")

    def backlog(self) -> int:
        """Queries received but not yet consumed (0 for pull sources)."""
        return 0

    def describe(self) -> str:
        """A stable one-line description (for events and run keys)."""
        return self.name


class TraceSource(QuerySource):
    """A fixed, finite, replayable trace of queries."""

    name = "trace"
    replayable = True

    def __init__(self, queries: Iterable[WorkloadQuery] | Workload, window_days: float | None = None):
        items = sorted(queries, key=lambda q: q.timestamp)
        self._queries: tuple[WorkloadQuery, ...] = tuple(items)
        self.window_days = window_days
        self._windows: tuple[Workload, ...] | None = None

    @classmethod
    def from_windows(cls, windows: Iterable[Workload], window_days: float | None = None) -> "TraceSource":
        """Wrap an already-split window list.

        The given windows are returned verbatim by :meth:`windows` (no
        re-split), so migrating a ``replay(windows, ...)`` call site to
        ``replay(TraceSource.from_windows(windows), ...)`` is exactly
        value-preserving — same window boundaries, same indices, even
        for window lists not produced by :func:`split_windows`.
        """
        windows = tuple(windows)
        source = cls(
            [query for window in windows for query in window],
            window_days=window_days,
        )
        source._windows = windows
        return source

    def queries(self) -> tuple[WorkloadQuery, ...]:
        return self._queries

    def __len__(self) -> int:
        return len(self._queries)

    def windows(self, window_days: float | None = None) -> list[Workload]:
        if self._windows is not None and (
            window_days is None or window_days == self.window_days
        ):
            return list(self._windows)
        days = window_days if window_days is not None else self.window_days
        if days is None:
            raise ValueError("window_days is required to window this trace")
        return split_windows(list(self._queries), days)

    async def stream(self) -> AsyncIterator[WorkloadQuery]:
        for query in self._queries:
            yield query

    def describe(self) -> str:
        span = self._queries[-1].timestamp - self._queries[0].timestamp if self._queries else 0.0
        return f"trace({len(self._queries)} queries, {span:.1f} days)"


class QueueSource(QuerySource):
    """An in-process live source fed through an ``asyncio.Queue``.

    Producers call :meth:`put` (from a coroutine) or
    :meth:`put_nowait` (from plain code on the loop thread), then
    :meth:`close` to end the stream.
    """

    name = "queue"
    replayable = False

    _CLOSE = object()

    def __init__(self, maxsize: int = 0):
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)

    async def put(self, query: WorkloadQuery) -> None:
        await self._queue.put(query)

    def put_nowait(self, query: WorkloadQuery) -> None:
        self._queue.put_nowait(query)

    def close(self) -> None:
        """End the stream once everything already queued is consumed."""
        self._queue.put_nowait(self._CLOSE)

    def backlog(self) -> int:
        return self._queue.qsize()

    async def stream(self) -> AsyncIterator[WorkloadQuery]:
        while True:
            item = await self._queue.get()
            if item is self._CLOSE:
                return
            yield item


class SocketSource(QuerySource):
    """A newline-JSON socket frontend (Unix-domain or TCP).

    The listener starts when :meth:`stream` is first iterated and stops
    when a client sends a ``shutdown`` control record.  Malformed lines
    are counted (``protocol_errors``) and skipped — a misbehaving client
    must not take the tuner down.  Multiple clients may connect; their
    queries merge in arrival order.
    """

    name = "socket"
    replayable = False

    def __init__(self, path: str | None = None, host: str | None = None, port: int | None = None):
        if (path is None) == (host is None):
            raise ValueError("give exactly one of path= (unix) or host=/port= (tcp)")
        if host is not None and port is None:
            raise ValueError("tcp sockets need a port (0 picks a free one)")
        self.path = path
        self.host = host
        self.port = port
        #: Resolved TCP port once listening (useful when ``port=0``).
        self.bound_port: int | None = None
        self.protocol_errors = 0
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._client_tasks: set[asyncio.Task] = set()

    def backlog(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def describe(self) -> str:
        if self.path is not None:
            return f"socket(unix:{self.path})"
        return f"socket(tcp:{self.host}:{self.bound_port or self.port})"

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    record = decode_line(line)
                except ProtocolError:
                    self.protocol_errors += 1
                    continue
                await self._queue.put(record)
        except asyncio.CancelledError:
            # Exit cleanly when reaped: 3.11's streams machinery calls
            # task.exception() on the handler task unconditionally, which
            # logs a cancelled task as an unhandled error.
            pass
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            # No wait_closed() here: the server sends nothing, and an
            # await inside this finally would re-raise cancellation at
            # loop teardown as an unretrieved task exception.
            writer.close()

    async def stream(self) -> AsyncIterator[WorkloadQuery]:
        self._queue = asyncio.Queue()
        if self.path is not None:
            # A SIGKILLed daemon leaves the socket file behind; a
            # resumed daemon must be able to bind the same address.
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.path)
            self._server = await asyncio.start_unix_server(self._handle_client, path=self.path)
        else:
            self._server = await asyncio.start_server(self._handle_client, host=self.host, port=self.port)
            self.bound_port = self._server.sockets[0].getsockname()[1]
        try:
            while True:
                item = await self._queue.get()
                if isinstance(item, ServeControl):
                    if item.op == SHUTDOWN_OP:
                        return
                    continue  # unknown control ops are ignored (forward compat)
                yield item
        finally:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            # Reap handler tasks for clients still connected, so the
            # event loop shuts down with no stray cancellations to log.
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(*self._client_tasks, return_exceptions=True)
            self._client_tasks.clear()
            self._server = None
            if self.path is not None:
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(self.path)


def resolve_source(spec: "QuerySource | str") -> QuerySource:
    """Build a source from a spec string (``unix:PATH`` / ``tcp:HOST:PORT``).

    :class:`QuerySource` instances pass through unchanged, so facade and
    CLI call sites can accept either form.
    """
    if isinstance(spec, QuerySource):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"source must be a QuerySource or spec string, got {type(spec).__name__}")
    if spec.startswith("unix:"):
        return SocketSource(path=spec[len("unix:"):])
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"tcp source spec must be tcp:HOST:PORT, got {spec!r}")
        return SocketSource(host=host or "127.0.0.1", port=int(port))
    raise ValueError(f"unknown source spec {spec!r} (expected unix:PATH or tcp:HOST:PORT)")


def as_windows(windows, window_days: float | None = None) -> list[Workload]:
    """Normalise a harness's windows argument to ``list[Workload]``.

    Accepts a bounded :class:`QuerySource` (the supported form) or a raw
    list of :class:`Workload` windows (deprecated since 1.3 — wrap fixed
    workloads in :class:`TraceSource` instead).
    """
    if isinstance(windows, QuerySource):
        return windows.windows(window_days)
    warnings.warn(
        "passing a raw list of Workload windows is deprecated; wrap the trace "
        "in repro.TraceSource (or any bounded QuerySource) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return list(windows)
