"""The daemon's wire protocol: newline-delimited JSON query records.

One record per line, UTF-8, ``\n``-terminated.  Two record shapes:

* **Query** — ``{"sql": "...", "timestamp": 12.5, "frequency": 1.0}``.
  ``timestamp`` (fractional days, the trace clock) and ``frequency``
  (occurrence weight) are optional and default to ``0.0`` / ``1.0``,
  matching :class:`repro.workload.query.WorkloadQuery`.
* **Control** — ``{"op": "shutdown"}``.  ``shutdown`` asks the daemon to
  stop accepting queries, drain any in-flight re-design, checkpoint, and
  exit cleanly.  Unknown ops are surfaced as :class:`ServeControl` and
  ignored by the daemon (forward compatibility).

A malformed line raises :class:`ProtocolError`; the socket frontend
counts and skips such lines rather than killing the stream — one
misbehaving client must not take the tuner down (docs/serving.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.workload.query import WorkloadQuery

#: The control op that ends the stream (and, with it, the daemon run).
SHUTDOWN_OP = "shutdown"


class ProtocolError(ValueError):
    """A wire line that is not a valid query or control record."""


@dataclass(frozen=True)
class ServeControl:
    """One control record (``{"op": ...}``)."""

    op: str


def encode_query(query: WorkloadQuery) -> str:
    """One wire line (without the trailing newline) for ``query``."""
    return json.dumps(
        {
            "sql": query.sql,
            "timestamp": query.timestamp,
            "frequency": query.frequency,
        },
        separators=(",", ":"),
    )


def encode_control(op: str = SHUTDOWN_OP) -> str:
    """One control line (without the trailing newline)."""
    return json.dumps({"op": op}, separators=(",", ":"))


def decode_line(line: str | bytes) -> WorkloadQuery | ServeControl:
    """Parse one wire line into a query or a control record."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"undecodable wire line: {line[:80]!r}") from error
    text = line.strip()
    if not text:
        raise ProtocolError("empty wire line")
    try:
        record = json.loads(text)
    except ValueError as error:
        raise ProtocolError(f"unparseable wire line: {text[:80]!r}") from error
    if not isinstance(record, dict):
        raise ProtocolError(f"wire record must be a JSON object, got {text[:80]!r}")
    if "op" in record:
        op = record["op"]
        if not isinstance(op, str):
            raise ProtocolError(f"control op must be a string, got {op!r}")
        return ServeControl(op=op)
    sql = record.get("sql")
    if not isinstance(sql, str) or not sql:
        raise ProtocolError(f"query record needs a non-empty 'sql': {text[:80]!r}")
    timestamp = record.get("timestamp", 0.0)
    frequency = record.get("frequency", 1.0)
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        raise ProtocolError(f"timestamp must be a number, got {timestamp!r}")
    if not isinstance(frequency, (int, float)) or isinstance(frequency, bool):
        raise ProtocolError(f"frequency must be a number, got {frequency!r}")
    try:
        return WorkloadQuery(
            sql=sql, timestamp=float(timestamp), frequency=float(frequency)
        )
    except ValueError as error:  # e.g. non-positive frequency
        raise ProtocolError(str(error)) from error
