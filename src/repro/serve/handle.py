"""The versioned active-design handle with epoch fencing.

The daemon prices every incoming query against the *currently deployed*
design while a background re-design may complete — and swap — at any
moment.  :class:`ActiveDesign` makes that safe without ever blocking
ingestion:

* every costing **pins** the handle first, getting back an immutable
  ``(epoch, design)`` pair and incrementing that epoch's in-flight
  count;
* :meth:`swap` installs the new design and bumps the epoch atomically,
  but does **not** invalidate pinned pairs — an in-flight costing
  finishes against the design it started with (no torn reads, no
  stale-priced queries *after* their pin);
* a retired epoch is only forgotten once its in-flight count drains to
  zero, and :meth:`wait_idle` lets a caller (tests, graceful shutdown)
  block until that happens.

The handle is thread-safe: swaps may come from backend callback threads
while pins come from the serving loop.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Iterator, NamedTuple


class DesignEpoch(NamedTuple):
    """An immutable (epoch, design) pair returned by pin/swap."""

    epoch: int
    design: object


class ActiveDesign:
    """Thread-safe versioned holder for the deployed design."""

    def __init__(self, design: object, epoch: int = 0):
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._current = DesignEpoch(epoch=epoch, design=design)
        self._in_flight: dict[int, int] = {}
        #: Total number of swaps performed over the handle's lifetime.
        self.swaps = 0

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._current.epoch

    @property
    def design(self) -> object:
        with self._lock:
            return self._current.design

    def snapshot(self) -> DesignEpoch:
        """The current (epoch, design) pair, without pinning."""
        with self._lock:
            return self._current

    @contextmanager
    def pin(self) -> Iterator[DesignEpoch]:
        """Pin the current pair for the duration of one costing."""
        with self._lock:
            pinned = self._current
            self._in_flight[pinned.epoch] = self._in_flight.get(pinned.epoch, 0) + 1
        try:
            yield pinned
        finally:
            with self._lock:
                remaining = self._in_flight[pinned.epoch] - 1
                if remaining:
                    self._in_flight[pinned.epoch] = remaining
                else:
                    del self._in_flight[pinned.epoch]
                    self._idle.notify_all()

    def swap(self, design: object) -> tuple[DesignEpoch, DesignEpoch]:
        """Atomically install ``design`` as a new epoch.

        Returns ``(retired, installed)``.  Costings pinned to the
        retired epoch keep running against the retired design.
        """
        with self._lock:
            retired = self._current
            self._current = DesignEpoch(epoch=retired.epoch + 1, design=design)
            self.swaps += 1
            return retired, self._current

    def restore(self, design: object, epoch: int) -> None:
        """Reset the handle to a checkpointed (design, epoch) pair."""
        with self._lock:
            if self._in_flight:
                raise RuntimeError("cannot restore an ActiveDesign with pinned costings")
            self._current = DesignEpoch(epoch=epoch, design=design)

    def in_flight(self, epoch: int | None = None) -> int:
        """Pinned costings for one epoch (or for all epochs)."""
        with self._lock:
            if epoch is not None:
                return self._in_flight.get(epoch, 0)
            return sum(self._in_flight.values())

    def wait_idle(self, epoch: int, timeout: float | None = None) -> bool:
        """Block until a retired epoch has no pinned costings left."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._in_flight.get(epoch, 0) == 0, timeout=timeout
            )


def design_digest(adapter, design) -> str:
    """A short stable digest of a design's structures (for resume diffs).

    Hashes the sorted structure DDL plus the priced footprint, so two
    runs landing on the same design print the same digest even across
    processes with different hash randomization.
    """
    digest = hashlib.blake2b(digest_size=8)
    for sql in sorted(str(structure.to_sql()) for structure in adapter.structures(design)):
        digest.update(sql.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(repr(adapter.design_price(design)).encode("utf-8"))
    return digest.hexdigest()
