"""Design-as-a-service: the online tuning daemon (docs/serving.md).

* :mod:`repro.serve.sources` — the `QuerySource` abstraction shared by
  batch replays and the daemon (`TraceSource`, `QueueSource`,
  `SocketSource`).
* :mod:`repro.serve.protocol` — the newline-JSON wire protocol.
* :mod:`repro.serve.handle` — the epoch-fenced `ActiveDesign` handle
  behind atomic hot swaps.
* :mod:`repro.serve.config` — `ServeConfig`, the streaming half of the
  configuration split (`RunConfig` stays the batch core).
* :mod:`repro.serve.daemon` — the crash-restartable `ServeDaemon` loop.

Daemon symbols are exposed lazily: the harness imports this package's
sources at interpreter start (``replay`` accepts a `QuerySource`), while
the daemon itself imports the harness — deferring the daemon import
breaks that cycle.
"""

from repro.serve.config import ServeConfig
from repro.serve.handle import ActiveDesign, DesignEpoch, design_digest
from repro.serve.protocol import (
    SHUTDOWN_OP,
    ProtocolError,
    ServeControl,
    decode_line,
    encode_control,
    encode_query,
)
from repro.serve.sources import (
    QuerySource,
    QueueSource,
    SocketSource,
    TraceSource,
    as_windows,
    resolve_source,
)

_DAEMON_SYMBOLS = ("ServeDaemon", "ServeOutcome", "PricedQuery", "CHECKPOINT_KIND")


def __getattr__(name: str):
    if name in _DAEMON_SYMBOLS:
        from repro.serve import daemon

        return getattr(daemon, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ActiveDesign",
    "DesignEpoch",
    "ProtocolError",
    "PricedQuery",
    "QueueSource",
    "QuerySource",
    "SHUTDOWN_OP",
    "ServeConfig",
    "ServeControl",
    "ServeDaemon",
    "ServeOutcome",
    "SocketSource",
    "TraceSource",
    "as_windows",
    "decode_line",
    "design_digest",
    "encode_control",
    "encode_query",
    "resolve_source",
]
