"""`ServeConfig` — the streaming half of the configuration split.

:class:`repro.api.RunConfig` stays the *batch core*: workload, engine,
scale, designer search effort, backend, observability.  Everything that
only exists once queries arrive continuously lives here — where the
stream comes from, how long the sliding window is, which policy decides
to re-design, and how often the daemon swaps and checkpoints.  A serving
session is always the pair ``(RunConfig, ServeConfig)``; there is no
second configuration path (`docs/serving.md`).

Fields defaulting to ``None`` inherit the session's ``RunConfig`` value
(``window_days``, the checkpoint trio) or a derived default
(``threshold`` → the context's default Γ for the workload).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path

from repro.serve.sources import QuerySource

POLICIES = ("drift", "periodic")
SWAP_MODES = ("async", "boundary")


@dataclass(frozen=True)
class ServeConfig:
    """Declarative configuration for one online-tuning (serve) run.

    Parameters
    ----------
    source:
        Where queries come from: a :class:`QuerySource`, a spec string
        (``unix:PATH`` / ``tcp:HOST:PORT``), or ``None`` to stream the
        session's own generated trace (self-driving mode — the CI smoke
        and the examples use this).
    window_days:
        Sliding-window length for the online `WorkloadMonitor`
        (``None`` → the run config's ``window_days``).
    designer:
        Registered designer driving re-designs (``CliffGuard`` by
        default).  Designers that learn online
        (:class:`~repro.designers.bandit.BanditDesigner`) run their
        re-designs in-process at the window boundary and receive
        observed-cost feedback at every boundary; their learner state
        rides in the daemon's checkpoints.
    policy:
        ``"drift"`` re-designs when the window's δ from the design-time
        window exceeds ``threshold``; ``"periodic"`` re-designs every
        ``every`` windows.
    threshold:
        Drift threshold for the ``"drift"`` policy (``None`` → the
        context's default Γ for the workload).
    every:
        Cadence for the ``"periodic"`` policy, in windows.
    min_window_queries:
        A re-design is only considered once the sliding window holds at
        least this many queries (cold-start guard).
    swap_mode:
        ``"async"`` swaps as soon as the background re-design lands
        (lowest staleness, timing-dependent epochs); ``"boundary"``
        defers the swap to the next window boundary (deterministic —
        the mode the kill-resume guarantees are stated for).
    redesign_timeout:
        Wall-clock seconds after which a still-running background
        re-design is cancelled and logged as degraded (``None`` = wait
        forever).
    max_queries:
        Stop after ingesting this many queries (``None`` = until the
        source ends).
    drain:
        At end-of-stream, wait for an in-flight re-design and perform
        the final swap before stopping (otherwise cancel it).
    record_queries:
        Keep the per-query `(position, epoch, cost)` log in the outcome
        and the checkpoint.  The atomicity tests and the resume
        bit-identity diffs need it; long-lived daemons can turn it off.
    history_limit:
        How many recent queries to retain as the perturbation pool for
        background re-designs (0 disables pool seeding).
    monitor_log_limit:
        Retention bound on the drift monitor's in-memory reading/alarm
        logs (and hence on their share of every checkpoint).  Lifetime
        totals are tracked separately, so the outcome counts are exact
        regardless of the bound.  ``None`` keeps every entry (the
        pre-bound behavior — checkpoints grow with stream length).
    checkpoint_path / checkpoint_every / resume:
        Crash-safety knobs; each ``None`` inherits the run config's
        value.  ``checkpoint_every`` counts *window boundaries* between
        durable snapshots (swaps always checkpoint).
    """

    source: QuerySource | str | None = None
    window_days: float | None = None
    designer: str = "CliffGuard"
    policy: str = "drift"
    threshold: float | None = None
    every: int = 1
    min_window_queries: int = 8
    swap_mode: str = "async"
    redesign_timeout: float | None = None
    max_queries: int | None = None
    drain: bool = True
    record_queries: bool = True
    history_limit: int = 4000
    monitor_log_limit: int | None = 512
    checkpoint_path: str | Path | None = None
    checkpoint_every: int | None = None
    resume: bool | None = None

    def __post_init__(self):
        if not isinstance(self.designer, str) or not self.designer:
            raise ValueError(
                f"designer must be a registered designer name, got {self.designer!r}"
            )
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.swap_mode not in SWAP_MODES:
            raise ValueError(f"swap_mode must be one of {SWAP_MODES}, got {self.swap_mode!r}")
        if self.window_days is not None and self.window_days <= 0:
            raise ValueError("window_days must be positive")
        if self.threshold is not None and self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.min_window_queries < 1:
            raise ValueError("min_window_queries must be >= 1")
        if self.redesign_timeout is not None and self.redesign_timeout <= 0:
            raise ValueError("redesign_timeout must be positive")
        if self.max_queries is not None and self.max_queries < 1:
            raise ValueError("max_queries must be >= 1")
        if self.history_limit < 0:
            raise ValueError("history_limit must be non-negative")
        if self.monitor_log_limit is not None and self.monitor_log_limit < 1:
            raise ValueError("monitor_log_limit must be positive (or None)")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.source is not None and not isinstance(self.source, (QuerySource, str)):
            raise TypeError(
                "source must be a QuerySource, a spec string, or None, "
                f"got {type(self.source).__name__}"
            )

    def with_overrides(self, **overrides) -> "ServeConfig":
        """A copy with ``overrides`` applied (validation re-runs)."""
        return dataclasses.replace(self, **overrides)

    def source_label(self) -> str:
        """A stable label for events and run keys."""
        if self.source is None:
            return "trace"
        if isinstance(self.source, str):
            return self.source
        return self.source.describe()
