"""The crash-restartable online tuning daemon.

One asyncio loop ingests a live query stream (any
:class:`~repro.serve.sources.QuerySource`), prices every query against
the currently deployed design through an epoch-fenced
:class:`~repro.serve.handle.ActiveDesign` handle, maintains a sliding
:class:`~repro.workload.monitor.WorkloadMonitor` window, and evaluates a
:class:`~repro.harness.scheduler.RedesignPolicy` at every window
boundary.  When the policy fires, a CliffGuard re-design launches **in
the background** on the session's execution backend
(:meth:`~repro.parallel.backends.ExecutionBackend.submit`) — ingestion
never stalls — and the finished design is hot-swapped in atomically.

Guarantees (docs/serving.md):

* **Zero dropped queries** — every ingested query is priced and
  recorded exactly once.
* **Per-query epoch consistency** — each costing pins one
  ``(epoch, design)`` pair for its whole duration; a swap mid-costing
  retires the old epoch but never invalidates the pin.
* **Graceful degradation** — a crashed or slow background re-design
  leaves the old design serving; the failure is logged
  (``serve.degraded``) and the policy retries at a later boundary.
* **Crash-restartability** — the daemon checkpoints through
  :mod:`repro.state` at every window boundary and swap; a SIGKILLed
  daemon resumed with ``--resume`` replays to the identical stream
  position, window contents, and active design (deterministic in
  ``swap_mode="boundary"``; async swaps are wall-clock-timed by
  design).

The per-query hot path is synchronous and deterministic; asyncio enters
only at the stream edge, which is what keeps the kill-resume contract
testable.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import astuple, dataclass, field

from repro.designers import registry
from repro.harness.scheduler import RedesignPolicy
from repro.obs import get_metrics, tracer
from repro.parallel.backends import ExecutionBackend
from repro.parallel.jobs import BackgroundJob
from repro.serve.config import ServeConfig
from repro.serve.handle import ActiveDesign, design_digest
from repro.serve.sources import QuerySource
from repro.state import (
    RunCheckpointer,
    costing_state,
    designer_state,
    restore_costing,
    restore_designer,
    run_key,
)
from repro.workload.monitor import WorkloadMonitor
from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload

#: Checkpoint kind for daemon snapshots (docs/state.md kinds table).
CHECKPOINT_KIND = "serve"

#: Per-re-design seed stride: each background re-design gets its own
#: deterministic sampler stream (seed + stride * redesign_index), so a
#: resumed daemon relaunching re-design *k* draws identical neighbors.
REDESIGN_SEED_STRIDE = 9973


@dataclass(frozen=True)
class PricedQuery:
    """One ingested query's pricing record."""

    position: int
    timestamp: float
    epoch: int
    cost_ms: float | None


@dataclass
class PendingRedesign:
    """One background re-design in flight."""

    index: int
    window: Workload
    task: tuple
    launch_position: int
    job: BackgroundJob | None = None
    #: Inline (learner) re-designs finish at launch; their
    #: ``(design, seconds)`` result rides in the checkpoint so a resumed
    #: daemon installs the stored design instead of re-running the
    #: learner (which would double-advance its model and RNG stream).
    result: tuple | None = None


@dataclass
class ServeOutcome:
    """Summary of one daemon run (returned by ``RobustDesignSession.serve``)."""

    workload: str
    engine: str
    position: int = 0
    windows: int = 0
    triggers: int = 0
    redesigns_launched: int = 0
    redesigns_failed: int = 0
    swaps: int = 0
    final_epoch: int = 0
    final_design: object = None
    final_design_digest: str = ""
    structure_count: int = 0
    design_price_bytes: int = 0
    drift_readings: int = 0
    drift_alarms: int = 0
    priced: list[PricedQuery] | None = None
    resumed: bool = False
    wall_seconds: float = 0.0

    @property
    def dropped(self) -> int:
        """Ingested-but-unpriced queries (the invariant says zero)."""
        if self.priced is None:
            return 0
        return self.position - len(self.priced)


#: Warm (context, adapter, nominal) stack reused across the background
#: re-designs of one daemon (single entry — a daemon prices one
#: (scale, engine) pair; with the process backend each worker keeps its
#: own).  Reuse keeps the costing service's arena and candidate-matrix
#: caches hot between window re-designs; the warm path is bit-identical
#: to a cold stack (docs/cost_model.md, "Design-stream reuse"), so
#: resume determinism is unaffected.
_STACK_MEMO: dict = {}


def _redesign_stack(scale, engine):
    # Local import: daemon.py is imported by the api facade while the
    # harness package is still initialising.
    from repro.harness.experiments import ExperimentContext, _engine_stack

    key = (astuple(scale), engine)
    hit = _STACK_MEMO.get(key)
    if hit is None:
        context = ExperimentContext(scale)
        adapter, nominal = _engine_stack(context, engine)
        _STACK_MEMO.clear()
        _STACK_MEMO[key] = hit = (context, adapter, nominal)
    return hit


def _redesign_task(task):
    """One background CliffGuard re-design (module-level: process task).

    Rebuilds (or reuses) the experiment context from the scale —
    deterministic given the scale's seed and the re-design index, so
    relaunching the same task after a crash lands on the bit-identical
    design.
    """
    from repro.workload.sampler import NeighborhoodSampler

    scale, engine, designer_name, gamma, redesign_index, window_queries, pool = task
    started = time.perf_counter()
    context, adapter, nominal = _redesign_stack(scale, engine)

    def make_sampler():
        return NeighborhoodSampler(
            context.distance,
            context.schema,
            seed=scale.seed + REDESIGN_SEED_STRIDE * (redesign_index + 1),
        )

    designer, sampler = registry.get(
        designer_name,
        adapter,
        nominal,
        gamma,
        make_sampler=make_sampler,
        n_samples=scale.n_samples,
        max_iterations=scale.iterations,
    )
    if sampler is not None and pool:
        sampler.set_pool(list(pool))
    design = designer.design(Workload(list(window_queries)))
    return design, time.perf_counter() - started


class ServeDaemon:
    """The online tuning loop.  Built by the api facade; see
    :meth:`repro.api.RobustDesignSession.serve`."""

    def __init__(
        self,
        *,
        scale,
        workload: str,
        engine: str,
        gamma: float,
        designer: str,
        adapter,
        source: QuerySource,
        policy: RedesignPolicy,
        window_days: float,
        serve: ServeConfig,
        backend: ExecutionBackend,
        distance,
        threshold: float,
        checkpointer: RunCheckpointer | None = None,
        learner=None,
    ):
        self.scale = scale
        self.workload = workload
        self.engine = engine
        self.gamma = gamma
        self.designer_name = designer
        self.adapter = adapter
        self.source = source
        self.policy = policy
        self.window_days = window_days
        self.serve = serve
        self.backend = backend
        self.checkpointer = checkpointer
        #: An online-learning designer instance (``learns_online``), or
        #: ``None`` for classic background re-designs by name.  The
        #: learner lives in the daemon process: it observes every window
        #: boundary and designs inline there, so feedback accumulated
        #: between launch and swap is never lost to a worker copy.
        self.learner = learner
        self.monitor = WorkloadMonitor(
            distance,
            threshold,
            window_days=window_days,
            measure_every_days=max(window_days / 4.0, 1e-9),
            refractory_days=window_days,
            max_log_entries=serve.monitor_log_limit,
        )
        self.active = ActiveDesign(adapter.empty_design(), epoch=0)
        # -- mutable run state (everything below is checkpointed) --------------
        self.position = 0
        self.window_anchor: float | None = None
        self.window_index = 0
        self.windows_seen = 0
        self.triggers = 0
        self.redesigns_launched = 0
        self.redesigns_failed = 0
        self.design_window: Workload | None = None
        self.pending: PendingRedesign | None = None
        self.history: list[WorkloadQuery] = []
        self.priced: list[PricedQuery] = []
        self.swaps = 0
        self.resumed = False
        self._swap_dirty = False
        self._state_key = run_key(
            CHECKPOINT_KIND,
            astuple(scale),
            workload,
            engine,
            gamma,
            designer,
            serve.policy,
            threshold,
            serve.every,
            window_days,
            serve.min_window_queries,
            serve.swap_mode,
            serve.max_queries,
            serve.history_limit,
            serve.monitor_log_limit,
        )

    # -- checkpointing -----------------------------------------------------------

    def _payload(self) -> dict:
        snapshot = self.active.snapshot()
        return {
            "position": self.position,
            "window_anchor": self.window_anchor,
            "window_index": self.window_index,
            "windows_seen": self.windows_seen,
            "triggers": self.triggers,
            "redesigns_launched": self.redesigns_launched,
            "redesigns_failed": self.redesigns_failed,
            "swaps": self.swaps,
            "epoch": snapshot.epoch,
            "design": snapshot.design,
            "design_window": self.design_window,
            "policy": self.policy.state(),
            "monitor": self.monitor.state(),
            "history": list(self.history),
            "priced": list(self.priced) if self.serve.record_queries else None,
            "pending": None
            if self.pending is None
            else {
                "index": self.pending.index,
                "window": self.pending.window,
                "task": self.pending.task,
                "launch_position": self.pending.launch_position,
                "result": self.pending.result,
            },
            "learner": designer_state(self.learner)
            if self.learner is not None
            else None,
            "costing": costing_state(self.adapter),
        }

    def _checkpoint(self, boundary: str, force: bool = False) -> None:
        if self.checkpointer is None:
            return
        if force:
            self.checkpointer.save(CHECKPOINT_KIND, self._state_key, self._payload())
        else:
            self.checkpointer.step(CHECKPOINT_KIND, self._state_key, self._payload)

    def _restore(self) -> bool:
        if self.checkpointer is None:
            return False
        state = self.checkpointer.load(CHECKPOINT_KIND, self._state_key)
        if state is None:
            return False
        self.position = state["position"]
        self.window_anchor = state["window_anchor"]
        self.window_index = state["window_index"]
        self.windows_seen = state["windows_seen"]
        self.triggers = state["triggers"]
        self.redesigns_launched = state["redesigns_launched"]
        self.redesigns_failed = state["redesigns_failed"]
        self.swaps = state["swaps"]
        self.active.restore(state["design"], state["epoch"])
        self.active.swaps = state["swaps"]
        self.design_window = state["design_window"]
        self.policy.restore(state["policy"])
        self.monitor.restore(state["monitor"])
        self.history = list(state["history"])
        self.priced = list(state["priced"]) if state["priced"] is not None else []
        restore_costing(self.adapter, state["costing"])
        if self.learner is not None:
            restore_designer(self.learner, state.get("learner"))
        pending = state["pending"]
        if pending is not None:
            self.pending = PendingRedesign(
                index=pending["index"],
                window=pending["window"],
                task=pending["task"],
                launch_position=pending["launch_position"],
                result=pending.get("result"),
            )
            if self.pending.result is not None:
                # An inline learner re-design: the design was computed
                # before the snapshot and the learner state already
                # reflects it — install the stored result rather than
                # re-running the learner.
                self.pending.job = BackgroundJob.completed(self.pending.result)
            else:
                # The in-flight job died with the process; relaunch it.
                # The task tuple fully determines the design, so the
                # resumed run swaps in the identical result.
                self.pending.job = self.backend.submit(
                    _redesign_task, self.pending.task
                )
        self.resumed = True
        return True

    # -- hot path ----------------------------------------------------------------

    def _price(self, query: WorkloadQuery) -> PricedQuery:
        with self.active.pin() as (epoch, design):
            try:
                profile = self.adapter.profile(query.sql)
            except ValueError:
                cost = None
            else:
                cost = self.adapter.query_cost(profile, design)
                if profile.is_write:
                    get_metrics().counter("writes.ingested").inc()
        return PricedQuery(
            position=self.position,
            timestamp=query.timestamp,
            epoch=epoch,
            cost_ms=cost,
        )

    def _ingest(self, query: WorkloadQuery) -> None:
        if self.window_anchor is None:
            self.window_anchor = query.timestamp
        index = int((query.timestamp - self.window_anchor) // self.window_days)
        while index > self.window_index:
            # Increment first: every checkpoint written inside the
            # boundary (window step, forced swap save) must snapshot the
            # post-boundary index, or a resumed run re-fires the boundary.
            completed = self.window_index
            self.window_index += 1
            self._boundary(completed)
        record = self._price(query)
        self.position += 1
        self.monitor.observe(query)
        if self.serve.history_limit:
            self.history.append(query)
            if len(self.history) > self.serve.history_limit:
                del self.history[: len(self.history) - self.serve.history_limit]
        if self.serve.record_queries:
            self.priced.append(record)
        metrics = get_metrics()
        metrics.counter("serve.ingested").inc()
        metrics.gauge("serve.epoch").set(record.epoch)

    # -- boundary machinery --------------------------------------------------------

    def _boundary(self, index: int) -> None:
        """A window boundary was crossed; ``index`` is the completed window."""
        self.windows_seen += 1
        window = self.monitor.current_window
        t = tracer()
        metrics = get_metrics()
        metrics.counter("serve.windows").inc()
        metrics.gauge("serve.window_fill").set(len(window))
        metrics.gauge("serve.backlog").set(self.source.backlog())
        last_reading = self.monitor.readings[-1].distance if self.monitor.readings else None
        if t.enabled:
            t.emit(
                "serve.window",
                index=index,
                position=self.position,
                fill=len(window),
                epoch=self.active.epoch,
                distance=last_reading,
                backlog=self.source.backlog(),
            )
        if self.learner is not None and len(window):
            # Feedback before any swap: the completed window was served
            # by the *current* active design, so its observed costs must
            # credit that design's structures (docs/designers.md).
            self._observe_window(window)
        if self.pending is not None and self.serve.swap_mode == "boundary":
            # Deterministic barrier: the swap decision depends only on
            # the boundary index, never on wall-clock timing.
            self.pending.job.wait()
            self._finish_pending()
        self._poll_pending()
        if self.pending is None and len(window) >= self.serve.min_window_queries:
            if self.policy.should_redesign(index, self.design_window, window):
                self.triggers += 1
                metrics.counter("serve.triggers").inc()
                if t.enabled:
                    t.emit(
                        "serve.trigger",
                        index=index,
                        position=self.position,
                        policy=self.serve.policy,
                        distance=last_reading,
                    )
                self._launch(index, window)
        force = self._swap_dirty
        self._swap_dirty = False
        self._checkpoint("window", force=force)

    def _observe_window(self, window: Workload) -> None:
        """Feed one completed window's observed costs to the learner."""
        with self.active.pin() as (_epoch, design):
            observed: dict[str, float] = {}
            for query in window.collapsed():
                try:
                    profile = self.adapter.profile(query.sql)
                except ValueError:
                    continue
                observed[query.sql] = self.adapter.query_cost(profile, design)
            self.learner.observe(window, design, observed)
        get_metrics().counter("serve.learner_observations").inc()

    def _launch(self, index: int, window: Workload) -> None:
        task = (
            self.scale,
            self.engine,
            self.designer_name,
            self.gamma,
            self.redesigns_launched,
            tuple(window),
            tuple(self.history),
        )
        self.pending = PendingRedesign(
            index=self.redesigns_launched,
            window=window,
            task=task,
            launch_position=self.position,
        )
        self.redesigns_launched += 1
        get_metrics().counter("serve.redesigns").inc()
        t = tracer()
        if t.enabled:
            t.emit(
                "serve.redesign",
                index=self.pending.index,
                window=index,
                position=self.position,
                window_queries=len(window),
                backend="inline" if self.learner is not None else self.backend.name,
            )
        if self.learner is not None:
            # Online learners design in-process: shipping the model to a
            # worker and importing it back would lose every observation
            # made between launch and swap.  The design is cheap (one
            # candidate evaluation — that is the point of the bandit),
            # and the finished result still flows through the pending/
            # swap machinery so both swap modes behave identically.
            started = time.perf_counter()
            design = self.learner.design(window)
            self.pending.result = (design, time.perf_counter() - started)
            self.pending.job = BackgroundJob.completed(self.pending.result)
        else:
            self.pending.job = self.backend.submit(_redesign_task, task)

    def _poll_pending(self) -> None:
        """Non-blocking progress check on the in-flight re-design."""
        if self.pending is None:
            return
        job = self.pending.job
        if not job.done():
            timeout = self.serve.redesign_timeout
            if timeout is not None and time.perf_counter() - job.started > timeout:
                job.cancel()
                self._degrade(TimeoutError(f"re-design exceeded {timeout}s"))
            return
        if self.serve.swap_mode == "async":
            self._finish_pending()

    def _finish_pending(self) -> None:
        pending = self.pending
        error = pending.job.exception()
        if error is not None:
            self._degrade(error)
            return
        design, design_seconds = pending.job.result()
        retired, installed = self.active.swap(design)
        self.swaps += 1
        self.design_window = pending.window
        self.monitor.rebase(pending.window)
        stale = self.position - pending.launch_position
        self.pending = None
        metrics = get_metrics()
        metrics.counter("serve.swaps").inc()
        metrics.histogram("serve.redesign_seconds").observe(design_seconds)
        metrics.histogram("serve.swap_stale_queries").observe(stale)
        metrics.gauge("serve.epoch").set(installed.epoch)
        t = tracer()
        if t.enabled:
            t.emit(
                "serve.swap",
                redesign=pending.index,
                epoch=installed.epoch,
                retired_epoch=retired.epoch,
                position=self.position,
                stale_queries=stale,
                design_seconds=design_seconds,
                structures=len(self.adapter.structures(installed.design)),
                price_bytes=self.adapter.design_price(installed.design),
            )
        # A swap moves the design the whole stream is priced against, so
        # it must be durable — but the snapshot may only be written at a
        # resumable point (end of boundary, or between two queries), not
        # here: a _boundary caller still owes its trigger check, and a
        # snapshot taken now would skip it on resume.  Flag instead; the
        # control points below force a save.
        self._swap_dirty = True

    def _degrade(self, error: BaseException) -> None:
        pending = self.pending
        self.pending = None
        self.redesigns_failed += 1
        get_metrics().counter("serve.redesign_failures").inc()
        t = tracer()
        if t.enabled:
            t.emit(
                "serve.degraded",
                redesign=pending.index,
                position=self.position,
                epoch=self.active.epoch,
                error=repr(error),
            )

    # -- the loop ------------------------------------------------------------------

    async def run_async(self) -> ServeOutcome:
        started = time.perf_counter()
        resumed = self._restore()
        t = tracer()
        if t.enabled:
            t.emit(
                "serve.start",
                workload=self.workload,
                engine=self.engine,
                source=self.source.describe(),
                policy=self.serve.policy,
                swap_mode=self.serve.swap_mode,
                window_days=self.window_days,
                position=self.position,
                resumed=resumed,
            )
        # Fast-forward a resumed run: replayable sources re-yield the
        # stream from the top; live producers re-send it (repro feed
        # always does).  Either way the daemon skips what it already
        # processed — monitor, policy, and costing state came from the
        # snapshot.
        skip = self.position
        stream = self.source.stream()
        try:
            async for query in stream:
                if skip > 0:
                    skip -= 1
                    continue
                self._poll_pending()
                if self._swap_dirty:
                    # Async-mode swap between two queries: durable here,
                    # before the next query is priced against it.
                    self._swap_dirty = False
                    self._checkpoint("swap", force=True)
                self._ingest(query)
                if (
                    self.serve.max_queries is not None
                    and self.position >= self.serve.max_queries
                ):
                    break
        finally:
            await stream.aclose()
        if self.pending is not None:
            if self.serve.drain:
                self.pending.job.wait()
                self._finish_pending()
            else:
                self.pending.job.cancel()
                self._degrade(
                    asyncio.CancelledError("daemon stopped with re-design in flight")
                )
        self._checkpoint("stop", force=True)
        outcome = self._outcome(resumed, time.perf_counter() - started)
        if t.enabled:
            t.emit(
                "serve.stop",
                position=outcome.position,
                windows=outcome.windows,
                triggers=outcome.triggers,
                swaps=outcome.swaps,
                failures=outcome.redesigns_failed,
                epoch=outcome.final_epoch,
                digest=outcome.final_design_digest,
            )
        return outcome

    def run(self) -> ServeOutcome:
        """Drive :meth:`run_async` to completion on a fresh event loop."""
        return asyncio.run(self.run_async())

    def _outcome(self, resumed: bool, wall: float) -> ServeOutcome:
        snapshot = self.active.snapshot()
        return ServeOutcome(
            workload=self.workload,
            engine=self.engine,
            position=self.position,
            windows=self.windows_seen,
            triggers=self.triggers,
            redesigns_launched=self.redesigns_launched,
            redesigns_failed=self.redesigns_failed,
            swaps=self.swaps,
            final_epoch=snapshot.epoch,
            final_design=snapshot.design,
            final_design_digest=design_digest(self.adapter, snapshot.design),
            structure_count=len(self.adapter.structures(snapshot.design)),
            design_price_bytes=self.adapter.design_price(snapshot.design),
            drift_readings=self.monitor.readings_total,
            drift_alarms=self.monitor.alarms_total,
            priced=list(self.priced) if self.serve.record_queries else None,
            resumed=resumed,
            wall_seconds=wall,
        )
