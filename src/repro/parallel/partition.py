"""Deterministic work partitioning and seed derivation.

Bit-identical results at any worker count require two invariants:

* **Chunking depends only on the task list**, never on the backend or the
  number of workers that happen to be free: :func:`contiguous_chunks`
  splits a task list into ordered, contiguous, balanced chunks, so
  reassembling chunk results in chunk order reproduces the serial
  iteration order exactly (including LRU insertion order downstream).
* **Randomness attaches to chunks, not workers**: :func:`derive_seed`
  derives a child seed from the run seed and the chunk's position, so a
  task that needs an RNG draws the same stream whether it runs in the
  parent, a thread, or a subprocess.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence


def contiguous_chunks(items: Sequence, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` ordered contiguous chunks.

    Chunk sizes differ by at most one and concatenating the chunks yields
    the original sequence — the partition is a pure function of
    ``(len(items), n_chunks)``.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be at least 1")
    items = list(items)
    if not items:
        return []
    n_chunks = min(n_chunks, len(items))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def chunk_count(n_items: int, jobs: int, tasks_per_job: int = 4) -> int:
    """How many chunks to cut ``n_items`` into for ``jobs`` workers.

    Oversplitting (a few chunks per worker) keeps the pool busy when
    chunks finish at different speeds; undersplitting would serialize the
    tail.  The count is deterministic — it depends on ``jobs`` but not on
    runtime load — which is safe because result *values* never depend on
    the partition, only wall-time does.
    """
    if n_items <= 0:
        return 0
    if jobs <= 1:
        return 1
    return max(1, min(n_items, jobs * tasks_per_job))


def derive_seed(base_seed: int, *indices: int) -> int:
    """A stable 63-bit child seed for one chunk of a seeded run.

    Hash-derived (blake2b) rather than ``base_seed + index`` so that
    nearby run seeds do not produce overlapping child streams.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base_seed)).encode("ascii"))
    for index in indices:
        h.update(b"\x00")
        h.update(str(int(index)).encode("ascii"))
    return int.from_bytes(h.digest(), "big") & (2**63 - 1)
