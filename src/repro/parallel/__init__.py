"""Parallel execution backends for the embarrassingly parallel loops.

CliffGuard's inner loop costs every sampled Γ-neighbor independently
(paper Algorithm 2), and the harness repeats that loop across Γ values,
designers, and window transitions.  This package provides one
:class:`~repro.parallel.backends.ExecutionBackend` abstraction — serial,
thread-pool, and process-pool implementations selected by a single
``backend``/``jobs`` knob — plus deterministic work partitioning so that
every backend produces bit-identical results at any worker count.

The three hot fan-out sites routed through it:

* :meth:`repro.costing.service.CostEvaluationService.evaluate_neighborhood`
  (per-neighbor what-if costing),
* :func:`repro.harness.experiments.run_gamma_sweep` (per-Γ replays),
* :func:`repro.harness.experiments.run_designer_comparison` and
  :func:`repro.harness.experiments.run_schedule_comparison`
  (per-designer replays).

The online daemon (:mod:`repro.serve`) uses the fourth entry point,
:meth:`~repro.parallel.backends.ExecutionBackend.submit`, to launch one
background re-design at a time and poll its
:class:`~repro.parallel.jobs.BackgroundJob` handle while ingestion
continues.
"""

from repro.parallel.backends import (
    BackendStats,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_from_env,
    resolve_backend,
)
from repro.parallel.jobs import BackgroundJob
from repro.parallel.partition import chunk_count, contiguous_chunks, derive_seed
from repro.parallel.shm import (
    ShmBatchHandle,
    attach_batch,
    leaked_segments,
    share_batch,
)

__all__ = [
    "BackendStats",
    "BackgroundJob",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ShmBatchHandle",
    "ThreadBackend",
    "attach_batch",
    "backend_from_env",
    "chunk_count",
    "contiguous_chunks",
    "derive_seed",
    "leaked_segments",
    "resolve_backend",
    "share_batch",
]
