"""Execution backends: serial, thread pool, and process pool.

One abstraction — :class:`ExecutionBackend` — with three implementations
selected by a single ``backend``/``jobs`` knob (:func:`resolve_backend`).
All backends share the same contract:

* :meth:`ExecutionBackend.map` preserves task order: ``results[i]`` is
  ``fn(tasks[i])`` no matter which worker ran it or when it finished, so
  callers reassemble results deterministically.
* **Graceful degradation** — a worker crash, a poisoned task, or a
  per-task timeout never loses the run: the failed task is logged and
  retried once *serially in the parent*; only a task that also fails in
  the parent propagates its exception.
* **Exact accounting** — workers never mutate shared state.  They return
  plain values; the caller merges them (cache deltas, counters) in the
  parent, which is what keeps instrumentation bit-identical to serial.

For :class:`ProcessBackend`, ``fn`` must be a module-level callable and
every task payload must be picklable.
"""

from __future__ import annotations

import abc
import logging
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from repro.obs import get_metrics, tracer
from repro.parallel.jobs import BackgroundJob

logger = logging.getLogger("repro.parallel")

#: Environment knobs honored by :func:`backend_from_env` — the hook the CI
#: matrix uses to run the whole tier-1 suite on the process backend.
ENV_BACKEND = "REPRO_BACKEND"
ENV_JOBS = "REPRO_JOBS"

_UNSET = object()


@dataclass
class BackendStats:
    """Cumulative accounting for one backend instance."""

    #: ``map`` invocations.
    map_calls: int = 0
    #: Tasks submitted across all ``map`` calls.
    tasks: int = 0
    #: Tasks that raised (or whose worker died) and were retried serially.
    retried: int = 0
    #: Tasks that exceeded the per-task timeout.
    timeouts: int = 0
    #: Wall-clock seconds spent inside ``map`` (includes serial retries).
    wall_seconds: float = 0.0


class ExecutionBackend(abc.ABC):
    """Ordered fan-out of ``fn`` over a task list."""

    #: Short name used in reports and the ``backend`` knob.
    name: str = "backend"

    def __init__(self, jobs: int = 1, task_timeout: float | None = None):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive when set")
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.stats = BackendStats()

    def map(self, fn, tasks, timeout: float | None = None) -> list:
        """``[fn(t) for t in tasks]``, scheduled by the backend.

        ``timeout`` (seconds, per task) overrides the backend's default
        ``task_timeout`` for this call.
        """
        tasks = list(tasks)
        self.stats.map_calls += 1
        self.stats.tasks += len(tasks)
        metrics = get_metrics()
        metrics.counter("parallel.map_calls").inc()
        metrics.counter("parallel.tasks").inc(len(tasks))
        started = time.perf_counter()
        try:
            if not tasks:
                return []
            return self._run(fn, tasks, timeout if timeout is not None else self.task_timeout)
        finally:
            elapsed = time.perf_counter() - started
            self.stats.wall_seconds += elapsed
            metrics.histogram("parallel.map_seconds").observe(elapsed)

    @abc.abstractmethod
    def _run(self, fn, tasks: list, timeout: float | None) -> list:
        """Backend-specific scheduling of a non-empty task list."""

    def submit(self, fn, task) -> BackgroundJob:
        """Launch one task in the background; returns a poll handle.

        The serial backend runs the task inline *now* (the reference
        semantics — still deterministic, but the caller blocks), so the
        handle it returns is already settled.  Errors never propagate
        from ``submit`` itself: they surface through the handle's
        :meth:`~repro.parallel.jobs.BackgroundJob.exception`, which is
        what lets a long-running caller degrade instead of dying.
        """
        self.stats.tasks += 1
        get_metrics().counter("parallel.submits").inc()
        started = time.perf_counter()
        try:
            value = fn(task)
        except Exception as exc:
            job = BackgroundJob.failed(exc, backend_name=self.name)
        else:
            job = BackgroundJob.completed(value, backend_name=self.name)
        self.stats.wall_seconds += time.perf_counter() - started
        return job

    def shutdown(self) -> None:
        """Release pooled workers (idempotent; the backend stays usable —
        pools are recreated lazily on the next ``map``)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialBackend(ExecutionBackend):
    """Run every task inline in the parent (the reference semantics)."""

    name = "serial"

    def __init__(self, jobs: int = 1, task_timeout: float | None = None):
        super().__init__(jobs=1, task_timeout=task_timeout)

    def _run(self, fn, tasks: list, timeout: float | None) -> list:
        t = tracer()
        if not t.enabled:
            return [fn(task) for task in tasks]
        results: list = []
        for i, task in enumerate(tasks):
            t.emit("chunk_dispatch", backend=self.name, index=i, total=len(tasks))
            started = time.perf_counter()
            results.append(fn(task))
            t.emit(
                "chunk_complete",
                backend=self.name,
                index=i,
                total=len(tasks),
                seconds=time.perf_counter() - started,
            )
        return results


class _PoolBackend(ExecutionBackend):
    """Shared submit/collect/retry machinery for the executor backends."""

    def __init__(self, jobs: int | None = None, task_timeout: float | None = None):
        super().__init__(jobs=jobs or default_jobs(), task_timeout=task_timeout)
        self._pool = None

    @abc.abstractmethod
    def _make_pool(self):
        """Create the concurrent.futures executor."""

    def _executor(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def submit(self, fn, task) -> BackgroundJob:
        """Launch one task on the pool without blocking the caller.

        If the pool cannot accept work (broken executor, interpreter
        shutdown) the task degrades to an inline run in the parent —
        same policy as :meth:`map`'s serial retry.
        """
        self.stats.tasks += 1
        get_metrics().counter("parallel.submits").inc()
        try:
            future = self._executor().submit(fn, task)
        except Exception as exc:
            logger.warning(
                "%s backend could not submit background task (%r); running inline",
                self.name,
                exc,
            )
            self.shutdown()
            return self._submit_inline(fn, task)
        return BackgroundJob(future, backend_name=self.name)

    def _submit_inline(self, fn, task) -> BackgroundJob:
        try:
            value = fn(task)
        except Exception as exc:
            return BackgroundJob.failed(exc, backend_name=self.name)
        return BackgroundJob.completed(value, backend_name=self.name)

    def _run(self, fn, tasks: list, timeout: float | None) -> list:
        t = tracer()
        started = time.perf_counter()
        results: list = [_UNSET] * len(tasks)
        failed: list[tuple[int, BaseException]] = []
        try:
            futures = []
            for i, task in enumerate(tasks):
                if t.enabled:
                    t.emit(
                        "chunk_dispatch", backend=self.name, index=i, total=len(tasks)
                    )
                futures.append(self._executor().submit(fn, task))
        except Exception as exc:  # pool is unusable — degrade fully serial
            logger.warning("%s backend could not submit (%r); running serially", self.name, exc)
            if t.enabled:
                t.emit(
                    "backend_degrade",
                    backend=self.name,
                    tasks=len(tasks),
                    error=repr(exc),
                )
            self.shutdown()
            failed = [(i, exc) for i in range(len(tasks))]
            futures = []
        broken = False
        for i, future in enumerate(futures):
            try:
                results[i] = future.result(timeout=timeout)
                if t.enabled:
                    # ``seconds`` is the wall time from this map() call's
                    # start until the chunk's result reached the parent.
                    t.emit(
                        "chunk_complete",
                        backend=self.name,
                        index=i,
                        total=len(tasks),
                        seconds=time.perf_counter() - started,
                    )
            except FutureTimeoutError as exc:
                # The worker may be wedged; tear the pool down so the
                # remaining futures fail fast instead of waiting in line.
                self.stats.timeouts += 1
                get_metrics().counter("parallel.timeouts").inc()
                failed.append((i, exc))
                if not broken:
                    broken = True
                    self.shutdown()
            except BrokenExecutor as exc:
                failed.append((i, exc))
                if not broken:
                    broken = True
                    self.shutdown()
            except Exception as exc:
                failed.append((i, exc))
        for i, exc in failed:
            logger.warning(
                "%s backend task %d/%d failed (%r); retrying serially in parent",
                self.name,
                i + 1,
                len(tasks),
                exc,
            )
            if t.enabled:
                t.emit(
                    "chunk_retry",
                    backend=self.name,
                    index=i,
                    total=len(tasks),
                    error=repr(exc),
                )
            retry_started = time.perf_counter()
            results[i] = fn(tasks[i])
            self.stats.retried += 1
            get_metrics().counter("parallel.retries").inc()
            if t.enabled:
                t.emit(
                    "chunk_complete",
                    backend=self.name,
                    index=i,
                    total=len(tasks),
                    seconds=time.perf_counter() - retry_started,
                    retried=True,
                )
        return results


class ThreadBackend(_PoolBackend):
    """Thread-pool backend.

    Shares memory with the parent, so tasks need not be picklable — but
    pure-Python cost models are GIL-bound here; use the process backend
    for CPU-bound fan-out.
    """

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.jobs)


class ProcessBackend(_PoolBackend):
    """Process-pool backend (one Python per worker, no GIL contention).

    Tasks and ``fn`` cross a pickle boundary; workers return plain values
    that the caller merges in the parent.
    """

    name = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.jobs)


def default_jobs() -> int:
    """Worker count when ``jobs`` is not given: one per available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def backend_from_env() -> ExecutionBackend | None:
    """The backend selected by ``REPRO_BACKEND`` / ``REPRO_JOBS``.

    Returns ``None`` when the environment selects nothing — callers fall
    back to their inline serial path.  This is how the CI matrix runs the
    tier-1 suite on the process backend without touching any call site.
    """
    name = os.environ.get(ENV_BACKEND, "").strip().lower()
    if not name:
        return None
    jobs_text = os.environ.get(ENV_JOBS, "").strip()
    jobs = int(jobs_text) if jobs_text else None
    return resolve_backend(name, jobs=jobs)


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    jobs: int | None = None,
    task_timeout: float | None = None,
) -> ExecutionBackend | None:
    """The single ``backend``/``jobs`` knob.

    ``backend`` may be an :class:`ExecutionBackend` instance (returned
    as-is), one of ``"serial"``/``"thread"``/``"process"``, ``"auto"``
    (defer to :func:`backend_from_env`), or ``None`` (no backend — the
    caller's inline serial path).
    """
    if backend is None:
        return None
    if isinstance(backend, ExecutionBackend):
        return backend
    if not isinstance(backend, str):
        raise ValueError(f"backend must be a name or ExecutionBackend, got {backend!r}")
    name = backend.strip().lower()
    if name == "auto":
        return backend_from_env()
    if name == "serial":
        return SerialBackend(task_timeout=task_timeout)
    if name == "thread":
        return ThreadBackend(jobs=jobs, task_timeout=task_timeout)
    if name == "process":
        return ProcessBackend(jobs=jobs, task_timeout=task_timeout)
    raise ValueError(
        f"unknown backend {backend!r} (expected serial, thread, process, or auto)"
    )
