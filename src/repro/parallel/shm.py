"""Zero-copy shipping of compiled costing batches over shared memory.

The process backend's kernel fan-out used to pickle one ``batch.take``
slice per worker chunk — every float of every compiled array crossed the
pipe once per chunk.  This module instead places the batch's arrays in a
single :mod:`multiprocessing.shared_memory` segment; workers receive a
tiny picklable :class:`ShmBatchHandle` (segment name + array layout) and
reattach the arrays as views into the same physical pages — zero copies
past the initial pack, however many chunks or workers there are.

Lifecycle contract (the part that must never leak):

* the **parent** creates the segment inside :func:`share_batch`, a
  context manager whose ``finally`` closes *and unlinks* it.  The
  execution backends always return control to the parent — worker
  crashes and timeouts degrade to a serial retry in the parent (see
  :mod:`repro.parallel.backends`) — so the segment is unlinked on every
  exit path short of the parent dying mid-block;
* a process-wide exit hook (:func:`_unlink_registered`) unlinks any
  segment still registered when the interpreter exits, covering
  ``sys.exit`` and unhandled exceptions inside the block;
* if the parent is SIGKILLed outright, the CPython resource tracker — a
  separate process that survives the kill — removes the segments the
  parent registered at creation;
* **workers** only ever attach and close.  Attaching re-registers the
  segment with the resource tracker, but pool workers (forked or
  spawned) share the *parent's* tracker process, whose cache has set
  semantics — the duplicates collapse and the parent's ``unlink``
  performs the single unregister (see :func:`_untrack`).

:func:`leaked_segments` lists segments this module created that are
still visible in ``/dev/shm`` — the fault-injection tests assert it is
empty after crash and timeout scenarios.

Bit-identity: the arrays a worker sees are byte-for-byte the arrays the
parent packed (one ``memcpy`` in, attached views out), so shared-memory
fan-out cannot perturb a single float.
"""

from __future__ import annotations

import atexit
import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass, fields
from multiprocessing import shared_memory

import numpy as np

from repro.obs import get_metrics

__all__ = [
    "SEGMENT_PREFIX",
    "ShmBatchHandle",
    "attach_batch",
    "leaked_segments",
    "share_batch",
]

#: Every segment this module creates carries this name prefix, so leak
#: checks (and operators staring at /dev/shm) can attribute ownership.
SEGMENT_PREFIX = "repro-shm-"

#: Byte alignment of each packed array within the segment.
_ALIGN = 64

#: Segments created by this process and not yet unlinked, keyed by name
#: with the creator's pid — a forked child inherits the dict but must
#: never unlink its parent's segments (see :func:`_unlink_registered`).
_LIVE: dict[str, tuple[int, shared_memory.SharedMemory]] = {}


@dataclass(frozen=True)
class ShmBatchHandle:
    """Picklable recipe for reattaching a compiled batch.

    ``arrays`` maps dataclass field -> (dtype string, shape, byte
    offset) within the segment; ``scalars`` carries the non-array,
    non-``sqls`` fields verbatim.  SQL texts are *not* shipped: workers
    only run numeric reductions, so :func:`attach_batch` substitutes
    empty placeholders of the right length.
    """

    segment: str
    batch_class: str
    arrays: tuple[tuple[str, str, tuple[int, ...], int], ...]
    scalars: tuple[tuple[str, object], ...]
    query_count: int
    nbytes: int


def _batch_classes() -> dict[str, type]:
    # Imported lazily: kernel.py is heavy and shm.py must stay cheap to
    # import inside worker processes that never touch a batch.
    from repro.costing import kernel

    return {
        cls.__name__: cls
        for cls in (kernel.ColumnarBatch, kernel.RowstoreBatch, kernel.SamplesBatch)
    }


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_batch(batch) -> tuple[shared_memory.SharedMemory, ShmBatchHandle]:
    """Copy ``batch``'s arrays into a fresh shared-memory segment.

    Returns the live segment (caller owns close+unlink — prefer
    :func:`share_batch`) and the handle describing its layout.
    """
    array_fields: list[tuple[str, np.ndarray]] = []
    scalars: list[tuple[str, object]] = []
    for f in fields(batch):
        value = getattr(batch, f.name)
        if isinstance(value, np.ndarray):
            array_fields.append((f.name, np.ascontiguousarray(value)))
        elif f.name != "sqls":
            scalars.append((f.name, value))

    layout: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    for name, array in array_fields:
        offset = _aligned(offset)
        layout.append((name, array.dtype.str, tuple(array.shape), offset))
        offset += array.nbytes

    name = SEGMENT_PREFIX + secrets.token_hex(8)
    segment = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    _LIVE[segment.name] = (os.getpid(), segment)
    for (field_name, _, _, off), (_, array) in zip(layout, array_fields):
        dest = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=off
        )
        dest[...] = array
    handle = ShmBatchHandle(
        segment=segment.name,
        batch_class=type(batch).__name__,
        arrays=tuple(layout),
        scalars=tuple(scalars),
        query_count=batch.query_count,
        nbytes=offset,
    )
    metrics = get_metrics()
    metrics.counter("shm.segments_created").inc()
    metrics.counter("shm.bytes_shipped").inc(offset)
    return segment, handle


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Reconcile the attach-side resource-tracker registration: a no-op.

    CPython registers *every* ``SharedMemory`` — attaches included —
    with the resource tracker.  That looks like it needs undoing on the
    attach side, but every attacher in this codebase shares the
    *creator's* tracker process: the creator itself trivially, forked
    pool workers through the inherited tracker pipe, and spawn-started
    pool workers through the tracker fd multiprocessing ships in its
    preparation data.  The shared tracker's cache has set semantics, so
    the duplicate registrations collapse and the creator's ``unlink``
    performs the single unregister.  Calling ``unregister`` here instead
    would *remove the creator's registration* whenever the attaching
    worker was forked before the segment existed (so the segment is
    absent from its inherited ``_LIVE``), making the creator's later
    ``unlink`` crash the tracker with a ``KeyError``.
    """


def attach_batch(handle: ShmBatchHandle):
    """Reattach a packed batch as zero-copy views into the segment.

    Returns ``(batch, segment)``; the caller must drop every array
    reference before ``segment.close()`` (views pin the mapping).
    """
    segment = shared_memory.SharedMemory(name=handle.segment)
    _untrack(segment)
    kwargs: dict[str, object] = {"sqls": [""] * handle.query_count}
    kwargs.update(handle.scalars)
    for name, dtype, shape, offset in handle.arrays:
        kwargs[name] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
        )
    batch = _batch_classes()[handle.batch_class](**kwargs)
    get_metrics().counter("shm.attaches").inc()
    return batch, segment


def _release(segment: shared_memory.SharedMemory, unlink: bool) -> None:
    try:
        segment.close()
    except Exception:  # pragma: no cover - close is best-effort
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        except Exception:  # pragma: no cover - unlink is best-effort
            get_metrics().counter("shm.unlink_failures").inc()
        _LIVE.pop(segment.name, None)


@contextmanager
def share_batch(batch):
    """Publish ``batch`` in shared memory for the duration of the block.

    Yields the :class:`ShmBatchHandle` to ship to workers.  The segment
    is closed and unlinked on *every* exit — normal return, worker
    crash, timeout, or an exception raised inside the block — because
    the execution backends always surface those as ordinary control flow
    in the parent.
    """
    segment, handle = pack_batch(batch)
    try:
        yield handle
    finally:
        _release(segment, unlink=True)


@contextmanager
def attached_batch(handle: ShmBatchHandle):
    """Worker-side convenience: attach, yield the batch, always close.

    The caller must materialize results (plain floats/lists) inside the
    block — views into the segment do not outlive it.
    """
    batch, segment = attach_batch(handle)
    try:
        yield batch
    finally:
        del batch
        _release(segment, unlink=False)


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of this module's segments still present in ``/dev/shm``.

    Empty on platforms without a POSIX shm filesystem — the leak-check
    tests only assert on Linux, where the CI legs run.
    """
    shm_dir = "/dev/shm"
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))


def _unlink_registered() -> None:  # pragma: no cover - exit hook
    for pid, segment in list(_LIVE.values()):
        if pid == os.getpid():  # never a forked child's inherited entry
            _release(segment, unlink=True)


atexit.register(_unlink_registered)
