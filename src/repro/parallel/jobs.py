"""Background job handles for fire-and-poll fan-out.

:meth:`ExecutionBackend.map` is the batch contract: submit everything,
block, reassemble in order.  The online daemon needs the opposite shape
— launch **one** re-design, keep serving queries, and poll for the
result at window boundaries.  :class:`BackgroundJob` is that handle:
a thin, backend-agnostic wrapper over a ``concurrent.futures.Future``
(pool backends) or an already-computed value (the serial backend, which
runs the task inline at submit time — the reference semantics, still
deterministic).

The handle never raises from :meth:`poll`-style accessors; callers ask
:meth:`done`/:meth:`exception` and decide how to degrade, which is what
lets the daemon keep serving on the old design when a re-design worker
crashes.
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError


class BackgroundJob:
    """Handle for one task submitted via :meth:`ExecutionBackend.submit`."""

    def __init__(self, future: Future | None = None, backend_name: str = "inline"):
        self._future = future
        self._result = None
        self._error: BaseException | None = None
        self._settled = future is None
        self.backend_name = backend_name
        self.started = time.perf_counter()
        self._finished: float | None = self.started if self._settled else None

    @classmethod
    def completed(cls, value, backend_name: str = "inline") -> "BackgroundJob":
        """A job that already finished successfully (serial submit)."""
        job = cls(backend_name=backend_name)
        job._result = value
        return job

    @classmethod
    def failed(cls, error: BaseException, backend_name: str = "inline") -> "BackgroundJob":
        """A job that already finished with an error (serial submit)."""
        job = cls(backend_name=backend_name)
        job._error = error
        return job

    def _settle(self, timeout: float | None) -> None:
        if self._settled:
            return
        try:
            self._result = self._future.result(timeout=timeout)
        except FutureTimeoutError:
            return  # not settled yet — caller keeps polling
        except BaseException as error:  # worker crash, cancellation, task error
            self._error = error
        self._settled = True
        self._finished = time.perf_counter()

    def done(self) -> bool:
        """True once the task finished (successfully or not)."""
        if not self._settled and self._future.done():
            self._settle(timeout=0)
        return self._settled

    def running(self) -> bool:
        return not self.done()

    def cancel(self) -> bool:
        """Try to cancel; returns True if the task will never run.

        A task already executing in a pool worker cannot be stopped
        cooperatively — cancel then reports False and the caller should
        abandon the handle (the result is discarded on arrival).
        """
        if self._settled:
            return False
        cancelled = self._future.cancel()
        if cancelled:
            self._error = CancelledError()
            self._settled = True
            self._finished = time.perf_counter()
        return cancelled

    def wait(self, timeout: float | None = None) -> bool:
        """Block up to ``timeout`` seconds; True once settled."""
        self._settle(timeout)
        return self._settled

    def result(self, timeout: float | None = None):
        """The task's return value (raises its error; raises on timeout)."""
        self._settle(timeout)
        if not self._settled:
            raise FutureTimeoutError(f"background job still running after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The task's error, ``None`` on success (raises on timeout)."""
        self._settle(timeout)
        if not self._settled:
            raise FutureTimeoutError(f"background job still running after {timeout}s")
        return self._error

    def wall_seconds(self) -> float | None:
        """Submit-to-settle wall time (``None`` while still running)."""
        if self._finished is None:
            return None
        return self._finished - self.started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "running"
        return f"<BackgroundJob {state} backend={self.backend_name}>"
