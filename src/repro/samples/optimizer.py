"""What-if cost model for stratified-sample designs.

A sample can answer an aggregate query when every column the answer's
correctness depends on — filters and groupings — is a stratum column, so
each qualifying group is guaranteed representation in the sample.  The
query then scans ``fraction`` of the table instead of all of it; queries
no sample can serve run exactly on the base table.

Costs are model milliseconds on the same scale as the other two engines.
"""

from __future__ import annotations

from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStatistics
from repro.costing.memo import BoundedMemo
from repro.costing.profile import QueryProfile, QueryProfiler
from repro.costing.report import WorkloadCostReport
from repro.samples.design import SampleDesign, StratifiedSample

#: Sequential scan cost per byte (matches the other engines).
BYTE_COST_MS = 5e-6
#: Per-row, per-predicate filter evaluation cost.
PREDICATE_COST_MS = 1e-5
#: Hash aggregation per input row.
HASH_AGG_COST_MS = 2e-5
#: Fixed per-query overhead.
QUERY_OVERHEAD_MS = 1.0
#: Per-byte cost of applying a write to a stored structure (shared value
#: across all three substrates).
WRITE_BYTE_COST_MS = 1e-5
#: Fixed per-affected-row upkeep of one stratified sample (reservoir
#: membership test plus stratum counter update).
SAMPLE_MAINT_ROW_MS = 1e-4
#: Queries whose estimated relative error would exceed this cannot be
#: served approximately (the optimizer refuses, as AQP systems do).
MAX_RELATIVE_ERROR = 0.12


class SamplesCostModel:
    """Prices queries against stratified-sample designs."""

    def __init__(
        self,
        schema: Schema,
        statistics: dict[str, TableStatistics] | None = None,
    ):
        self.schema = schema
        self.statistics = statistics or {
            name: TableStatistics.declared(table)
            for name, table in schema.tables.items()
        }
        self.profiler = QueryProfiler(schema, self.statistics)
        # Bounded LRU: a long replay prices an unbounded stream of
        # (query, sample) pairs; evictions are metrics-counted.
        self._sample_costs: BoundedMemo = BoundedMemo(
            "costing.memo_evictions.samples_sample"
        )

    def profile(self, sql: str) -> QueryProfile:
        """Parse and annotate ``sql`` (cached by exact text)."""
        return self.profiler.profile(sql)

    # -- serviceability -----------------------------------------------------------

    def answers(self, profile: QueryProfile, sample: StratifiedSample) -> bool:
        """Whether ``sample`` can answer ``profile`` with bounded error."""
        if profile.anchor.table != sample.table or profile.dimensions:
            return False
        if not profile.has_aggregates:
            return False  # samples answer aggregates, not row retrieval
        if any(agg.distinct for agg in profile.aggregates):
            return False  # COUNT(DISTINCT) does not scale from a sample
        depends_on = profile.anchor.predicate_columns | set(profile.group_by)
        if not depends_on <= sample.strata_set:
            return False
        stats = self.statistics[sample.table]
        return sample.relative_error(stats) <= MAX_RELATIVE_ERROR

    # -- costing --------------------------------------------------------------------

    def _scan_cost(self, profile: QueryProfile, rows: float) -> float:
        access = profile.anchor
        cost = rows * access.needed_bytes * BYTE_COST_MS
        cost += rows * access.predicate_count * PREDICATE_COST_MS
        filtered = max(rows * access.total_selectivity, 1.0)
        if profile.group_by or profile.has_aggregates:
            cost += filtered * HASH_AGG_COST_MS
        return cost

    def sample_cost(
        self, profile: QueryProfile, sample: StratifiedSample
    ) -> float | None:
        """Cost of answering ``profile`` from ``sample`` (None = cannot)."""
        key = (profile.sql, sample)
        if key in self._sample_costs:
            return self._sample_costs[key]
        if not self.answers(profile, sample):
            cost = None
        else:
            stats = self.statistics[sample.table]
            cost = self._scan_cost(profile, float(sample.sample_rows(stats)))
        self._sample_costs[key] = cost
        return cost

    # DesignAdapter-compatible alias.
    structure_cost = sample_cost

    def exact_cost(self, profile: QueryProfile) -> float:
        """Full-table (exact) execution cost."""
        rows = float(self.statistics[profile.anchor.table].row_count)
        dims = sum(
            self._scan_cost_dim(d) for d in profile.dimensions
        )
        return self._scan_cost(profile, rows) + dims

    def _scan_cost_dim(self, access) -> float:
        rows = float(self.statistics[access.table].row_count)
        return rows * access.row_bytes * BYTE_COST_MS

    # -- write costing --------------------------------------------------------------

    def base_write_cost(self, profile: QueryProfile) -> float:
        """Design-independent cost of applying the write to base storage."""
        return (profile.affected_rows * profile.written_bytes) * WRITE_BYTE_COST_MS

    def maintenance_weight(self, sample: StratifiedSample) -> float:
        """Per-affected-row cost of keeping ``sample`` current.

        Only ``fraction`` of the written rows land in the sample, so the
        byte component scales with the sampling rate.
        """
        table = self.schema.table(sample.table)
        return SAMPLE_MAINT_ROW_MS + (
            sample.fraction * table.row_bytes
        ) * WRITE_BYTE_COST_MS

    def write_touches(self, profile: QueryProfile, sample: StratifiedSample) -> bool:
        """Whether ``profile``'s write forces maintenance of ``sample``.

        Inserts and deletes change sample membership; updates only matter
        when they rewrite a stratum column (the stratification itself).
        """
        if not profile.is_write or sample.table != profile.anchor.table:
            return False
        if profile.statement_kind != "update":
            return True
        return bool(sample.strata_set & set(profile.written_columns))

    def _write_cost(self, profile: QueryProfile, design: SampleDesign) -> float:
        """DML cost: locate the affected rows (always on the base table —
        samples cannot answer writes), apply the base write, then charge
        per-sample maintenance."""
        if profile.statement_kind == "insert":
            locate = 0.0
        else:
            locate = self.exact_cost(profile)
        cost = (QUERY_OVERHEAD_MS + locate) + self.base_write_cost(profile)
        for sample in design.for_table(profile.anchor.table):
            if self.write_touches(profile, sample):
                cost = cost + profile.affected_rows * self.maintenance_weight(sample)
        return cost

    def query_cost(self, sql_or_profile, design: SampleDesign) -> float:
        """Estimated latency (model ms) of one query under ``design``."""
        profile = (
            sql_or_profile
            if isinstance(sql_or_profile, QueryProfile)
            else self.profile(sql_or_profile)
        )
        if profile.is_write:
            return self._write_cost(profile, design)
        best = self.exact_cost(profile)
        for sample in design.for_table(profile.anchor.table):
            cost = self.sample_cost(profile, sample)
            if cost is not None and cost < best:
                best = cost
        return QUERY_OVERHEAD_MS + best

    def choose_sample(
        self, profile: QueryProfile, design: SampleDesign
    ) -> StratifiedSample | None:
        """The sample the optimizer would use (None = exact execution)."""
        best_sample = None
        best = self.exact_cost(profile)
        for sample in design.for_table(profile.anchor.table):
            cost = self.sample_cost(profile, sample)
            if cost is not None and cost < best:
                best_sample, best = sample, cost
        return best_sample

    def workload_cost(self, queries, design: SampleDesign) -> WorkloadCostReport:
        """Cost every query in ``queries`` under ``design``."""
        costs: list[float] = []
        weights: list[float] = []
        for query in queries:
            if isinstance(query, str):
                sql, weight = query, 1.0
            else:
                sql, weight = query.sql, float(query.frequency)
            costs.append(self.query_cost(sql, design))
            weights.append(weight)
        return WorkloadCostReport(per_query_ms=costs, weights=weights)
