"""Approximate-database substrate: stratified-sample physical designs.

Section 2 of the paper lists a third kind of physical design besides
projections and indices/views: "Approximate databases use small samples of
the data … Physical designs in these systems consist of different types of
samples (e.g., stratified on different columns)" (BlinkDB-style systems).

This package provides that design space — :class:`StratifiedSample` design
atoms, a :class:`SampleDesign` container, and a what-if cost model — so
CliffGuard can be exercised against a *third* engine through the very same
black-box adapter interface.
"""

from repro.samples.design import SampleDesign, StratifiedSample
from repro.samples.optimizer import SamplesCostModel

__all__ = ["SampleDesign", "SamplesCostModel", "StratifiedSample"]
