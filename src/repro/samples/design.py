"""Stratified-sample design atoms and the sample-design container.

A :class:`StratifiedSample` keeps a ``fraction`` of a table's rows,
sampled uniformly *within every combination of the strata columns* —
which is what lets an aggregate query that filters or groups on those
columns be answered from the sample with bounded error (every group is
guaranteed representation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.schema import Schema, Table
from repro.catalog.statistics import TableStatistics


@dataclass(frozen=True)
class StratifiedSample:
    """An immutable stratified-sample definition (hashable design atom)."""

    table: str
    strata_columns: tuple[str, ...]
    fraction: float

    def __post_init__(self) -> None:
        if not self.strata_columns:
            raise ValueError("a stratified sample needs strata columns")
        if len(set(self.strata_columns)) != len(self.strata_columns):
            raise ValueError(f"duplicate strata columns on {self.table!r}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    @property
    def strata_set(self) -> frozenset[str]:
        return frozenset(self.strata_columns)

    def sample_rows(self, statistics: TableStatistics) -> int:
        """Expected number of rows retained."""
        return max(1, int(statistics.row_count * self.fraction))

    def strata_cells(self, statistics: TableStatistics) -> int:
        """Number of strata (product of the strata columns' NDVs, capped)."""
        cells = 1
        for name in self.strata_columns:
            if name in statistics.columns:
                cells *= max(1, statistics.columns[name].ndv)
            cells = min(cells, statistics.row_count)
        return max(1, cells)

    def rows_per_stratum(self, statistics: TableStatistics) -> float:
        """Average retained rows per stratum — the error lever."""
        return self.sample_rows(statistics) / self.strata_cells(statistics)

    def relative_error(self, statistics: TableStatistics) -> float:
        """Rule-of-thumb relative error of a per-stratum mean: 1/√n."""
        per_stratum = max(self.rows_per_stratum(statistics), 1.0)
        return 1.0 / math.sqrt(per_stratum)

    def size_bytes(self, table: Table, statistics: TableStatistics) -> int:
        """On-disk size: retained rows at full row width."""
        return self.sample_rows(statistics) * table.row_bytes

    def to_sql(self) -> str:
        """Render the defining DDL (for logs and examples)."""
        name = f"smp_{self.table}_{'_'.join(self.strata_columns)}"
        return (
            f"CREATE SAMPLE {name} ON {self.table} "
            f"STRATIFIED BY ({', '.join(self.strata_columns)}) "
            f"FRACTION {self.fraction:g}"
        )

    def __str__(self) -> str:
        return (
            f"sample({self.table}: by {','.join(self.strata_columns)} "
            f"@ {self.fraction:g})"
        )


@dataclass(frozen=True)
class SampleDesign:
    """An immutable set of stratified samples."""

    samples: frozenset[StratifiedSample] = frozenset()

    @classmethod
    def of(cls, *samples: StratifiedSample) -> "SampleDesign":
        return cls(frozenset(samples))

    @classmethod
    def empty(cls) -> "SampleDesign":
        """No samples: every query runs exactly on the full table."""
        return cls()

    def with_sample(self, sample: StratifiedSample) -> "SampleDesign":
        return SampleDesign(self.samples | {sample})

    def for_table(self, table: str) -> list[StratifiedSample]:
        return sorted(
            (s for s in self.samples if s.table == table),
            key=lambda s: (s.strata_columns, s.fraction),
        )

    def price(self, schema: Schema, statistics: dict[str, TableStatistics]) -> int:
        """Total bytes of all samples — the paper's ``price(D)``."""
        return sum(
            sample.size_bytes(schema.table(sample.table), statistics[sample.table])
            for sample in self.samples
        )

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(
            sorted(
                self.samples,
                key=lambda s: (s.table, s.strata_columns, s.fraction),
            )
        )

    def describe(self) -> str:
        if not self.samples:
            return "(empty design)"
        return "\n".join(str(s) for s in self)
