"""FutureKnowingDesigner: the oracle baseline.

The same nominal designer, except the replay harness feeds it the *next*
window — the queries it will actually be evaluated on.  It marks the best
performance achievable when the future is known exactly (paper Section
6.1, baseline 3).  The class itself just tags an inner designer; the
harness (:mod:`repro.harness.replay`) checks :attr:`is_oracle` and swaps
the input window.
"""

from __future__ import annotations

from repro.designers.base import Designer
from repro.workload.workload import Workload


class FutureKnowingDesigner(Designer):
    """Wraps a nominal designer and asks the harness for oracle input."""

    name = "FutureKnowingDesigner"
    is_oracle = True

    def __init__(self, inner: Designer):
        self.inner = inner

    def design(self, workload: Workload):
        """Design for ``workload`` — the harness passes the future window."""
        return self.inner.design(workload)
