"""C²UCB contextual combinatorial bandit designer (ROADMAP item 4).

CliffGuard treats the nominal designer as a black box (paper Section 2),
which makes the designer registry a genuine *arena*: any strategy that
maps a workload window to a design under the storage budget can race the
BNT local search.  :class:`BanditDesigner` is the online-learning rival
from the two Perera et al. papers (PAPERS.md): "DBA bandits:
self-driving index tuning … with safety guarantees" and "No DBA? No
regret! Multi-armed bandits for index tuning of analytical and HTAP
workloads".

The model is a C²UCB-style contextual combinatorial linear bandit:

* **Arms** are candidate structures from the engine's existing candidate
  source (``nominal.generate_candidates``) — projections, indexes, or
  materialized views depending on the substrate.
* **Context features** come from the workload window, extracted in a
  handful of numpy ops over the pre-priced
  :class:`~repro.designers.greedy.CandidateEvaluation` arrays (the same
  SoA arena path the greedy nominal uses): normalized weighted benefit,
  write-maintenance drag, weighted coverage, best relative improvement,
  and budget-relative size.
* **Scores** are the ridge-regression UCB ``fᵀθ̂ + α·√(fᵀV⁻¹f)`` with
  ``θ̂ = V⁻¹b``; a super-arm is selected knapsack-greedily by score per
  byte under ``adapter.budget_bytes``.
* **Rewards** are per-window *observed* costs fed back through the
  :meth:`~repro.designers.base.Designer.observe` hook: each improved
  query's weighted saving is credited to the served structure that wins
  it, and ``V``/``b`` accumulate the winner's feature outer products.
* **Safety guard** ("no regret"): before a selection is accepted, its
  predicted workload cost is compared against the incumbent design's;
  a selection predicted to regress past ``safety_margin`` is rejected
  and the incumbent keeps serving.  Fallbacks are surfaced as the
  ``bandit.safety_fallbacks`` counter in :mod:`repro.obs`.  A rejected
  super-arm still tightens ``V`` (confidence-only update), so repeated
  over-optimism decays instead of deadlocking the learner.

Determinism contract: given a seed, the same sequence of
``design``/``observe`` calls produces bit-identical designs and model
state on any backend; :meth:`export_state`/:meth:`import_state`
snapshot the full learner (``V``, ``b``, the numpy RNG stream, the
incumbent, and the arm log) for ``repro.state`` kill-resume.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.designers.base import DesignAdapter, Designer
from repro.designers.greedy import CandidateEvaluation, evaluate_candidates
from repro.obs import get_metrics, tracer
from repro.workload.workload import Workload

#: Feature dimension (bias, benefit, penalty, coverage, best-rel, size).
FEATURE_DIM = 6

#: Default exploration weight α on the confidence width.
DEFAULT_ALPHA = 0.6

#: Default ridge regularization λ (V starts as λ·I).
DEFAULT_REGULARIZATION = 1.0

#: Default safety margin: reject selections predicted to cost more than
#: ``(1 + margin) ×`` the incumbent's predicted cost on the same window.
DEFAULT_SAFETY_MARGIN = 0.15

#: Arm-log retention: feature vectors are kept for this many distinct
#: recently selected structures (reward attribution needs the feature a
#: structure was picked with; older arms age out of the learning loop).
DEFAULT_ARM_LOG_LIMIT = 512

#: Tie-break jitter magnitude on UCB scores.  Small enough to never
#: reorder genuinely different scores, large enough to make the RNG
#: stream load-bearing for the kill-resume bit-identity contract.
_JITTER = 1e-9


def extract_features(
    evaluation: CandidateEvaluation, budget_bytes: int
) -> np.ndarray:
    """Per-candidate context features from a pre-priced evaluation.

    Fully vectorized over the ``(candidates × queries)`` cost matrix.
    Rows align with ``evaluation.candidates``; all components are
    scale-free (normalized by the window's base cost mass, the weight
    mass, or the byte budget), so one θ̂ transfers across windows.
    """
    base = evaluation.base_costs
    weights = evaluation.weights
    matrix = evaluation.matrix
    sizes = evaluation.sizes
    n = len(evaluation.candidates)
    if n == 0 or base.size == 0:
        return np.zeros((n, FEATURE_DIM), dtype=np.float64)
    cost_mass = float(np.dot(weights, base))
    denom = cost_mass if cost_mass > 0 else 1.0
    weight_mass = float(weights.sum()) or 1.0
    finite = np.isfinite(matrix)
    # delta[c, q] > 0: candidate c improves query q; < 0: it regresses it
    # (write maintenance on the candidate's table).
    delta = np.where(finite, base[None, :] - matrix, 0.0)
    benefit = (np.maximum(delta, 0.0) @ weights) / denom
    penalty = (np.maximum(-delta, 0.0) @ weights) / denom
    improves = finite & (delta > 1e-12)
    coverage = (improves @ weights) / weight_mass
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(base[None, :] > 0, delta / base[None, :], 0.0)
    best_rel = np.max(np.where(improves, rel, 0.0), axis=1, initial=0.0)
    size_frac = np.minimum(sizes / float(max(budget_bytes, 1)), 1.0)
    return np.stack(
        [np.ones(n), benefit, penalty, coverage, best_rel, size_frac], axis=1
    )


class BanditDesigner(Designer):
    """C²UCB linear bandit over candidate structures; see module docstring."""

    name = "BanditDesigner"
    learns_online = True

    def __init__(
        self,
        nominal,
        adapter: DesignAdapter,
        *,
        alpha: float = DEFAULT_ALPHA,
        regularization: float = DEFAULT_REGULARIZATION,
        safety_margin: float = DEFAULT_SAFETY_MARGIN,
        seed: int = 0,
        max_structures: int | None = None,
        arm_log_limit: int = DEFAULT_ARM_LOG_LIMIT,
    ):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if safety_margin < 0:
            raise ValueError("safety_margin must be non-negative")
        if arm_log_limit < 1:
            raise ValueError("arm_log_limit must be positive")
        self.nominal = nominal
        self.adapter = adapter
        self.alpha = alpha
        self.regularization = regularization
        self.safety_margin = safety_margin
        self.max_structures = max_structures
        self.arm_log_limit = arm_log_limit
        self.rng = np.random.default_rng(seed)
        # -- learner state (everything below is export_state-captured) ----
        self.V = regularization * np.eye(FEATURE_DIM)
        self.b = np.zeros(FEATURE_DIM)
        self.rounds = 0
        self.observations = 0
        self.safety_fallbacks = 0
        #: The last accepted design; the safety guard's reference point.
        self.incumbent = None
        #: structure -> feature vector it was last selected with (bounded).
        self._arm_log: "OrderedDict[object, np.ndarray]" = OrderedDict()

    # -- selection ----------------------------------------------------------------

    def _ucb_scores(self, features: np.ndarray) -> np.ndarray:
        """``fᵀθ̂ + α·√(fᵀV⁻¹f)`` per arm, plus the tie-break jitter."""
        theta = np.linalg.solve(self.V, self.b)
        half = np.linalg.solve(self.V, features.T)  # V⁻¹ fᵀ, shape (d, n)
        width = np.sqrt(np.maximum(np.einsum("nd,dn->n", features, half), 0.0))
        jitter = self.rng.uniform(-_JITTER, _JITTER, size=len(features))
        return features @ theta + self.alpha * width + jitter

    def _knapsack_greedy(
        self, scores: np.ndarray, sizes: np.ndarray
    ) -> list[int]:
        """Indices chosen by score-per-byte density under the budget."""
        density = scores / np.maximum(sizes, 1.0)
        order = np.argsort(-density, kind="stable")
        chosen: list[int] = []
        remaining = float(self.adapter.budget_bytes)
        for i in order:
            if scores[i] <= 0:
                break  # positives sort before non-positives by density
            if self.max_structures is not None and len(chosen) >= self.max_structures:
                break
            if sizes[i] <= remaining:
                chosen.append(int(i))
                remaining -= float(sizes[i])
        return chosen

    def _incumbent_design(self):
        if self.incumbent is None:
            return self.adapter.empty_design()
        return self.incumbent

    def design(self, workload: Workload):
        """One bandit round: score arms, select a super-arm, safety-check."""
        self.rounds += 1
        incumbent = self._incumbent_design()
        candidates = self.nominal.generate_candidates(workload)
        if not candidates:
            return incumbent
        evaluation = evaluate_candidates(self.adapter, workload, candidates)
        if evaluation.base_costs.size == 0:
            return incumbent
        features = extract_features(evaluation, self.adapter.budget_bytes)
        scores = self._ucb_scores(features)
        chosen = self._knapsack_greedy(scores, evaluation.sizes)
        design = self.adapter.make_design(
            [evaluation.candidates[i] for i in chosen]
        )
        predicted = self.adapter.workload_cost(workload, design).average_ms
        guard = self.adapter.workload_cost(workload, incumbent).average_ms
        accepted = predicted <= guard * (1.0 + self.safety_margin)
        t = tracer()
        if accepted:
            self.incumbent = design
            # Remember the features each selected structure was picked
            # with; observe() attributes its window reward against them.
            for i in chosen:
                arm = evaluation.candidates[i]
                self._arm_log[arm] = features[i].copy()
                self._arm_log.move_to_end(arm)
            while len(self._arm_log) > self.arm_log_limit:
                self._arm_log.popitem(last=False)
        else:
            # "No regret": keep the incumbent serving, but pay for the
            # optimism — a confidence-only update (V without b) shrinks
            # the rejected arms' widths so the same over-estimate cannot
            # repeat forever.
            self.safety_fallbacks += 1
            get_metrics().counter("bandit.safety_fallbacks").inc()
            for i in chosen:
                f = features[i]
                self.V += np.outer(f, f)
            design = incumbent
        if t.enabled:
            t.emit(
                "bandit.round",
                round=self.rounds,
                arms=len(candidates),
                selected=len(chosen),
                accepted=accepted,
                predicted_ms=predicted,
                incumbent_ms=guard,
                fallbacks=self.safety_fallbacks,
            )
        return design

    # -- learning -----------------------------------------------------------------

    def observe(self, window: Workload, design, observed_costs) -> None:
        """Credit the window's observed savings to the served structures.

        ``observed_costs`` maps SQL text to the cost actually recorded
        for the window under ``design``.  Each improved query's weighted
        saving over its bare-table base cost is credited to the served
        structure that wins it (minimum single-structure cost), and the
        winners' feature outer products accumulate into ``V``/``b``.
        Structures that were never selected by this learner (no feature
        vector on record) are skipped.
        """
        self.observations += 1
        arms = [
            s for s in self.adapter.structures(design) if s in self._arm_log
        ]
        if not arms or not observed_costs:
            return
        evaluation = evaluate_candidates(self.adapter, window, arms)
        base = evaluation.base_costs
        if base.size == 0:
            return
        weights = evaluation.weights
        cost_mass = float(np.dot(weights, base))
        if cost_mass <= 0:
            return
        observed = np.array(
            [
                observed_costs.get(sql, b)
                for sql, b in zip(evaluation.sqls, base)
            ],
            dtype=np.float64,
        )
        matrix = np.where(np.isfinite(evaluation.matrix), evaluation.matrix, np.inf)
        winner = np.argmin(matrix, axis=0)
        cols = np.arange(base.size)
        helped = matrix[winner, cols] < base - 1e-12
        gain = weights * (base - observed)
        rewards = np.zeros(len(arms))
        np.add.at(rewards, winner[helped], gain[helped])
        rewards = np.clip(rewards / cost_mass, -1.0, 1.0)
        for arm, reward in zip(arms, rewards):
            f = self._arm_log[arm]
            self.V += np.outer(f, f)
            self.b += f * reward

    # -- state / reporting ---------------------------------------------------------

    def export_state(self) -> dict:
        """Everything a resumed learner needs for bit-identical behavior."""
        return {
            "V": self.V.copy(),
            "b": self.b.copy(),
            "rng": self.rng.bit_generator.state,
            "rounds": self.rounds,
            "observations": self.observations,
            "safety_fallbacks": self.safety_fallbacks,
            "incumbent": self.incumbent,
            "arm_log": [(arm, f.copy()) for arm, f in self._arm_log.items()],
        }

    def import_state(self, state: dict) -> None:
        """Restore what :meth:`export_state` captured."""
        self.V = state["V"].copy()
        self.b = state["b"].copy()
        self.rng.bit_generator.state = state["rng"]
        self.rounds = state["rounds"]
        self.observations = state["observations"]
        self.safety_fallbacks = state["safety_fallbacks"]
        self.incumbent = state["incumbent"]
        self._arm_log = OrderedDict(
            (arm, f.copy()) for arm, f in state["arm_log"]
        )

    def model_digest(self) -> str:
        """Digest of the learned model (V, b) — backend-identity checks."""
        h = hashlib.blake2b(digest_size=8)
        h.update(np.ascontiguousarray(self.V).tobytes())
        h.update(np.ascontiguousarray(self.b).tobytes())
        return h.hexdigest()

    def stats(self) -> dict:
        """Learner counters surfaced through ``DesignerRun.stats``."""
        return {
            "rounds": self.rounds,
            "observations": self.observations,
            "safety_fallbacks": self.safety_fallbacks,
            "arms_tracked": len(self._arm_log),
            "model_digest": self.model_digest(),
        }
