"""Nominal designer for stratified-sample (AQP) designs.

Per-template candidates stratify on exactly the columns the template's
answer depends on (filters + groupings), with the fraction chosen to hit a
target per-stratum row count (the error budget).  Broader candidates
stratify on a table's most frequent answer-relevant columns, covering
whole template families — the structures through which CliffGuard's moved
workloads express robustness in this design space.
"""

from __future__ import annotations

from collections import Counter

from repro.designers.base import Designer, SamplesAdapter
from repro.designers.greedy import evaluate_candidates, greedy_select
from repro.samples.design import SampleDesign, StratifiedSample
from repro.workload.workload import Workload

#: Target retained rows per stratum (error ≈ 1/√target ≈ 0.09).
TARGET_ROWS_PER_STRATUM = 120
#: Samples may not exceed this fraction of the base table.
MAX_FRACTION = 0.25
#: Strata wider than this explode the cell count.
MAX_STRATA_WIDTH = 5
#: How many broad (family) candidates to propose per table.
FAMILY_CANDIDATES_PER_TABLE = 3


class SamplesNominalDesigner(Designer):
    """Greedy budget-constrained stratified-sample selection."""

    name = "ExistingDesigner"

    def __init__(self, adapter: SamplesAdapter, max_structures: int | None = None):
        self.adapter = adapter
        self.max_structures = max_structures

    def _fraction_for(self, table: str, strata: tuple[str, ...]) -> float | None:
        """Fraction hitting the per-stratum target, or None if infeasible."""
        statistics = self.adapter.cost_model.statistics[table]
        probe = StratifiedSample(table=table, strata_columns=strata, fraction=1.0)
        cells = probe.strata_cells(statistics)
        needed = cells * TARGET_ROWS_PER_STRATUM
        fraction = needed / max(statistics.row_count, 1)
        if fraction > MAX_FRACTION:
            return None  # too many strata: the sample would not be small
        return max(fraction, 1e-6)

    def generate_candidates(self, workload: Workload) -> list[StratifiedSample]:
        """Exact per-template candidates plus per-table family candidates."""
        seen: set[StratifiedSample] = set()
        candidates: list[StratifiedSample] = []
        column_frequency: dict[str, Counter] = {}

        def add(table: str, strata: tuple[str, ...]) -> None:
            if not strata or len(strata) > MAX_STRATA_WIDTH:
                return
            fraction = self._fraction_for(table, strata)
            if fraction is None:
                return
            sample = StratifiedSample(table=table, strata_columns=strata, fraction=fraction)
            if sample not in seen:
                seen.add(sample)
                candidates.append(sample)

        for query in workload.collapsed():
            try:
                profile = self.adapter.profile(query.sql)
            except ValueError:
                continue
            if not profile.has_aggregates or profile.dimensions:
                continue
            depends_on = sorted(
                profile.anchor.predicate_columns | set(profile.group_by)
            )
            if not depends_on:
                continue
            table = profile.anchor.table
            add(table, tuple(depends_on))
            counter = column_frequency.setdefault(table, Counter())
            for name in depends_on:
                counter[name] += query.frequency

        # Family candidates: the table's most frequent answer-relevant
        # columns, at increasing widths.
        for table, counter in column_frequency.items():
            frequent = [name for name, _ in counter.most_common(MAX_STRATA_WIDTH)]
            for width in range(2, 2 + FAMILY_CANDIDATES_PER_TABLE):
                add(table, tuple(sorted(frequent[:width])))
        return candidates

    def design(self, workload: Workload) -> SampleDesign:
        """Greedy selection of candidate samples under the budget."""
        candidates = self.generate_candidates(workload)
        if not candidates:
            return SampleDesign.empty()
        evaluation = evaluate_candidates(self.adapter, workload, candidates)
        chosen = greedy_select(
            evaluation, self.adapter.budget_bytes, max_structures=self.max_structures
        )
        return SampleDesign.of(*chosen)
