"""The Vertica-DBD-style nominal projection designer.

This is the paper's "ExistingDesigner" for the columnar engine: a
sophisticated, *nominal* tool that finds near-optimal designs for exactly
the workload it is given.  Candidates are generated per query template —
the projection stores precisely the referenced columns, sorted to serve the
query's filters or its grouping — which is why the resulting designs are
excellent on the input workload and brittle off it (the overfitting
CliffGuard exists to repair).
"""

from __future__ import annotations

from repro.costing.profile import QueryProfile, TableAccess
from repro.designers.base import ColumnarAdapter, Designer
from repro.designers.greedy import evaluate_candidates, greedy_select
from repro.engine.design import PhysicalDesign
from repro.engine.projection import Projection, SortColumn
from repro.workload.workload import Workload

#: Sort keys longer than this add negligible prefix benefit.
MAX_SORT_DEPTH = 4


def _ordered_columns(access: TableAccess, sort_key: tuple[str, ...], schema_order: list[str]) -> tuple[str, ...]:
    """Projection column list: sort key first, the rest in table order."""
    rest = [c for c in schema_order if c in access.needed_columns and c not in sort_key]
    return tuple(sort_key) + tuple(rest)


def _filter_first_sort(access: TableAccess) -> tuple[str, ...]:
    """Sort key optimized for the filters: most selective equalities first,
    then one range column.  Deduplicated — a query may carry several
    predicates on one column."""
    eq = sorted(access.eq_selectivity, key=lambda item: item[1])
    key = list(dict.fromkeys(name for name, _ in eq))[:MAX_SORT_DEPTH]
    if len(key) < MAX_SORT_DEPTH:
        rng = sorted(access.range_selectivity, key=lambda item: item[1])
        for name, _ in rng:
            if name not in key:
                key.append(name)
                break
    return tuple(key)


def _group_first_sort(profile: QueryProfile) -> tuple[str, ...]:
    """Sort key optimized for streaming aggregation: group columns first,
    then the filter columns."""
    key = list(dict.fromkeys(profile.group_by))[:MAX_SORT_DEPTH]
    for name, _ in sorted(profile.anchor.eq_selectivity, key=lambda item: item[1]):
        if name not in key and len(key) < MAX_SORT_DEPTH:
            key.append(name)
    return tuple(key)


#: Merged candidates: templates on one table whose column sets differ by at
#: most this many columns are clustered into one union projection.
MERGE_RADIUS = 10
#: Union projections wider than this are not proposed (they approach the
#: super-projection and stop paying for themselves).
MAX_MERGED_WIDTH = 20


class ColumnarNominalDesigner(Designer):
    """Greedy budget-constrained projection selection (DBD-style).

    Besides exact per-template candidates, the designer proposes *merged*
    candidates — union projections over clusters of similar templates —
    just as production designers consider multi-query candidates.  On a
    single stable workload the greedy prefers the narrow exact candidates
    (same benefit, fewer bytes); merged candidates win only when many
    related templates carry weight simultaneously, which is precisely what
    CliffGuard's moved workloads create.
    """

    name = "ExistingDesigner"

    def __init__(
        self,
        adapter: ColumnarAdapter,
        max_structures: int | None = None,
        merge_radius: int = MERGE_RADIUS,
    ):
        self.adapter = adapter
        self.max_structures = max_structures
        self.merge_radius = merge_radius

    # -- candidate generation ------------------------------------------------------

    def generate_candidates(self, workload: Workload) -> list[Projection]:
        """Per-template candidates plus merged cluster candidates."""
        seen: set[Projection] = set()
        candidates: list[Projection] = []
        schema = self.adapter.schema
        # Anchor accesses collected for the merged-candidate clustering
        # pass: (access, weight) pairs.
        anchor_accesses: list[tuple[TableAccess, float]] = []

        def add(projection: Projection) -> None:
            if projection not in seen:
                seen.add(projection)
                candidates.append(projection)

        for query in workload.collapsed():
            try:
                profile = self.adapter.profile(query.sql)
            except ValueError:
                continue
            for access in profile.tables:
                if not access.needed_columns:
                    continue
                table = schema.tables.get(access.table)
                if table is None:
                    continue
                # A projection only ever beats the super-projection through
                # its sort prefix; an access with no filters and no
                # grouping cannot benefit, so propose nothing for it.
                has_filters = bool(access.eq_selectivity or access.range_selectivity)
                has_grouping = access is profile.anchor and bool(profile.group_by)
                if not has_filters and not has_grouping:
                    continue
                order = table.column_names
                filter_key = _filter_first_sort(access)
                if not filter_key and has_grouping:
                    filter_key = tuple(profile.group_by[:1])
                if filter_key:
                    add(
                        Projection(
                            table=access.table,
                            columns=_ordered_columns(access, filter_key, order),
                            sort_columns=tuple(SortColumn(c) for c in filter_key),
                        )
                    )
                if access is profile.anchor and profile.group_by:
                    group_key = _group_first_sort(profile)
                    if group_key:
                        add(
                            Projection(
                                table=access.table,
                                columns=_ordered_columns(access, group_key, order),
                                sort_columns=tuple(SortColumn(c) for c in group_key),
                            )
                        )
                if access is profile.anchor:
                    anchor_accesses.append((access, query.frequency))

        # Cluster heaviest-first so high-weight queries seed the clusters
        # and their relatives coalesce around them (ordering matters for a
        # single-pass agglomeration).
        clusters: dict[str, list[dict]] = {}
        for access, weight in sorted(anchor_accesses, key=lambda item: -item[1]):
            self._note_cluster(clusters, access, weight)

        for table_name, table_clusters in clusters.items():
            order = schema.table(table_name).column_names
            for cluster in table_clusters:
                if cluster["members"] < 2:
                    continue
                # One merged variant per plausible leading filter column: in
                # a columnar engine all of a projection's benefit is in its
                # sort prefix, so robustness against a drifting filter
                # column means owning a variant sorted by each likely one.
                for sort_key in self._cluster_sort_keys(cluster):
                    columns = self._trimmed_columns(cluster, sort_key)
                    ordered = tuple(sort_key) + tuple(
                        c for c in order if c in columns and c not in sort_key
                    )
                    add(
                        Projection(
                            table=table_name,
                            columns=ordered,
                            sort_columns=tuple(SortColumn(c) for c in sort_key),
                        )
                    )
        return candidates

    def _note_cluster(self, clusters: dict, access: TableAccess, weight: float) -> None:
        """Accumulate this access into a same-table column cluster.

        A query joins a cluster when its column set is close to the
        cluster's (symmetric difference within :attr:`merge_radius`) and
        the union stays within :data:`MAX_MERGED_WIDTH`; a query that can
        join nowhere seeds a new cluster.  Per-column weights are tracked
        so emission can trim oversized unions back to the columns that
        carry the mass.
        """
        table_clusters = clusters.setdefault(access.table, [])
        for cluster in table_clusters:
            union = cluster["columns"] | access.needed_columns
            symmetric = len(cluster["columns"] ^ access.needed_columns)
            if symmetric <= self.merge_radius and len(union) <= MAX_MERGED_WIDTH:
                cluster["columns"] = union
                cluster["members"] += 1
                for name in access.needed_columns:
                    cluster["col_weight"][name] = (
                        cluster["col_weight"].get(name, 0.0) + weight
                    )
                for name, sel in access.eq_selectivity:
                    entry = cluster["eq"].setdefault(name, [0.0, sel])
                    entry[0] += weight
                for name, sel in access.range_selectivity:
                    entry = cluster["range"].setdefault(name, [0.0, sel])
                    entry[0] += weight
                return
        table_clusters.append(
            {
                "columns": set(access.needed_columns),
                "members": 1,
                "col_weight": {name: weight for name in access.needed_columns},
                "eq": {name: [weight, sel] for name, sel in access.eq_selectivity},
                "range": {name: [weight, sel] for name, sel in access.range_selectivity},
            }
        )

    @staticmethod
    def _trimmed_columns(cluster: dict, sort_key: tuple[str, ...]) -> set[str]:
        """The cluster's top-weight columns (sort key always kept)."""
        columns = set(sort_key)
        by_weight = sorted(
            cluster["col_weight"].items(), key=lambda item: -item[1]
        )
        for name, _ in by_weight:
            if len(columns) >= MAX_MERGED_WIDTH:
                break
            columns.add(name)
        return columns

    #: Merged variants proposed per cluster (one leading sort column each).
    MERGED_VARIANTS = 6

    def _cluster_sort_keys(self, cluster: dict) -> list[tuple[str, ...]]:
        """Sort keys for a cluster's merged variants.

        One key per top-weighted equality column (that column leading, the
        other top columns following, then the heaviest range column); plus
        a range-led variant when the cluster is range-dominated.
        """
        eq = sorted(
            cluster["eq"].items(), key=lambda item: (-item[1][0], item[1][1])
        )
        rng = sorted(
            cluster["range"].items(), key=lambda item: (-item[1][0], item[1][1])
        )
        eq_names = list(dict.fromkeys(name for name, _ in eq))[: self.MERGED_VARIANTS]
        # A column can carry both equality and range predicates across the
        # cluster's queries; keep each name once.
        range_name = next((name for name, _ in rng if name not in eq_names), None)
        keys: list[tuple[str, ...]] = []
        for leader in eq_names:
            tail = [c for c in eq_names if c != leader][: MAX_SORT_DEPTH - 1]
            key = [leader] + tail
            if range_name and range_name not in key and len(key) < MAX_SORT_DEPTH:
                key.append(range_name)
            keys.append(tuple(dict.fromkeys(key)))
        if range_name and (not eq_names or len(keys) < self.MERGED_VARIANTS):
            key = [range_name] + eq_names[: MAX_SORT_DEPTH - 1]
            keys.append(tuple(dict.fromkeys(key)))
        if not keys and cluster["columns"]:
            keys.append((sorted(cluster["columns"])[0],))
        return keys

    # -- the designer ---------------------------------------------------------------

    def design(self, workload: Workload) -> PhysicalDesign:
        """Greedy selection of candidate projections under the budget."""
        candidates = self.generate_candidates(workload)
        if not candidates:
            return PhysicalDesign.empty()
        evaluation = evaluate_candidates(self.adapter, workload, candidates)
        chosen = greedy_select(
            evaluation, self.adapter.budget_bytes, max_structures=self.max_structures
        )
        return PhysicalDesign(frozenset(chosen))
