"""OptimalLocalSearchDesigner (paper baseline 5).

Like :class:`~repro.designers.majority_vote.MajorityVoteDesigner` it
samples the Γ-neighborhood, but instead of voting it takes the **union of
all neighbor queries** as a single representative of the future workload
``W̄`` and solves an integer linear program: pick structures maximizing the
total (independently computed) benefit on ``W̄`` subject to the byte
budget — a knapsack.  We solve the LP relaxation with ``scipy`` and round
by benefit density (for a knapsack, this matches the classic greedy
2-approximation, which is also how the academic ILP formulations the paper
cites are implemented in practice).

The known weakness — faithfully reproduced — is that independent per-
structure benefits over-count overlapping structures, which is why the
paper finds this baseline can trail even the plain nominal designer.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.designers.base import DesignAdapter, Designer
from repro.designers.greedy import evaluate_candidates
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.workload import Workload


class OptimalLocalSearchDesigner(Designer):
    """Union-of-neighbors representative workload + budgeted ILP."""

    name = "OptimalLocalSearchDesigner"

    def __init__(
        self,
        nominal,  # a nominal designer exposing generate_candidates()
        adapter: DesignAdapter,
        sampler: NeighborhoodSampler,
        gamma: float,
        n_samples: int = 20,
    ):
        self.nominal = nominal
        self.adapter = adapter
        self.sampler = sampler
        self.gamma = gamma
        self.n_samples = n_samples

    def design(self, workload: Workload):
        """Design for the union of the Γ-neighborhood."""
        neighbors = self.sampler.sample(workload, self.gamma, self.n_samples)
        representative = workload
        for neighbor in neighbors:
            representative = representative.merged_with(neighbor)
        representative = representative.collapsed()

        candidates = self.nominal.generate_candidates(representative)
        if not candidates:
            return self.adapter.empty_design()
        evaluation = evaluate_candidates(self.adapter, representative, candidates)

        # Independent per-structure benefit: b_c = Σ_q w_q max(0, base_q − cost_cq).
        improvements = np.maximum(
            evaluation.base_costs[None, :] - evaluation.matrix, 0.0
        )
        improvements[~np.isfinite(improvements)] = 0.0
        benefits = improvements @ evaluation.weights
        sizes = evaluation.sizes
        budget = float(self.adapter.budget_bytes)

        usable = benefits > 0
        if not usable.any():
            return self.adapter.empty_design()

        # LP relaxation of the knapsack: max b·x, s.t. s·x ≤ B, 0 ≤ x ≤ 1.
        result = linprog(
            c=-benefits[usable],
            A_ub=sizes[usable][None, :],
            b_ub=[budget],
            bounds=[(0.0, 1.0)] * int(usable.sum()),
            method="highs",
        )
        order: list[int]
        usable_indices = np.flatnonzero(usable)
        if result.status == 0:
            # Round by LP weight, ties broken by density.
            density = benefits[usable] / np.maximum(sizes[usable], 1.0)
            order = [
                int(usable_indices[i])
                for i in np.lexsort((-density, -result.x))
            ]
        else:  # pragma: no cover - solver failure fallback
            density = benefits / np.maximum(sizes, 1.0)
            order = [int(i) for i in np.argsort(-density) if usable[i]]

        chosen = []
        remaining = budget
        for index in order:
            if benefits[index] <= 0:
                continue
            if sizes[index] <= remaining:
                chosen.append(evaluation.candidates[index])
                remaining -= float(sizes[index])
        return self.adapter.make_design(chosen)
