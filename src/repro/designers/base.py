"""Designer interface and engine adapters.

The paper's key design principle (Section 2) is that CliffGuard treats the
existing designer — and the database — as a **black box**: it only needs to
(1) invoke the designer on a workload, (2) evaluate a workload's cost under
a design, and (3) respect the storage budget.  :class:`DesignAdapter`
captures exactly that surface for each engine, which is what lets the same
CliffGuard implementation drive both the columnar engine and the row store
(as the paper drove both Vertica and DBMS-X unmodified).
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

from repro.catalog.schema import Schema
from repro.costing.profile import QueryProfile
from repro.costing.report import WorkloadCostReport
from repro.costing.service import CostEvaluationService, CostModel
from repro.engine.design import PhysicalDesign
from repro.engine.optimizer import ColumnarCostModel
from repro.engine.projection import Projection
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.design import SampleDesign, StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.workload.workload import Workload

#: Vertica auto-picked a 50 GB budget for the paper's 151 GB dataset; we
#: default to the same roughly one-third-of-data ratio.
DEFAULT_BUDGET_FRACTION = 0.5


def default_budget_bytes(schema: Schema, fraction: float = DEFAULT_BUDGET_FRACTION) -> int:
    """A storage budget proportional to the raw data size."""
    total = sum(t.row_count * t.row_bytes for t in schema.tables.values())
    return int(total * fraction)


class Designer(abc.ABC):
    """A physical designer: workload in, design out."""

    #: Display name used in reports (set per instance or subclass).
    name: str = "designer"

    #: Whether the designer learns from :meth:`observe` feedback.  The
    #: harnesses use this to decide when per-window observed costs are
    #: worth recording, and the serve daemon to decide whether re-designs
    #: must run in-process (a background worker would lose the learning).
    learns_online: bool = False

    @abc.abstractmethod
    def design(self, workload: Workload):
        """Produce a design for ``workload`` within the budget."""

    def observe(self, window: Workload, design, observed_costs) -> None:
        """Feedback hook: the costs actually observed for one window.

        Called by the replay harness after each window evaluation and by
        the serve daemon at each window boundary, with the ``design``
        that served the window and ``observed_costs`` mapping SQL text
        to the recorded per-query cost.  The default is a no-op; online
        learners (``learns_online = True``) override it to update their
        model.  Implementations must be deterministic given the call
        sequence — the kill-resume bit-identity contract covers them.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class DesignAdapter(abc.ABC):
    """The black-box engine surface CliffGuard and the baselines need.

    Every adapter speaks to its engine through the shared
    :class:`~repro.costing.service.CostModel` protocol and routes all
    what-if evaluation through one
    :class:`~repro.costing.service.CostEvaluationService`, so the memo
    cache, batched neighborhood evaluation, and instrumentation are
    common across the columnar, row-store, and samples substrates
    rather than re-implemented per engine.
    """

    def __init__(
        self,
        cost_model: CostModel,
        budget_bytes: int,
        costing: CostEvaluationService | None = None,
    ):
        self.cost_model = cost_model
        self.budget_bytes = budget_bytes
        self.costing = (
            costing if costing is not None else CostEvaluationService(cost_model)
        )

    @property
    def schema(self) -> Schema:
        return self.cost_model.schema

    @abc.abstractmethod
    def empty_design(self):
        """The design with no auxiliary structures."""

    @abc.abstractmethod
    def make_design(self, structures: Iterable):
        """Bundle individual structures into a design object."""

    @abc.abstractmethod
    def structures(self, design) -> list:
        """The individual structures inside a design."""

    @abc.abstractmethod
    def structure_size(self, structure) -> int:
        """Estimated bytes of one structure."""

    @abc.abstractmethod
    def structure_cost(self, profile: QueryProfile, structure) -> float | None:
        """Query cost when the anchor is served by ``structure`` alone
        (``None`` when the structure cannot serve the query)."""

    @abc.abstractmethod
    def design_price(self, design) -> int:
        """Total bytes of a design (the paper's ``price(D)``)."""

    def profile(self, sql: str) -> QueryProfile:
        """Schema-resolved profile for one query."""
        return self.cost_model.profile(sql)

    def query_cost(self, sql_or_profile, design) -> float:
        """Estimated latency of one query under ``design`` (memoized)."""
        return self.costing.query_cost(sql_or_profile, design)

    def query_costs(self, sqls, design) -> dict[str, float]:
        """Batched per-query latencies under ``design`` (deduplicated)."""
        return self.costing.query_costs(sqls, design)

    def workload_cost(self, workload: Workload, design) -> WorkloadCostReport:
        """Latency report of a workload under ``design`` (memoized)."""
        return self.costing.workload_cost(workload, design)

    def evaluate_neighborhood(
        self, designs, workloads, reference=None
    ) -> list[list[WorkloadCostReport]]:
        """Batched ``designs × workloads`` reports with shared-query dedup.

        ``reference`` is an optional already-priced design to delta
        against (CliffGuard's incumbent); results are bit-identical
        with or without it."""
        return self.costing.evaluate_neighborhood(
            designs, workloads, reference=reference
        )

    def workload_costs_batch(self, designs, workload) -> list[WorkloadCostReport]:
        """One workload under many designs, vectorized when possible."""
        return self.costing.workload_costs_batch(designs, workload)


class ColumnarAdapter(DesignAdapter):
    """Adapter for the Vertica-like columnar engine."""

    def __init__(
        self,
        cost_model: ColumnarCostModel,
        budget_bytes: int | None = None,
        costing: CostEvaluationService | None = None,
    ):
        super().__init__(
            cost_model,
            budget_bytes if budget_bytes is not None else default_budget_bytes(cost_model.schema),
            costing,
        )

    def empty_design(self) -> PhysicalDesign:
        return PhysicalDesign.empty()

    def make_design(self, structures: Iterable[Projection]) -> PhysicalDesign:
        return PhysicalDesign(frozenset(structures))

    def structures(self, design: PhysicalDesign) -> list[Projection]:
        return list(design)

    def structure_size(self, structure: Projection) -> int:
        return structure.size_bytes(self.schema.table(structure.table))

    def structure_cost(self, profile: QueryProfile, structure: Projection) -> float | None:
        return self.cost_model.projection_cost(profile, structure)

    def design_price(self, design: PhysicalDesign) -> int:
        return design.price(self.schema)


class RowstoreAdapter(DesignAdapter):
    """Adapter for the DBMS-X-like row store."""

    def __init__(
        self,
        cost_model: RowstoreCostModel,
        budget_bytes: int | None = None,
        costing: CostEvaluationService | None = None,
    ):
        super().__init__(
            cost_model,
            budget_bytes if budget_bytes is not None else default_budget_bytes(cost_model.schema),
            costing,
        )

    def empty_design(self) -> RowstoreDesign:
        return RowstoreDesign.empty()

    def make_design(
        self, structures: Iterable[Index | MaterializedView]
    ) -> RowstoreDesign:
        return RowstoreDesign.of(*structures)

    def structures(self, design: RowstoreDesign) -> list:
        return list(design)

    def structure_size(self, structure: Index | MaterializedView) -> int:
        table = self.schema.table(structure.table)
        if isinstance(structure, MaterializedView):
            return structure.size_bytes(table, self.cost_model.statistics[structure.table])
        return structure.size_bytes(table)

    def structure_cost(
        self, profile: QueryProfile, structure: Index | MaterializedView
    ) -> float | None:
        return self.cost_model.structure_cost(profile, structure)

    def design_price(self, design: RowstoreDesign) -> int:
        return design.price(self.schema, self.cost_model.statistics)


class SamplesAdapter(DesignAdapter):
    """Adapter for the approximate-database (stratified samples) engine."""

    def __init__(
        self,
        cost_model: SamplesCostModel,
        budget_bytes: int | None = None,
        costing: CostEvaluationService | None = None,
    ):
        super().__init__(
            cost_model,
            budget_bytes
            if budget_bytes is not None
            else default_budget_bytes(cost_model.schema, 0.1),
            costing,
        )

    def empty_design(self) -> SampleDesign:
        return SampleDesign.empty()

    def make_design(self, structures: Iterable[StratifiedSample]) -> SampleDesign:
        return SampleDesign.of(*structures)

    def structures(self, design: SampleDesign) -> list[StratifiedSample]:
        return list(design)

    def structure_size(self, structure: StratifiedSample) -> int:
        return structure.size_bytes(
            self.schema.table(structure.table),
            self.cost_model.statistics[structure.table],
        )

    def structure_cost(self, profile, structure: StratifiedSample) -> float | None:
        return self.cost_model.sample_cost(profile, structure)

    def design_price(self, design: SampleDesign) -> int:
        return design.price(self.schema, self.cost_model.statistics)
