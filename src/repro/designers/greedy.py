"""Shared benefit-per-byte greedy selection.

Both nominal designers ("ExistingDesigner" in the paper) follow the classic
what-if advisor loop: generate candidate structures from the workload's
templates, price every (query, candidate) pair with the optimizer's what-if
interface, then greedily pick the structure with the best marginal benefit
per byte until the budget is exhausted.  The paper notes existing designers
"often use heuristics or greedy strategies [55], which lead to
approximations of the nominal optima" — this module is that strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.designers.base import DesignAdapter
from repro.workload.workload import Workload


@dataclass
class CandidateEvaluation:
    """Pre-priced (query × candidate) matrix for greedy selection."""

    candidates: list
    #: Distinct SQL strings, aligned with the cost arrays.
    sqls: list[str]
    #: Frequency weight per query.
    weights: np.ndarray
    #: Cost of each query under the empty design.
    base_costs: np.ndarray
    #: ``matrix[c, q]``: query cost with only candidate ``c`` deployed
    #: (``inf`` when the candidate cannot serve the query).
    matrix: np.ndarray
    #: Estimated bytes per candidate.
    sizes: np.ndarray


def evaluate_candidates(
    adapter: DesignAdapter, workload: Workload, candidates: list
) -> CandidateEvaluation:
    """Price every candidate against every distinct query of ``workload``.

    Queries that do not parse or reference unknown tables are skipped (the
    paper's trace had a large such fraction); they cannot benefit from any
    design and would only add a constant to every column of the matrix.

    When the costing service has a vectorized kernel for the adapter's
    model, the whole (candidates × queries) matrix is priced in a handful
    of numpy ops (see :mod:`repro.costing.kernel`); the scalar loop below
    is the reference path and stays bit-identical to it.
    """
    collapsed = workload.collapsed()
    sqls: list[str] = []
    weights: list[float] = []
    profiles = []
    for query in collapsed:
        try:
            profiles.append(adapter.profile(query.sql))
        except ValueError:
            continue
        sqls.append(query.sql)
        weights.append(query.frequency)

    service = adapter.costing
    if profiles and candidates and getattr(service, "kernel", None) is not None:
        base, matrix = service.candidate_costs(
            profiles, candidates, adapter.make_design
        )
    else:
        empty = adapter.empty_design()
        base = np.array(
            [adapter.query_cost(p, empty) for p in profiles], dtype=np.float64
        )
        matrix = np.full((len(candidates), len(profiles)), np.inf)
        for c, candidate in enumerate(candidates):
            single = adapter.make_design([candidate])
            for q, profile in enumerate(profiles):
                if all(candidate.table != t.table for t in profile.tables):
                    # A structure on a table the query never touches cannot
                    # change any access path: the cost is the base cost.
                    matrix[c, q] = base[q]
                    continue
                anchor_only = adapter.structure_cost(profile, candidate)
                if (
                    anchor_only is None
                    and profile.anchor.table == candidate.table
                    and not profile.is_write
                ):
                    continue  # cannot serve this query at all
                # Writes are never *served* by a structure, but a same-table
                # structure still changes their cost (maintenance), so they
                # are priced rather than left at inf.
                matrix[c, q] = adapter.query_cost(profile, single)
    sizes = np.array([adapter.structure_size(c) for c in candidates], dtype=np.float64)
    return CandidateEvaluation(
        candidates=candidates,
        sqls=sqls,
        weights=np.array(weights, dtype=np.float64),
        base_costs=base,
        matrix=matrix,
        sizes=sizes,
    )


def greedy_select(
    evaluation: CandidateEvaluation,
    budget_bytes: int,
    max_structures: int | None = None,
    min_benefit_ms: float = 1e-6,
) -> list:
    """Greedy benefit-per-byte selection under a byte budget.

    Returns the chosen candidate structures.  The marginal benefit of a
    candidate is computed against the running per-query best costs, so
    overlapping candidates are not double-counted.
    """
    if not evaluation.candidates or evaluation.base_costs.size == 0:
        return []
    current = evaluation.base_costs.copy()
    weights = evaluation.weights
    matrix = evaluation.matrix
    sizes = evaluation.sizes
    remaining = float(budget_bytes)
    chosen: list[int] = []
    available = np.ones(len(evaluation.candidates), dtype=bool)

    # benefit[c] = Σ_q w_q · max(0, current_q − matrix[c, q]).  The
    # improvements array is materialized once and updated in place per
    # pick, for only the queries the pick improved: a column whose
    # ``current_q`` did not move keeps byte-identical improvements, so
    # the dot products — and therefore the selection order — match the
    # full rebuild exactly.
    improvements = np.maximum(current[None, :] - matrix, 0.0)
    improvements[~np.isfinite(improvements)] = 0.0

    while True:
        if max_structures is not None and len(chosen) >= max_structures:
            break
        affordable = available & (sizes <= remaining)
        if not affordable.any():
            break
        benefits = improvements @ weights
        benefits[~affordable] = -np.inf
        density = benefits / np.maximum(sizes, 1.0)
        pick = int(np.argmax(density))
        if benefits[pick] <= min_benefit_ms:
            break
        chosen.append(pick)
        available[pick] = False
        remaining -= float(sizes[pick])
        new_current = np.minimum(
            current, np.where(np.isfinite(matrix[pick]), matrix[pick], np.inf)
        )
        touched = np.flatnonzero(new_current < current)
        if touched.size:
            delta = np.maximum(new_current[touched][None, :] - matrix[:, touched], 0.0)
            delta[~np.isfinite(delta)] = 0.0
            improvements[:, touched] = delta
        current = new_current
    return [evaluation.candidates[i] for i in chosen]
