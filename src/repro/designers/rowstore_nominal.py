"""The DBMS-X-style nominal index/view advisor.

The paper observes that DBMS-X's designer employs anti-overfitting
heuristics "such as omitting workload details" (workload compression), so
its designs degrade less sharply than Vertica's under drift — yet still far
more than CliffGuard's.  This advisor reproduces both halves:

* **Workload compression**: templates whose column sets nearly coincide are
  merged into a generalized template (their union) before candidate
  generation, so recommended structures are slightly broader than any one
  query needs.
* **Candidates**: composite indices keyed on the filter columns (with a
  covering variant) and materialized aggregate views keyed on the
  grouping + filter columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costing.profile import QueryProfile
from repro.designers.base import Designer, RowstoreAdapter
from repro.designers.greedy import evaluate_candidates, greedy_select
from repro.rowstore.design import RowstoreDesign
from repro.rowstore.index import Index
from repro.rowstore.matview import MaterializedView
from repro.workload.workload import Workload

#: Templates whose union column sets differ by at most this many columns
#: are merged by workload compression.
COMPRESSION_RADIUS = 2
#: Indices longer than this stop paying for themselves.
MAX_INDEX_WIDTH = 4
#: Covering indices wider than this are not proposed.
MAX_COVERING_WIDTH = 6
#: Views whose estimated row count exceeds this fraction of the base table
#: rows are pointless and are not proposed.
MAX_VIEW_FRACTION = 0.25


@dataclass
class _CompressedTemplate:
    """A (possibly merged) template: unions of per-role column sets."""

    table: str
    eq_columns: list[str]  # ordered by selectivity (most selective first)
    range_columns: list[str]
    group_columns: list[str]
    measure_columns: list[str]
    select_columns: set[str]
    weight: float
    has_aggregates: bool

    @property
    def union(self) -> frozenset[str]:
        return (
            frozenset(self.eq_columns)
            | frozenset(self.range_columns)
            | frozenset(self.group_columns)
            | frozenset(self.measure_columns)
            | frozenset(self.select_columns)
        )


def _template_of(profile: QueryProfile, weight: float) -> _CompressedTemplate:
    eq = list(
        dict.fromkeys(
            name
            for name, _ in sorted(profile.anchor.eq_selectivity, key=lambda i: i[1])
        )
    )
    rng = [
        name
        for name, _ in sorted(profile.anchor.range_selectivity, key=lambda i: i[1])
        if name not in eq
    ]
    rng = list(dict.fromkeys(rng))
    measures = [a.column for a in profile.aggregates if a.column is not None]
    return _CompressedTemplate(
        table=profile.anchor.table,
        eq_columns=eq,
        range_columns=rng,
        group_columns=list(profile.group_by),
        measure_columns=list(dict.fromkeys(measures)),
        select_columns=set(profile.select_columns),
        weight=weight,
        has_aggregates=profile.has_aggregates,
    )


def _merge(into: _CompressedTemplate, other: _CompressedTemplate) -> None:
    for name in other.eq_columns:
        if name not in into.eq_columns:
            into.eq_columns.append(name)
    for name in other.range_columns:
        if name not in into.range_columns:
            into.range_columns.append(name)
    for name in other.group_columns:
        if name not in into.group_columns:
            into.group_columns.append(name)
    for name in other.measure_columns:
        if name not in into.measure_columns:
            into.measure_columns.append(name)
    into.select_columns |= other.select_columns
    into.weight += other.weight
    into.has_aggregates = into.has_aggregates or other.has_aggregates


def compress_templates(
    templates: list[_CompressedTemplate], radius: int = COMPRESSION_RADIUS
) -> list[_CompressedTemplate]:
    """Merge near-identical templates (the DBMS-X anti-overfit heuristic)."""
    merged: list[_CompressedTemplate] = []
    for template in sorted(templates, key=lambda t: -t.weight):
        target = None
        for existing in merged:
            if existing.table != template.table:
                continue
            if len(existing.union ^ template.union) <= radius:
                target = existing
                break
        if target is None:
            merged.append(template)
        else:
            _merge(target, template)
    return merged


class RowstoreNominalDesigner(Designer):
    """Greedy budget-constrained index + view selection (advisor-style)."""

    name = "ExistingDesigner"

    def __init__(
        self,
        adapter: RowstoreAdapter,
        compression_radius: int = COMPRESSION_RADIUS,
        max_structures: int | None = None,
    ):
        self.adapter = adapter
        self.compression_radius = compression_radius
        self.max_structures = max_structures

    # -- candidate generation -------------------------------------------------------

    def generate_candidates(self, workload: Workload) -> list[Index | MaterializedView]:
        """Index and view candidates from compressed templates."""
        templates: list[_CompressedTemplate] = []
        for query in workload.collapsed():
            try:
                profile = self.adapter.profile(query.sql)
            except ValueError:
                continue
            templates.append(_template_of(profile, query.frequency))
        templates = compress_templates(templates, self.compression_radius)

        seen: set = set()
        candidates: list[Index | MaterializedView] = []

        def add(structure: Index | MaterializedView) -> None:
            if structure not in seen:
                seen.add(structure)
                candidates.append(structure)

        for template in templates:
            # A query can carry several predicates on one column (mutated
            # workloads do); keep each column once.
            filter_key = list(
                dict.fromkeys(template.eq_columns + template.range_columns)
            )[:MAX_INDEX_WIDTH]
            if filter_key:
                add(Index(table=template.table, columns=tuple(filter_key)))
                covering = filter_key + [
                    c
                    for c in sorted(
                        template.select_columns
                        | set(template.group_columns)
                        | set(template.measure_columns)
                    )
                    if c not in filter_key
                ]
                if len(covering) <= MAX_COVERING_WIDTH and len(covering) > len(filter_key):
                    add(Index(table=template.table, columns=tuple(covering)))
            if template.has_aggregates and template.measure_columns:
                group = list(
                    dict.fromkeys(
                        template.group_columns
                        + template.eq_columns
                        + template.range_columns
                    )
                )
                if group:
                    view = MaterializedView(
                        table=template.table,
                        group_columns=tuple(group),
                        measure_columns=tuple(
                            m for m in template.measure_columns if m not in group
                        ),
                    )
                    stats = self.adapter.cost_model.statistics.get(template.table)
                    if stats is not None and view.estimated_rows(stats) <= max(
                        1, int(stats.row_count * MAX_VIEW_FRACTION)
                    ):
                        add(view)
        return candidates

    # -- the designer ------------------------------------------------------------------

    def design(self, workload: Workload) -> RowstoreDesign:
        """Greedy selection of candidate structures under the budget."""
        candidates = self.generate_candidates(workload)
        if not candidates:
            return RowstoreDesign.empty()
        evaluation = evaluate_candidates(self.adapter, workload, candidates)
        chosen = greedy_select(
            evaluation, self.adapter.budget_bytes, max_structures=self.max_structures
        )
        return RowstoreDesign.of(*chosen)
