"""NoDesign: the empty design, providing the latency upper bound.

With no auxiliary structures, every query scans the super-projection
(columnar) or the base table (row store) — the paper's Section 6.1 uses
this as the ceiling against which all designers are measured.
"""

from __future__ import annotations

from repro.designers.base import DesignAdapter, Designer
from repro.workload.workload import Workload


class NoDesign(Designer):
    """Always returns the empty design."""

    name = "NoDesign"

    def __init__(self, adapter: DesignAdapter):
        self.adapter = adapter

    def design(self, workload: Workload):
        return self.adapter.empty_design()
