"""The designer zoo: the baselines of the paper's Section 6.1.

* :class:`NoDesign` — empty design (latency upper bound),
* :class:`ColumnarNominalDesigner` — the Vertica-DBD-style greedy
  projection designer ("ExistingDesigner" for the columnar engine),
* :class:`RowstoreNominalDesigner` — the DBMS-X-style index/view advisor
  with workload compression ("ExistingDesigner" for the row store),
* :class:`FutureKnowingDesigner` — the oracle that designs for the window
  it will be evaluated on,
* :class:`MajorityVoteDesigner` — sensitivity-analysis voting heuristic,
* :class:`OptimalLocalSearchDesigner` — union-of-neighbors + ILP heuristic.

CliffGuard itself lives in :mod:`repro.core.cliffguard`; it wraps any of
the nominal designers through the same :class:`DesignAdapter` interface.
"""

from repro.designers import registry
from repro.designers.base import (
    ColumnarAdapter,
    DesignAdapter,
    Designer,
    RowstoreAdapter,
    SamplesAdapter,
    default_budget_bytes,
)
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.future_knowing import FutureKnowingDesigner
from repro.designers.local_search import OptimalLocalSearchDesigner
from repro.designers.majority_vote import MajorityVoteDesigner
from repro.designers.no_design import NoDesign
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.designers.samples_nominal import SamplesNominalDesigner

__all__ = [
    "ColumnarAdapter",
    "ColumnarNominalDesigner",
    "DesignAdapter",
    "Designer",
    "FutureKnowingDesigner",
    "MajorityVoteDesigner",
    "NoDesign",
    "OptimalLocalSearchDesigner",
    "RowstoreAdapter",
    "RowstoreNominalDesigner",
    "SamplesAdapter",
    "SamplesNominalDesigner",
    "default_budget_bytes",
    "registry",
]
