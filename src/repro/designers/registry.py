"""Designer registry: one named factory per designer of Section 6.1.

Replaces the hand-maintained ``DESIGNER_ORDER`` list /
``build_designers`` dispatch pair in :mod:`repro.harness.experiments`
(both still work but emit :class:`DeprecationWarning`).  Factories are
registered under their paper display name in canonical display order;
:func:`get` builds one designer, :func:`build_all` the whole zoo.

A factory receives the shared wiring — adapter, nominal designer, Γ, the
neighborhood sampler factory — plus per-designer overrides, and returns
``(designer, sampler_or_None)``.  The sampler is surfaced so the replay
hooks can keep perturbation pools restricted to past queries.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

from repro.designers.base import DesignAdapter, Designer
from repro.designers.future_knowing import FutureKnowingDesigner
from repro.designers.local_search import OptimalLocalSearchDesigner
from repro.designers.majority_vote import MajorityVoteDesigner
from repro.designers.no_design import NoDesign
from repro.workload.sampler import NeighborhoodSampler

#: name -> factory(adapter, nominal, gamma, make_sampler, **cfg)
_FACTORIES: "OrderedDict[str, Callable]" = OrderedDict()


def register(name: str, factory: Callable, replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (appended to display order)."""
    if name in _FACTORIES and not replace:
        raise ValueError(f"designer {name!r} is already registered")
    _FACTORIES[name] = factory


def names() -> list[str]:
    """Registered designer names in canonical display order."""
    return list(_FACTORIES)


def validate_names(which: list[str]) -> list[str]:
    """Check a designer-name selection for duplicates and unknown names.

    Harness resume state and fan-out task sets are keyed by designer
    name, so a duplicated name would silently double-run a designer and
    corrupt the ``done``-keyed resume dict; both problems are rejected
    loudly here.  Returns ``which`` unchanged (as a list) for chaining.
    """
    seen: set[str] = set()
    for name in which:
        if name not in _FACTORIES:
            raise ValueError(
                f"unknown designer {name!r} (registered: {', '.join(_FACTORIES)})"
            )
        if name in seen:
            raise ValueError(
                f"duplicate designer {name!r} in selection {list(which)!r}: "
                "results and resume state are keyed by name"
            )
        seen.add(name)
    return list(which)


def get(
    name: str,
    adapter: DesignAdapter,
    nominal: Designer,
    gamma: float,
    make_sampler: Callable[[], NeighborhoodSampler] | None = None,
    **cfg,
) -> tuple[Designer, NeighborhoodSampler | None]:
    """Build one designer by registered name.

    ``make_sampler`` is called (at most once) by factories that explore a
    Γ-neighborhood; the sampler is returned alongside the designer so the
    caller can manage its perturbation pool.  ``cfg`` carries per-designer
    overrides (``n_samples``, ``max_iterations``, …).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown designer {name!r} (registered: {', '.join(_FACTORIES)})"
        ) from None
    return factory(adapter, nominal, gamma, make_sampler, **cfg)


def build_all(
    adapter: DesignAdapter,
    nominal: Designer,
    gamma: float,
    make_sampler: Callable[[], NeighborhoodSampler] | None = None,
    which: list[str] | None = None,
    **cfg,
) -> tuple[dict[str, Designer], list[NeighborhoodSampler]]:
    """Build the designer zoo (or the ``which`` subset) in display order."""
    designers: dict[str, Designer] = {}
    samplers: list[NeighborhoodSampler] = []
    for name in validate_names(which) if which is not None else names():
        designer, sampler = get(name, adapter, nominal, gamma, make_sampler, **cfg)
        designers[name] = designer
        if sampler is not None:
            samplers.append(sampler)
    return designers, samplers


# -- the Section 6.1 zoo -----------------------------------------------------------


def _require_sampler(name: str, make_sampler) -> NeighborhoodSampler:
    if make_sampler is None:
        raise ValueError(f"designer {name!r} needs a sampler factory (make_sampler)")
    return make_sampler()


def _no_design(adapter, nominal, gamma, make_sampler, **cfg):
    return NoDesign(adapter), None


def _future_knowing(adapter, nominal, gamma, make_sampler, **cfg):
    return FutureKnowingDesigner(nominal), None


def _existing(adapter, nominal, gamma, make_sampler, **cfg):
    return nominal, None


def _majority_vote(adapter, nominal, gamma, make_sampler, **cfg):
    sampler = _require_sampler("MajorityVoteDesigner", make_sampler)
    n_samples = cfg.get("n_samples", 20)
    return (
        MajorityVoteDesigner(nominal, adapter, sampler, gamma, n_samples=n_samples),
        sampler,
    )


def _local_search(adapter, nominal, gamma, make_sampler, **cfg):
    sampler = _require_sampler("OptimalLocalSearchDesigner", make_sampler)
    n_samples = cfg.get("n_samples", 20)
    return (
        OptimalLocalSearchDesigner(nominal, adapter, sampler, gamma, n_samples=n_samples),
        sampler,
    )


def _cliffguard(adapter, nominal, gamma, make_sampler, **cfg):
    # Imported lazily: repro.core.cliffguard imports repro.designers.base,
    # so a top-level import here would be circular when repro.core loads
    # first.
    from repro.core.cliffguard import CliffGuard

    sampler = _require_sampler("CliffGuard", make_sampler)
    kwargs = {
        key: value
        for key, value in cfg.items()
        if key not in ("n_samples", "max_iterations")
    }
    return (
        CliffGuard(
            nominal,
            adapter,
            sampler,
            gamma,
            n_samples=cfg.get("n_samples", 20),
            max_iterations=cfg.get("max_iterations", 5),
            **kwargs,
        ),
        sampler,
    )


def _bandit(adapter, nominal, gamma, make_sampler, **cfg):
    # Imported lazily for symmetry with CliffGuard (and to keep the
    # registry import light); the bandit needs no neighborhood sampler —
    # exploration lives in the UCB width, not in workload perturbation.
    from repro.designers.bandit import BanditDesigner

    kwargs = {
        key[len("bandit_"):]: value
        for key, value in cfg.items()
        if key.startswith("bandit_")
    }
    return BanditDesigner(nominal, adapter, **kwargs), None


register("NoDesign", _no_design)
register("FutureKnowingDesigner", _future_knowing)
register("ExistingDesigner", _existing)
register("MajorityVoteDesigner", _majority_vote)
register("OptimalLocalSearchDesigner", _local_search)
register("CliffGuard", _cliffguard)
register("BanditDesigner", _bandit)
