"""MajorityVoteDesigner: sensitivity-analysis voting (paper baseline 4).

Explores the same Γ-neighborhood as CliffGuard (perturbed workloads
``W¹..Wⁿ``), asks the nominal designer for an optimal design of **each**
perturbed workload, then keeps the structures that appear in the most
designs — the intuition being that a structure voted for by many neighbors
is more likely to survive workload change.  It shares CliffGuard's
neighborhood sampling but replaces the principled descent with counting,
which is exactly what the paper uses it to isolate.
"""

from __future__ import annotations

from collections import Counter

from repro.designers.base import DesignAdapter, Designer
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.workload import Workload


class MajorityVoteDesigner(Designer):
    """Structure voting across designs of perturbed workloads."""

    name = "MajorityVoteDesigner"

    def __init__(
        self,
        nominal: Designer,
        adapter: DesignAdapter,
        sampler: NeighborhoodSampler,
        gamma: float,
        n_samples: int = 20,
    ):
        self.nominal = nominal
        self.adapter = adapter
        self.sampler = sampler
        self.gamma = gamma
        self.n_samples = n_samples

    def design(self, workload: Workload):
        """Vote structures across the neighborhood's nominal designs."""
        neighborhoods = [workload] + self.sampler.sample(
            workload, self.gamma, self.n_samples
        )
        votes: Counter = Counter()
        sizes: dict = {}
        for neighbor in neighborhoods:
            design = self.nominal.design(neighbor)
            for structure in self.adapter.structures(design):
                votes[structure] += 1
                sizes.setdefault(structure, self.adapter.structure_size(structure))
        chosen = []
        remaining = float(self.adapter.budget_bytes)
        for structure, _count in votes.most_common():
            size = sizes[structure]
            if size <= remaining:
                chosen.append(structure)
                remaining -= size
        return self.adapter.make_design(chosen)
