"""Numpy-backed columnar storage.

A :class:`ColumnarTable` holds base column arrays; deploying a design
materializes :class:`MaterializedProjection` objects — the projection's
columns physically re-ordered by its sort key, exactly like Vertica sorts a
projection on disk.  String columns are dictionary-encoded (int64 codes plus
a decode array).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import Schema, Table
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.catalog.types import ColumnType
from repro.engine.design import PhysicalDesign
from repro.engine.projection import Projection, super_projection


@dataclass
class ColumnData:
    """One stored column: values plus an optional string dictionary."""

    values: np.ndarray
    dictionary: np.ndarray | None = None  # code -> string, for STRING columns

    def decode(self) -> np.ndarray:
        """Return string values for STRING columns, raw values otherwise."""
        if self.dictionary is None:
            return self.values
        return self.dictionary[self.values]

    def encode_literal(self, literal: object) -> object:
        """Map a query literal to the stored domain (string → code)."""
        if self.dictionary is None or not isinstance(literal, str):
            return literal
        matches = np.nonzero(self.dictionary == literal)[0]
        if matches.size == 0:
            return -1  # no such string: matches nothing
        return int(matches[0])


@dataclass
class MaterializedProjection:
    """A projection's data, sorted by its sort key."""

    projection: Projection
    columns: dict[str, ColumnData]
    row_count: int

    def sort_key_values(self) -> np.ndarray:
        """Values of the first sort column (the binary-search key)."""
        first = self.projection.sort_columns[0].name
        return self.columns[first].values


def _default_dictionary(ndv: int) -> np.ndarray:
    """Synthetic decode array for generated string codes."""
    return np.array([f"val_{i}" for i in range(ndv)], dtype=object)


class ColumnarTable:
    """Base data for one table plus its materialized projections."""

    def __init__(self, table: Table, data: dict[str, np.ndarray]):
        self.table = table
        missing = [c.name for c in table.columns if c.name not in data]
        if missing:
            raise ValueError(f"table {table.name!r}: missing data for {missing}")
        lengths = {arr.shape[0] for arr in data.values()}
        if len(lengths) > 1:
            raise ValueError(f"table {table.name!r}: ragged column lengths {lengths}")
        self.row_count = next(iter(lengths)) if lengths else 0
        self.columns: dict[str, ColumnData] = {}
        for column in table.columns:
            values = data[column.name]
            dictionary = None
            if column.type is ColumnType.STRING:
                ndv = int(values.max()) + 1 if values.size else 1
                dictionary = _default_dictionary(ndv)
            self.columns[column.name] = ColumnData(values=values, dictionary=dictionary)
        self.projections: dict[Projection, MaterializedProjection] = {}
        self._super = super_projection(table)
        self.materialize(self._super)

    @property
    def super_projection(self) -> MaterializedProjection:
        """The always-present all-columns projection."""
        return self.projections[self._super]

    def materialize(self, projection: Projection) -> MaterializedProjection:
        """Physically build ``projection`` (idempotent)."""
        if projection in self.projections:
            return self.projections[projection]
        if projection.table != self.table.name:
            raise ValueError(
                f"projection anchored on {projection.table!r}, table is {self.table.name!r}"
            )
        order = self._sort_order(projection)
        columns = {
            name: ColumnData(
                values=self.columns[name].values[order],
                dictionary=self.columns[name].dictionary,
            )
            for name in projection.columns
        }
        materialized = MaterializedProjection(
            projection=projection, columns=columns, row_count=self.row_count
        )
        self.projections[projection] = materialized
        return materialized

    def _sort_order(self, projection: Projection) -> np.ndarray:
        if not projection.sort_columns or self.row_count == 0:
            return np.arange(self.row_count)
        # np.lexsort sorts by the last key first, so reverse the sort spec.
        keys = []
        for sort_column in reversed(projection.sort_columns):
            values = self.columns[sort_column.name].values
            if not sort_column.ascending:
                values = -values if values.dtype != np.bool_ else ~values
            keys.append(values)
        return np.lexsort(keys)

    def measured_statistics(self) -> TableStatistics:
        """Statistics computed from the actual stored data."""
        return TableStatistics(
            row_count=self.row_count,
            columns={
                name: ColumnStatistics.measured(data.values.astype(np.float64))
                for name, data in self.columns.items()
            },
        )


class ColumnarDatabase:
    """All tables of one schema, with design deployment."""

    def __init__(self, schema: Schema, data: dict[str, dict[str, np.ndarray]]):
        self.schema = schema
        self.tables: dict[str, ColumnarTable] = {}
        for name, table in schema.tables.items():
            if name not in data:
                raise ValueError(f"no data supplied for table {name!r}")
            self.tables[name] = ColumnarTable(table, data[name])

    def table(self, name: str) -> ColumnarTable:
        """Look up a table's storage by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no such table: {name!r}") from None

    def deploy(self, design: PhysicalDesign) -> int:
        """Materialize every projection in ``design``; returns #built."""
        built = 0
        for projection in design:
            table = self.table(projection.table)
            if projection not in table.projections:
                table.materialize(projection)
                built += 1
        return built

    def measured_statistics(self) -> dict[str, TableStatistics]:
        """Measured statistics for every table (feeds the cost model)."""
        return {name: table.measured_statistics() for name, table in self.tables.items()}
