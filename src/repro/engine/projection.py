"""Vertica-style projections.

A projection materializes a subset of one table's columns, stored sorted by
an ordered sort key::

    CREATE PROJECTION p AS SELECT col1, ..., colN
    FROM anchor_table ORDER BY col1', ..., colK';

The design space is the paper's ``O(2^N · N!)`` per table: any column subset
in any sort order.  The *super-projection* contains every column (its sort
key is the first column by convention) and always exists — it is what
``NoDesign`` queries scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema, Table

#: Sorted, RLE-friendly columns compress better than unsorted ones; these
#: factors keep projection sizes (and therefore budgets) in a realistic
#: relationship to raw data size.
SORTED_COMPRESSION = 0.08
UNSORTED_COMPRESSION = 0.25


@dataclass(frozen=True)
class SortColumn:
    """One component of a projection's sort key."""

    name: str
    ascending: bool = True

    def __str__(self) -> str:
        return self.name if self.ascending else f"{self.name} DESC"


@dataclass(frozen=True)
class Projection:
    """An immutable projection definition (hashable; used as a design atom)."""

    table: str
    columns: tuple[str, ...]
    sort_columns: tuple[SortColumn, ...]
    is_super: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a projection must contain at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in projection on {self.table!r}")
        column_set = set(self.columns)
        for sort_column in self.sort_columns:
            if sort_column.name not in column_set:
                raise ValueError(
                    f"sort column {sort_column.name!r} not in projection columns"
                )

    @property
    def column_set(self) -> frozenset[str]:
        """Unordered view of the stored columns."""
        return frozenset(self.columns)

    @property
    def sort_key(self) -> tuple[str, ...]:
        """Sort column names, in order."""
        return tuple(s.name for s in self.sort_columns)

    def covers(self, needed: frozenset[str] | set[str]) -> bool:
        """True when every needed column is stored in this projection.

        This is the cliff of the paper's cost surface: a projection either
        covers a query's columns (fast path) or the query falls back to the
        super-projection (slow path) — there is no partial credit.
        """
        return needed <= self.column_set

    def size_bytes(self, table: Table, row_count: int | None = None) -> int:
        """Estimated on-disk size, accounting for sort-order compression."""
        rows = table.row_count if row_count is None else row_count
        sorted_names = set(self.sort_key)
        total = 0.0
        for name in self.columns:
            width = table.column(name).type.byte_width
            factor = SORTED_COMPRESSION if name in sorted_names else UNSORTED_COMPRESSION
            total += rows * width * factor
        return int(total)

    def to_sql(self) -> str:
        """Render the defining DDL (for logs and examples)."""
        cols = ", ".join(self.columns)
        order = ", ".join(str(s) for s in self.sort_columns)
        name = f"{self.table}_super" if self.is_super else f"{self.table}_proj"
        ddl = f"CREATE PROJECTION {name} AS SELECT {cols} FROM {self.table}"
        if order:
            ddl += f" ORDER BY {order}"
        return ddl

    def __str__(self) -> str:
        kind = "super" if self.is_super else "proj"
        return f"{kind}({self.table}: {','.join(self.columns)} / {','.join(self.sort_key)})"


def super_projection(table: Table) -> Projection:
    """The implicit all-columns projection of ``table``."""
    columns = tuple(table.column_names)
    return Projection(
        table=table.name,
        columns=columns,
        sort_columns=(SortColumn(columns[0]),),
        is_super=True,
    )


def super_projections(schema: Schema) -> dict[str, Projection]:
    """Super-projections for every table in ``schema``."""
    return {name: super_projection(table) for name, table in schema.tables.items()}
