"""Real query execution over columnar storage.

The executor runs the same plans the cost model prices: it asks the
optimizer which projection to use, binary-searches the sort-key prefix when
the leading sort column carries a predicate, evaluates the remaining filters
vectorized, performs hash equi-joins, grouped aggregation, ordering, and
LIMIT.  It reports how many rows and cells it actually touched so tests can
check cost-model orderings against measured work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.design import PhysicalDesign
from repro.engine.expressions import evaluate_conjunction
from repro.engine.optimizer import ColumnarCostModel, resolve_column
from repro.engine.projection import Projection
from repro.engine.storage import ColumnarDatabase, ColumnData, MaterializedProjection
from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    ComparisonPredicate,
    PredicateType,
    SelectStatement,
)
from repro.sql.parser import parse


class ExecutionError(ValueError):
    """Raised when a query cannot be executed against the database."""


@dataclass
class ExecutionStats:
    """Work actually performed while executing one query."""

    projection: Projection
    rows_scanned: int
    cells_read: int


@dataclass
class QueryResult:
    """A materialized query result."""

    columns: list[str]
    rows: list[tuple]
    stats: ExecutionStats

    @property
    def row_count(self) -> int:
        return len(self.rows)


def _group_reduce(
    func: str, values: np.ndarray, inverse: np.ndarray, group_count: int
) -> np.ndarray:
    """Aggregate ``values`` per group id in ``inverse`` (vectorized)."""
    order = np.argsort(inverse, kind="stable")
    sorted_inverse = inverse[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.r_[True, sorted_inverse[1:] != sorted_inverse[:-1]])
    counts = np.diff(np.r_[boundaries, sorted_inverse.size])
    if func == "COUNT":
        return counts.astype(np.int64)
    if func == "SUM":
        return np.add.reduceat(sorted_values, boundaries)
    if func == "AVG":
        sums = np.add.reduceat(sorted_values.astype(np.float64), boundaries)
        return sums / counts
    if func == "MIN":
        return np.minimum.reduceat(sorted_values, boundaries)
    if func == "MAX":
        return np.maximum.reduceat(sorted_values, boundaries)
    raise ExecutionError(f"unsupported aggregate {func!r}")


def _scalar_reduce(func: str, values: np.ndarray, distinct: bool) -> object:
    if distinct:
        values = np.unique(values)
    if func == "COUNT":
        return int(values.size)
    if values.size == 0:
        return None
    reducers = {"SUM": np.sum, "AVG": np.mean, "MIN": np.min, "MAX": np.max}
    return reducers[func](values).item()


class ColumnarExecutor:
    """Executes the SQL subset against a :class:`ColumnarDatabase`."""

    def __init__(self, database: ColumnarDatabase, cost_model: ColumnarCostModel | None = None):
        self.database = database
        self.cost_model = cost_model or ColumnarCostModel(
            database.schema, database.measured_statistics()
        )

    # -- public API --------------------------------------------------------------

    def execute(self, sql: str, design: PhysicalDesign | None = None) -> QueryResult:
        """Execute ``sql`` under ``design`` (empty design = super-projections).

        Projections in the design are materialized on first use.
        """
        design = design or PhysicalDesign.empty()
        stmt = parse(sql)
        if stmt.table not in self.database.tables:
            raise ExecutionError(f"unknown table {stmt.table!r}")
        profile = self.cost_model.profile(sql)
        chosen = self.cost_model.choose_projection(profile, design)
        table = self.database.table(stmt.table)
        materialized = table.materialize(chosen)

        anchor_preds, dim_preds = self._split_predicates(stmt)
        mask, rows_scanned = self._anchor_mask(materialized, anchor_preds)
        columns: dict[str, ColumnData] = {
            name: ColumnData(data.values[mask], data.dictionary)
            for name, data in materialized.columns.items()
        }
        row_count = int(mask.sum())
        cells_read = rows_scanned * len(materialized.columns)

        for join in stmt.joins:
            columns, row_count = self._apply_join(
                stmt, join, columns, row_count, dim_preds.get(join.table, [])
            )

        stats = ExecutionStats(
            projection=chosen, rows_scanned=rows_scanned, cells_read=cells_read
        )
        if stmt.has_aggregates or stmt.group_by:
            return self._aggregate(stmt, columns, row_count, stats)
        return self._project(stmt, columns, row_count, stats)

    # -- planning helpers ----------------------------------------------------------

    def _split_predicates(
        self, stmt: SelectStatement
    ) -> tuple[list[PredicateType], dict[str, list[PredicateType]]]:
        anchor: list[PredicateType] = []
        dims: dict[str, list[PredicateType]] = {}
        dim_names = {j.table for j in stmt.joins}
        for pred in stmt.where:
            resolved = resolve_column(self.database.schema, pred.column, stmt.table)
            if resolved is None:
                raise ExecutionError(
                    f"predicate references unknown column {pred.column.qualified!r}"
                )
            owner, _ = resolved
            if owner == stmt.table:
                anchor.append(pred)
            elif owner in dim_names:
                dims.setdefault(owner, []).append(pred)
            else:
                raise ExecutionError(
                    f"predicate on {owner!r}, which is not in the FROM clause"
                )
        return anchor, dims

    def _anchor_mask(
        self, materialized: MaterializedProjection, preds: list[PredicateType]
    ) -> tuple[np.ndarray, int]:
        """Evaluate anchor predicates, binary-searching the sort prefix."""
        row_count = materialized.row_count
        lo, hi = 0, row_count
        remaining = list(preds)
        sort_columns = materialized.projection.sort_columns
        if sort_columns and sort_columns[0].ascending:
            first = sort_columns[0].name
            eq = next(
                (
                    p
                    for p in remaining
                    if isinstance(p, ComparisonPredicate)
                    and p.op == "="
                    and p.column.name == first
                ),
                None,
            )
            if eq is not None:
                key = materialized.sort_key_values()
                literal = materialized.columns[first].encode_literal(eq.value.value)
                lo = int(np.searchsorted(key, literal, side="left"))
                hi = int(np.searchsorted(key, literal, side="right"))
                remaining.remove(eq)
        window = {
            name: ColumnData(data.values[lo:hi], data.dictionary)
            for name, data in materialized.columns.items()
        }
        inner = evaluate_conjunction(tuple(remaining), window, hi - lo)
        mask = np.zeros(row_count, dtype=bool)
        mask[lo:hi] = inner
        return mask, hi - lo

    def _apply_join(
        self,
        stmt: SelectStatement,
        join,
        columns: dict[str, ColumnData],
        row_count: int,
        dim_predicates: list[PredicateType],
    ) -> tuple[dict[str, ColumnData], int]:
        """Hash equi-join the current rows with one dimension table."""
        schema = self.database.schema
        left = resolve_column(schema, join.left, stmt.table)
        right = resolve_column(schema, join.right, stmt.table)
        if left is None or right is None:
            raise ExecutionError("join references unknown columns")
        if left[0] == stmt.table and right[0] == join.table:
            anchor_key, dim_key = left[1], right[1]
        elif right[0] == stmt.table and left[0] == join.table:
            anchor_key, dim_key = right[1], left[1]
        else:
            raise ExecutionError("join must connect the anchor to the joined table")

        dim_table = self.database.table(join.table)
        dim_super = dim_table.super_projection
        dim_mask = evaluate_conjunction(
            tuple(dim_predicates), dim_super.columns, dim_super.row_count
        )
        dim_keys = dim_super.columns[dim_key].values[dim_mask]
        dim_rows = {
            name: data.values[dim_mask] for name, data in dim_super.columns.items()
        }

        # Probe: keep anchor rows whose key matches some dimension row, and
        # attach the first matching dimension row's columns.
        unique_keys, first_index = np.unique(dim_keys, return_index=True)
        anchor_keys = columns[anchor_key].values
        positions = np.searchsorted(unique_keys, anchor_keys)
        positions = np.clip(positions, 0, max(unique_keys.size - 1, 0))
        matched = (
            (unique_keys[positions] == anchor_keys)
            if unique_keys.size
            else np.zeros(row_count, dtype=bool)
        )
        dim_index = first_index[positions[matched]] if unique_keys.size else np.array([], dtype=int)

        joined: dict[str, ColumnData] = {
            name: ColumnData(data.values[matched], data.dictionary)
            for name, data in columns.items()
        }
        for name, values in dim_rows.items():
            label = f"{join.table}.{name}"
            dictionary = dim_super.columns[name].dictionary
            joined[label] = ColumnData(values[dim_index], dictionary)
        return joined, int(matched.sum())

    # -- output helpers -------------------------------------------------------------

    def _lookup(
        self, stmt: SelectStatement, columns: dict[str, ColumnData], ref: ColumnRef
    ) -> ColumnData:
        """Find a referenced column among anchor (bare) and joined (qualified) keys."""
        candidates = []
        if ref.table is None or ref.table == stmt.table:
            candidates.append(ref.name)
        candidates.append(ref.qualified)
        if ref.table is None:
            candidates.extend(
                f"{join.table}.{ref.name}" for join in stmt.joins
            )
        for key in candidates:
            if key in columns:
                return columns[key]
        raise ExecutionError(f"output column {ref.qualified!r} not available")

    def _output_label(self, item) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, Aggregate):
            inner = "*" if item.expr.column is None else item.expr.column.qualified
            return f"{item.expr.func.lower()}({inner})"
        return item.expr.qualified

    def _project(
        self,
        stmt: SelectStatement,
        columns: dict[str, ColumnData],
        row_count: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        if stmt.select_star:
            labels = list(columns.keys())
            arrays = [columns[label] for label in labels]
        else:
            labels = [self._output_label(item) for item in stmt.select]
            arrays = [self._lookup(stmt, columns, item.expr) for item in stmt.select]

        order = np.arange(row_count)
        if stmt.order_by:
            keys = []
            for item in reversed(stmt.order_by):
                values = self._lookup(stmt, columns, item.column).values
                if not item.ascending:
                    values = -values.astype(np.float64) if values.dtype != object else values
                keys.append(values)
            order = np.lexsort(keys)
        if stmt.limit is not None:
            order = order[: stmt.limit]

        decoded = [a.decode()[order] for a in arrays]
        rows = [tuple(col[i] for col in decoded) for i in range(order.size)]
        return QueryResult(columns=labels, rows=rows, stats=stats)

    def _aggregate(
        self,
        stmt: SelectStatement,
        columns: dict[str, ColumnData],
        row_count: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        labels = [self._output_label(item) for item in stmt.select]

        if not stmt.group_by:
            row: list[object] = []
            for item in stmt.select:
                if not isinstance(item.expr, Aggregate):
                    raise ExecutionError(
                        "non-aggregate select item without GROUP BY"
                    )
                agg = item.expr
                if agg.column is None:
                    row.append(row_count)
                else:
                    values = self._lookup(stmt, columns, agg.column).values
                    row.append(_scalar_reduce(agg.func, values, agg.distinct))
            return QueryResult(columns=labels, rows=[tuple(row)], stats=stats)

        group_arrays = [
            self._lookup(stmt, columns, col) for col in stmt.group_by
        ]
        if row_count == 0:
            return QueryResult(columns=labels, rows=[], stats=stats)
        stacked = np.stack([a.values.astype(np.int64, copy=False) for a in group_arrays])
        _, first_index, inverse = np.unique(
            stacked, axis=1, return_index=True, return_inverse=True
        )
        group_count = int(inverse.max()) + 1 if inverse.size else 0

        outputs: list[np.ndarray] = []
        for item in stmt.select:
            if isinstance(item.expr, Aggregate):
                agg = item.expr
                if agg.column is None:
                    values = np.ones(row_count, dtype=np.int64)
                    outputs.append(_group_reduce("COUNT", values, inverse, group_count))
                elif agg.distinct:
                    values = self._lookup(stmt, columns, agg.column).values
                    result = np.empty(group_count, dtype=np.int64)
                    for g in range(group_count):
                        result[g] = np.unique(values[inverse == g]).size
                    outputs.append(result)
                else:
                    values = self._lookup(stmt, columns, agg.column).values
                    outputs.append(_group_reduce(agg.func, values, inverse, group_count))
            else:
                data = self._lookup(stmt, columns, item.expr)
                outputs.append(data.decode()[first_index])

        order = np.arange(group_count)
        if stmt.order_by:
            label_by_column = {}
            for item, out in zip(stmt.select, outputs):
                if item.alias:
                    label_by_column[item.alias] = out
                label_by_column[self._output_label(item)] = out
                if not isinstance(item.expr, Aggregate):
                    label_by_column[item.expr.qualified] = out
                    label_by_column[item.expr.name] = out
            keys = []
            for item in reversed(stmt.order_by):
                values = label_by_column.get(
                    item.column.qualified, label_by_column.get(item.column.name)
                )
                if values is None:
                    # ORDER BY a grouping column not in the select list.
                    idx = (
                        list(c.qualified for c in stmt.group_by).index(item.column.qualified)
                        if item.column.qualified in [c.qualified for c in stmt.group_by]
                        else None
                    )
                    if idx is None:
                        raise ExecutionError(
                            f"cannot ORDER BY {item.column.qualified!r} after GROUP BY"
                        )
                    values = group_arrays[idx].values[first_index]
                sort_values = values
                if not item.ascending and sort_values.dtype != object:
                    sort_values = -sort_values.astype(np.float64)
                keys.append(sort_values)
            order = np.lexsort(keys)
        if stmt.limit is not None:
            order = order[: stmt.limit]

        rows = [tuple(out[i] for out in outputs) for i in order]
        return QueryResult(columns=labels, rows=rows, stats=stats)
