"""Projection choice and the what-if cost model for the columnar engine.

This is the paper's cost function ``f(W, D)``: the estimated latency of a
workload under a physical design.  The paper notes latency "can only be
measured by executing the query itself or approximated using the query
optimizer's cost estimates"; like a what-if designer (and like the
HypoPG-style route suggested for reproduction), we use optimizer estimates
as the primary signal.  The executor in :mod:`repro.engine.executor` runs
the same plans for real on generated data so tests can check that estimated
orderings match actual work.

The cost surface has the paper's characteristic cliffs:

* a projection either **covers** a query's columns or the query falls back
  to the super-projection (no partial credit),
* a matching **sort-key prefix** turns a full scan into a binary-searched
  range scan, cutting scanned rows by the predicate selectivity,
* matching sort orders make ``GROUP BY``/``ORDER BY`` nearly free.

Costs are reported in model milliseconds, calibrated so that the headline
numbers land in the same ranges as the paper's Vertica cluster (full fact
scans in seconds, well-designed point queries in milliseconds).
"""

from __future__ import annotations

import math

from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStatistics
from repro.costing.memo import BoundedMemo
from repro.costing.profile import QueryProfile, QueryProfiler, TableAccess, resolve_column
from repro.costing.report import WorkloadCostReport
from repro.engine.design import PhysicalDesign
from repro.engine.projection import Projection, super_projection

__all__ = [
    "ColumnarCostModel",
    "QueryProfile",
    "resolve_column",
]

# -- cost constants (model milliseconds) --------------------------------------

#: Sequential-scan cost per byte read (≈200 MB/s effective scan rate).
BYTE_COST_MS = 5e-6
#: Per-row, per-predicate filter evaluation cost.
PREDICATE_COST_MS = 1e-5
#: Per-row hash-aggregation cost (vs. nearly-free sorted aggregation).
HASH_AGG_COST_MS = 2e-5
SORTED_AGG_COST_MS = 4e-6
#: Per-element comparison cost for an explicit sort (× log2 n).
SORT_COST_MS = 2e-6
#: Hash-join build (per dimension row) and probe (per fact row) costs.
JOIN_BUILD_COST_MS = 2e-5
JOIN_PROBE_COST_MS = 1e-5
#: Fixed per-query overhead (parse/plan/dispatch).
QUERY_OVERHEAD_MS = 1.0
#: Per-byte cost of applying a write to a stored structure (WOS/ROS
#: moveout amortized per byte; shared value across all three substrates).
WRITE_BYTE_COST_MS = 1e-5
#: Fixed per-affected-row upkeep of keeping one extra projection current
#: (tuple mover bookkeeping, positional index update).
PROJECTION_MAINT_ROW_MS = 5e-4


class ColumnarCostModel:
    """What-if cost model: profiles queries and costs them against designs.

    The model memoizes query profiles (by SQL text) and per-projection costs
    (by SQL text × projection), because robust-design search evaluates the
    same queries against many candidate designs.
    """

    def __init__(
        self,
        schema: Schema,
        statistics: dict[str, TableStatistics] | None = None,
    ):
        self.schema = schema
        self.statistics = statistics or {
            name: TableStatistics.declared(table)
            for name, table in schema.tables.items()
        }
        self.profiler = QueryProfiler(schema, self.statistics)
        self._super: dict[str, Projection] = {
            name: super_projection(table) for name, table in schema.tables.items()
        }
        # Bounded LRU: a long replay prices an unbounded stream of
        # (query, projection) pairs; evictions are metrics-counted.
        self._projection_costs: BoundedMemo = BoundedMemo(
            "costing.memo_evictions.columnar_projection"
        )

    def profile(self, sql: str) -> QueryProfile:
        """Parse and annotate ``sql`` (cached by exact text)."""
        return self.profiler.profile(sql)

    # -- costing ---------------------------------------------------------------

    @staticmethod
    def _prefix_selectivity(access: TableAccess, projection: Projection) -> float:
        """Row-range reduction from binary search on the sort-key prefix."""
        eq_map = access.eq_map
        range_map = access.range_map
        selectivity = 1.0
        for sort_column in projection.sort_columns:
            name = sort_column.name
            if name in eq_map:
                selectivity *= eq_map[name]
                continue
            if name in range_map:
                selectivity *= range_map[name]
            break
        return selectivity

    def _scan_cost(self, access: TableAccess, projection: Projection) -> float | None:
        """Scan + filter cost of serving ``access`` from ``projection``."""
        if not projection.covers(access.needed_columns):
            return None
        prefix = self._prefix_selectivity(access, projection)
        rows_scanned = max(access.row_count * prefix, 1.0)
        cost = rows_scanned * access.needed_bytes * BYTE_COST_MS
        cost += rows_scanned * access.predicate_count * PREDICATE_COST_MS
        return cost

    def projection_cost(self, profile: QueryProfile, projection: Projection) -> float | None:
        """Cost of answering ``profile``'s anchor access via ``projection``.

        Returns ``None`` when the projection does not cover the query (the
        optimizer would never choose it).  Cached per (query, projection).
        """
        key = (profile.sql, projection)
        if key in self._projection_costs:
            return self._projection_costs[key]
        cost = self._anchor_cost(profile, projection)
        self._projection_costs[key] = cost
        return cost

    def _anchor_cost(self, profile: QueryProfile, projection: Projection) -> float | None:
        access = profile.anchor
        if projection.table != access.table:
            return None
        scan = self._scan_cost(access, projection)
        if scan is None:
            return None
        cost = scan
        prefix = self._prefix_selectivity(access, projection)
        rows_scanned = max(access.row_count * prefix, 1.0)
        rows_out = max(access.row_count * access.total_selectivity, 1.0)

        if profile.group_by:
            groups = max(min(profile.group_cardinality, rows_out), 1.0)
            if self._sorted_groups(profile.group_by, projection):
                cost += rows_out * SORTED_AGG_COST_MS
            else:
                cost += rows_out * HASH_AGG_COST_MS
            result_rows = groups
        else:
            result_rows = rows_out

        if profile.order_by:
            free = (
                not profile.group_by
                and tuple(projection.sort_key[: len(profile.order_by)])
                == profile.order_by
            )
            if not free:
                n = max(result_rows, 2.0)
                cost += n * math.log2(n) * SORT_COST_MS

        # Joins: the dimension-side read is priced in query_cost (it depends
        # on the whole design); the per-fact-row probe work is charged here.
        cost += rows_scanned * len(profile.dimensions) * JOIN_PROBE_COST_MS
        return cost

    @staticmethod
    def _sorted_groups(group_by: tuple[str, ...], projection: Projection) -> bool:
        """Whether GROUP BY can stream off the projection's sort order."""
        prefix = projection.sort_key[: len(group_by)]
        return set(prefix) == set(group_by) and len(prefix) == len(group_by)

    def _dimension_cost(self, access: TableAccess, design: PhysicalDesign) -> float:
        """Best-path cost of reading one joined dimension table."""
        best = None
        for projection in [self._super[access.table]] + design.for_table(access.table):
            scan = self._scan_cost(access, projection)
            if scan is not None and (best is None or scan < best):
                best = scan
        rows = max(access.row_count * access.total_selectivity, 1.0)
        return (best or 0.0) + rows * JOIN_BUILD_COST_MS

    def choose_projection(
        self, profile: QueryProfile, design: PhysicalDesign
    ) -> Projection:
        """The projection the optimizer would pick for the anchor access."""
        best = self._super[profile.anchor.table]
        best_cost = self.projection_cost(profile, best)
        for projection in design.for_table(profile.anchor.table):
            cost = self.projection_cost(profile, projection)
            if cost is not None and (best_cost is None or cost < best_cost):
                best, best_cost = projection, cost
        return best

    # -- write costing ---------------------------------------------------------

    def base_write_cost(self, profile: QueryProfile) -> float:
        """Design-independent cost of applying the write to base storage."""
        return (profile.affected_rows * profile.written_bytes) * WRITE_BYTE_COST_MS

    def maintenance_weight(self, projection: Projection) -> float:
        """Per-affected-row cost of keeping ``projection`` current."""
        table = self.schema.table(projection.table)
        width = sum(table.column(c).type.byte_width for c in projection.columns)
        return PROJECTION_MAINT_ROW_MS + width * WRITE_BYTE_COST_MS

    def write_touches(self, profile: QueryProfile, projection: Projection) -> bool:
        """Whether ``profile``'s write forces maintenance of ``projection``.

        Inserts and deletes touch every projection of the written table
        (each stores every row); updates only touch projections storing at
        least one written column.
        """
        if not profile.is_write or projection.table != profile.anchor.table:
            return False
        if profile.statement_kind != "update":
            return True
        return bool(projection.column_set & set(profile.written_columns))

    def _write_cost(self, profile: QueryProfile, design: PhysicalDesign) -> float:
        """DML cost: locate the affected rows, apply the base write, then
        charge per-structure maintenance for every projection the write
        touches (the robustness penalty of over-designing a hot table)."""
        if profile.statement_kind == "insert":
            locate = 0.0
        else:
            anchor_costs = [
                self.projection_cost(profile, self._super[profile.anchor.table])
            ]
            for projection in design.for_table(profile.anchor.table):
                anchor_costs.append(self.projection_cost(profile, projection))
            locate = min(c for c in anchor_costs if c is not None)
        cost = (QUERY_OVERHEAD_MS + locate) + self.base_write_cost(profile)
        for projection in design.for_table(profile.anchor.table):
            if self.write_touches(profile, projection):
                cost = cost + profile.affected_rows * self.maintenance_weight(projection)
        return cost

    def query_cost(self, sql_or_profile: str | QueryProfile, design: PhysicalDesign) -> float:
        """Estimated latency (model ms) of one query under ``design``."""
        profile = (
            sql_or_profile
            if isinstance(sql_or_profile, QueryProfile)
            else self.profile(sql_or_profile)
        )
        if profile.is_write:
            return self._write_cost(profile, design)
        anchor_costs = [self.projection_cost(profile, self._super[profile.anchor.table])]
        for projection in design.for_table(profile.anchor.table):
            anchor_costs.append(self.projection_cost(profile, projection))
        anchor_cost = min(c for c in anchor_costs if c is not None)
        dim_cost = sum(self._dimension_cost(d, design) for d in profile.dimensions)
        return QUERY_OVERHEAD_MS + anchor_cost + dim_cost

    def workload_cost(self, queries, design: PhysicalDesign) -> WorkloadCostReport:
        """Cost every query in ``queries`` under ``design``.

        ``queries`` is an iterable of objects with ``sql`` and ``frequency``
        attributes (see :class:`repro.workload.query.WorkloadQuery`) or raw
        SQL strings (frequency 1).
        """
        costs: list[float] = []
        weights: list[float] = []
        for query in queries:
            if isinstance(query, str):
                sql, weight = query, 1.0
            else:
                sql, weight = query.sql, float(query.frequency)
            costs.append(self.query_cost(sql, design))
            weights.append(weight)
        return WorkloadCostReport(per_query_ms=costs, weights=weights)
