"""Columnar engine substrate (the Vertica-like system of the paper).

Physical designs here are sets of **projections**: per-table column subsets
stored sorted by a sort key (Section 2 of the paper).  Every table always
has an implicit *super-projection* containing all columns, which bounds
query latency from above exactly as ``NoDesign`` does in the paper.

* :mod:`repro.engine.projection` — projection definitions,
* :mod:`repro.engine.design` — the :class:`PhysicalDesign` container,
* :mod:`repro.engine.storage` — numpy-backed columnar storage,
* :mod:`repro.engine.expressions` — vectorized predicate evaluation,
* :mod:`repro.engine.executor` — real query execution,
* :mod:`repro.engine.optimizer` — projection choice and the what-if cost
  model (the paper's cost function ``f``).
"""

from repro.engine.design import PhysicalDesign
from repro.engine.executor import ColumnarExecutor, QueryResult
from repro.engine.optimizer import ColumnarCostModel, QueryProfile
from repro.engine.projection import Projection, SortColumn, super_projection
from repro.engine.storage import ColumnarDatabase, ColumnarTable

__all__ = [
    "ColumnarCostModel",
    "ColumnarDatabase",
    "ColumnarExecutor",
    "ColumnarTable",
    "PhysicalDesign",
    "Projection",
    "QueryProfile",
    "QueryResult",
    "SortColumn",
    "super_projection",
]
