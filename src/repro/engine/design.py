"""Physical design container for the columnar engine.

A :class:`PhysicalDesign` is a set of projections.  Super-projections are
always implicitly present (they are the fallback path and are not charged
against the budget, matching Vertica where the super-projection is part of
the base data).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema
from repro.engine.projection import Projection

#: Deployment throughput used by the Figure 14 model: building a projection
#: is a sort + rewrite of its data, charged per byte.
DEPLOY_SECONDS_PER_GB = 360.0


@dataclass(frozen=True)
class PhysicalDesign:
    """An immutable set of (non-super) projections."""

    projections: frozenset[Projection] = frozenset()

    def __post_init__(self) -> None:
        for projection in self.projections:
            if projection.is_super:
                raise ValueError(
                    "super-projections are implicit and cannot be part of a design"
                )

    @classmethod
    def of(cls, *projections: Projection) -> "PhysicalDesign":
        """Convenience constructor from positional projections."""
        return cls(frozenset(projections))

    @classmethod
    def empty(cls) -> "PhysicalDesign":
        """The NoDesign design: every query scans super-projections."""
        return cls(frozenset())

    def with_projection(self, projection: Projection) -> "PhysicalDesign":
        """Return a new design with ``projection`` added."""
        return PhysicalDesign(self.projections | {projection})

    def for_table(self, table: str) -> list[Projection]:
        """All projections anchored on ``table`` (deterministic order)."""
        return sorted(
            (p for p in self.projections if p.table == table),
            key=lambda p: (p.columns, p.sort_key),
        )

    def price(self, schema: Schema) -> int:
        """Total bytes of all projections — the paper's ``price(D)``."""
        return sum(
            projection.size_bytes(schema.table(projection.table))
            for projection in self.projections
        )

    def deployment_seconds(self, schema: Schema) -> float:
        """Modeled wall-clock time to build this design (Figure 14)."""
        return self.price(schema) / 1e9 * DEPLOY_SECONDS_PER_GB

    def __len__(self) -> int:
        return len(self.projections)

    def __iter__(self):
        return iter(
            sorted(self.projections, key=lambda p: (p.table, p.columns, p.sort_key))
        )

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        if not self.projections:
            return "(empty design)"
        return "\n".join(str(p) for p in self)
