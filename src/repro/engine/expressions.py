"""Vectorized predicate evaluation over column arrays.

Shared by the columnar executor and the row-store engine: given a mapping of
bare column name → :class:`~repro.engine.storage.ColumnData`, build a boolean
mask for a conjunction of predicates.
"""

from __future__ import annotations

import fnmatch

import numpy as np

from repro.engine.storage import ColumnData
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    PredicateType,
)


class ExpressionError(ValueError):
    """Raised when a predicate references a column not present in the data."""


def _coerce(data: ColumnData, literal: object) -> object:
    value = data.encode_literal(literal)
    if isinstance(value, bool):
        return value
    if value is None:
        return None
    return value


def evaluate_predicate(pred: PredicateType, columns: dict[str, ColumnData]) -> np.ndarray:
    """Boolean mask of rows satisfying one predicate."""
    name = pred.column.name
    if name not in columns:
        raise ExpressionError(f"predicate references missing column {name!r}")
    data = columns[name]
    values = data.values

    if isinstance(pred, ComparisonPredicate):
        literal = _coerce(data, pred.value.value)
        if literal is None:
            # ``col op NULL`` is never true under SQL three-valued logic.
            return np.zeros(values.shape[0], dtype=bool)
        ops = {
            "=": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        return ops[pred.op](values, literal)
    if isinstance(pred, BetweenPredicate):
        low = _coerce(data, pred.low.value)
        high = _coerce(data, pred.high.value)
        if low is None or high is None:
            return np.zeros(values.shape[0], dtype=bool)
        return (values >= low) & (values <= high)
    if isinstance(pred, InPredicate):
        literals = [_coerce(data, v.value) for v in pred.values]
        literals = [v for v in literals if v is not None]
        if not literals:
            return np.zeros(values.shape[0], dtype=bool)
        return np.isin(values, np.array(literals))
    if isinstance(pred, LikePredicate):
        decoded = data.decode()
        # SQL LIKE wildcards map onto fnmatch: % -> *, _ -> ?.
        pattern = pred.pattern.replace("%", "*").replace("_", "?")
        mask = np.array(
            [fnmatch.fnmatch(str(v), pattern) for v in decoded], dtype=bool
        )
        return mask
    if isinstance(pred, IsNullPredicate):
        if values.dtype.kind == "f":
            nulls = np.isnan(values)
        else:
            nulls = np.zeros(values.shape[0], dtype=bool)
        return ~nulls if pred.negated else nulls
    raise TypeError(f"unknown predicate type: {type(pred).__name__}")


def evaluate_conjunction(
    predicates: tuple[PredicateType, ...] | list[PredicateType],
    columns: dict[str, ColumnData],
    row_count: int,
) -> np.ndarray:
    """Boolean mask for the AND of ``predicates`` (all-true when empty)."""
    mask = np.ones(row_count, dtype=bool)
    for pred in predicates:
        mask &= evaluate_predicate(pred, columns)
    return mask
