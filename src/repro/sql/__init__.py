"""SQL substrate: a parser, AST, and analyzer for the OLAP subset used here.

The paper treats each query as the sets of columns appearing in its
``SELECT``, ``WHERE``, ``GROUP BY``, and ``ORDER BY`` clauses (Section 5).
This package provides the machinery to go from SQL text to those clause-wise
column sets:

* :mod:`repro.sql.lexer` — tokenizer,
* :mod:`repro.sql.ast` — typed AST nodes,
* :mod:`repro.sql.parser` — recursive-descent parser,
* :mod:`repro.sql.formatter` — AST back to canonical SQL text,
* :mod:`repro.sql.analyzer` — clause-wise column extraction and template
  fingerprints.
"""

from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    InPredicate,
    Join,
    LikePredicate,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from repro.sql.analyzer import QueryTemplate, analyze, extract_template
from repro.sql.formatter import format_statement
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import ParseError, parse

__all__ = [
    "Aggregate",
    "BetweenPredicate",
    "ColumnRef",
    "ComparisonPredicate",
    "InPredicate",
    "Join",
    "LikePredicate",
    "Literal",
    "OrderItem",
    "ParseError",
    "QueryTemplate",
    "SelectItem",
    "SelectStatement",
    "Token",
    "TokenType",
    "analyze",
    "extract_template",
    "format_statement",
    "parse",
    "tokenize",
]
