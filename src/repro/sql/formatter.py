"""Render an AST back to canonical SQL text.

``parse(format_statement(stmt)) == stmt`` holds for every statement in the
subset — the property tests rely on this round-trip to check both sides.
"""

from __future__ import annotations

from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ComparisonPredicate,
    DeleteStatement,
    InPredicate,
    InsertStatement,
    IsNullPredicate,
    LikePredicate,
    Literal,
    OrderItem,
    PredicateType,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
)


def _format_select_item(item: SelectItem) -> str:
    if isinstance(item.expr, Aggregate):
        agg = item.expr
        inner = "*" if agg.column is None else agg.column.qualified
        if agg.distinct:
            inner = f"DISTINCT {inner}"
        text = f"{agg.func}({inner})"
    else:
        text = item.expr.qualified
    if item.alias:
        text += f" AS {item.alias}"
    return text


def format_predicate(pred: PredicateType) -> str:
    """Render a single predicate."""
    if isinstance(pred, ComparisonPredicate):
        return f"{pred.column} {pred.op} {pred.value}"
    if isinstance(pred, BetweenPredicate):
        return f"{pred.column} BETWEEN {pred.low} AND {pred.high}"
    if isinstance(pred, InPredicate):
        values = ", ".join(str(v) for v in pred.values)
        return f"{pred.column} IN ({values})"
    if isinstance(pred, LikePredicate):
        return f"{pred.column} LIKE {Literal(pred.pattern)}"
    if isinstance(pred, IsNullPredicate):
        return f"{pred.column} IS {'NOT ' if pred.negated else ''}NULL"
    raise TypeError(f"unknown predicate type: {type(pred).__name__}")


def _format_order_item(item: OrderItem) -> str:
    return f"{item.column} {'ASC' if item.ascending else 'DESC'}"


def _format_insert(stmt: InsertStatement) -> str:
    columns = ", ".join(c.qualified for c in stmt.columns)
    rows = ", ".join(
        "(" + ", ".join(str(v) for v in row) + ")" for row in stmt.rows
    )
    return f"INSERT INTO {stmt.table} ({columns}) VALUES {rows}"


def _format_update(stmt: UpdateStatement) -> str:
    sets = ", ".join(f"{a.column} = {a.value}" for a in stmt.assignments)
    text = f"UPDATE {stmt.table} SET {sets}"
    if stmt.where:
        text += " WHERE " + " AND ".join(format_predicate(p) for p in stmt.where)
    return text


def _format_delete(stmt: DeleteStatement) -> str:
    text = f"DELETE FROM {stmt.table}"
    if stmt.where:
        text += " WHERE " + " AND ".join(format_predicate(p) for p in stmt.where)
    return text


def format_statement(stmt: Statement) -> str:
    """Render ``stmt`` as a single-line canonical SQL string."""
    if isinstance(stmt, InsertStatement):
        return _format_insert(stmt)
    if isinstance(stmt, UpdateStatement):
        return _format_update(stmt)
    if isinstance(stmt, DeleteStatement):
        return _format_delete(stmt)
    if stmt.select_star:
        select_list = "*"
    else:
        select_list = ", ".join(_format_select_item(item) for item in stmt.select)
    parts = [f"SELECT {select_list}", f"FROM {stmt.table}"]
    for join in stmt.joins:
        parts.append(f"JOIN {join.table} ON {join.left} = {join.right}")
    if stmt.where:
        parts.append("WHERE " + " AND ".join(format_predicate(p) for p in stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(c.qualified for c in stmt.group_by))
    if stmt.order_by:
        parts.append("ORDER BY " + ", ".join(_format_order_item(o) for o in stmt.order_by))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)
