"""Tokenizer for the SQL subset.

The lexer is intentionally small: the OLAP subset used by the workload
generator and the engines only needs identifiers, numeric and string
literals, comparison operators, punctuation, and a fixed keyword set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Keywords recognized by the parser.  Matched case-insensitively and
#: reported upper-case in :attr:`Token.value`.
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "LIMIT",
        "AND",
        "OR",
        "NOT",
        "BETWEEN",
        "IN",
        "LIKE",
        "IS",
        "NULL",
        "JOIN",
        "INNER",
        "ON",
        "AS",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "DISTINCT",
        "TRUE",
        "FALSE",
    }
)


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    DOT = "dot"
    STAR = "star"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"


class LexError(ValueError):
    """Raised when the input contains a character the lexer cannot handle."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} at position {position}")
        self.position = position


_OPERATOR_STARTS = "<>=!"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens terminated by an EOF token.

    Raises :class:`LexError` on unknown characters or unterminated strings.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
        elif ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
        elif ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
        elif ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
        elif ch == ".":
            tokens.append(Token(TokenType.DOT, ".", i))
            i += 1
        elif ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise LexError("unterminated string literal", i)
                if text[j] == "'":
                    # '' escapes a single quote inside a string literal.
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
        elif ch in _OPERATOR_STARTS:
            if i + 1 < n and text[i : i + 2] in ("<=", ">=", "<>", "!="):
                op = text[i : i + 2]
                tokens.append(Token(TokenType.OPERATOR, "!=" if op == "<>" else op, i))
                i += 2
            elif ch in "<>=":
                tokens.append(Token(TokenType.OPERATOR, ch, i))
                i += 1
            else:
                raise LexError(f"unexpected character {ch!r}", i)
        elif ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                # A dot is part of the number only when followed by a digit;
                # otherwise it is a qualifier dot (``t.c``).
                if text[j] == ".":
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
        elif ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
        else:
            raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
