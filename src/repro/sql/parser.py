"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := select | insert | update | delete
    select      := SELECT select_list FROM identifier join* where?
                   group_by? order_by? limit?
    insert      := INSERT INTO identifier '(' column (',' column)* ')'
                   VALUES values_row (',' values_row)*
    values_row  := '(' literal (',' literal)* ')'
    update      := UPDATE identifier SET assignment (',' assignment)* where?
    assignment  := column '=' literal
    delete      := DELETE FROM identifier where?
    select_list := '*' | select_item (',' select_item)*
    select_item := column | aggregate [AS identifier]
    aggregate   := FUNC '(' [DISTINCT] (column | '*') ')'
    join        := [INNER] JOIN identifier ON column '=' column
    where       := WHERE predicate (AND predicate)*
    predicate   := column (op literal | BETWEEN literal AND literal |
                   IN '(' literal (',' literal)* ')' | LIKE string |
                   IS [NOT] NULL)
    group_by    := GROUP BY column (',' column)*
    order_by    := ORDER BY column [ASC|DESC] (',' ...)*
    limit       := LIMIT number

Only conjunctions are supported in ``WHERE``; the workload generator never
emits ``OR`` and the optimizer cost model treats filters as independent
conjuncts, as is standard in what-if designers.
"""

from __future__ import annotations

from repro.sql.ast import (
    AGGREGATE_FUNCS,
    Aggregate,
    Assignment,
    BetweenPredicate,
    ColumnRef,
    ComparisonPredicate,
    DeleteStatement,
    InPredicate,
    InsertStatement,
    IsNullPredicate,
    Join,
    LikePredicate,
    Literal,
    OrderItem,
    PredicateType,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sql.lexer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (at position {token.position}, near {token.value!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token-stream helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value in keywords

    def _match_keyword(self, *keywords: str) -> Token | None:
        if self._check_keyword(*keywords):
            return self._advance()
        return None

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._match_keyword(keyword)
        if token is None:
            raise ParseError(f"expected {keyword}", self._peek())
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(f"expected {token_type.value}", token)
        return self._advance()

    # -- grammar productions ---------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("UPDATE"):
            return self._parse_update()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        return self._parse_select()

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        select_star = False
        items: list[SelectItem] = []
        if self._peek().type is TokenType.STAR:
            self._advance()
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._peek().type is TokenType.COMMA:
                self._advance()
                items.append(self._parse_select_item())

        self._expect_keyword("FROM")
        table = self._expect(TokenType.IDENTIFIER).value

        joins: list[Join] = []
        while self._check_keyword("JOIN", "INNER"):
            joins.append(self._parse_join())

        where: tuple[PredicateType, ...] = ()
        if self._match_keyword("WHERE"):
            where = self._parse_where()

        group_by: tuple[ColumnRef, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_column_list())

        order_by: tuple[OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_list())

        limit: int | None = None
        if self._match_keyword("LIMIT"):
            limit_token = self._expect(TokenType.NUMBER)
            limit = int(float(limit_token.value))

        self._expect_eof()

        return SelectStatement(
            select=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            select_star=select_star,
        )

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError("unexpected trailing input", token)

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.LPAREN)
        columns = [self._parse_column()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            columns.append(self._parse_column())
        self._expect(TokenType.RPAREN)
        self._expect_keyword("VALUES")
        rows = [self._parse_values_row(len(columns))]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            rows.append(self._parse_values_row(len(columns)))
        self._expect_eof()
        return InsertStatement(
            table=table, columns=tuple(columns), rows=tuple(rows)
        )

    def _parse_values_row(self, width: int) -> tuple[Literal, ...]:
        opener = self._expect(TokenType.LPAREN)
        values = [self._parse_literal()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._parse_literal())
        self._expect(TokenType.RPAREN)
        if len(values) != width:
            raise ParseError(
                f"VALUES row has {len(values)} values for {width} columns", opener
            )
        return tuple(values)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            assignments.append(self._parse_assignment())
        where: tuple[PredicateType, ...] = ()
        if self._match_keyword("WHERE"):
            where = self._parse_where()
        self._expect_eof()
        return UpdateStatement(
            table=table, assignments=tuple(assignments), where=where
        )

    def _parse_assignment(self) -> Assignment:
        column = self._parse_column()
        op = self._expect(TokenType.OPERATOR)
        if op.value != "=":
            raise ParseError("expected = in SET assignment", op)
        value = self._parse_literal()
        return Assignment(column=column, value=value)

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect(TokenType.IDENTIFIER).value
        where: tuple[PredicateType, ...] = ()
        if self._match_keyword("WHERE"):
            where = self._parse_where()
        self._expect_eof()
        return DeleteStatement(table=table, where=where)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        expr: ColumnRef | Aggregate
        if token.type is TokenType.KEYWORD and token.value in AGGREGATE_FUNCS:
            expr = self._parse_aggregate()
        else:
            expr = self._parse_column()
        alias: str | None = None
        if self._match_keyword("AS"):
            alias = self._expect(TokenType.IDENTIFIER).value
        return SelectItem(expr=expr, alias=alias)

    def _parse_aggregate(self) -> Aggregate:
        func = self._advance().value
        self._expect(TokenType.LPAREN)
        distinct = self._match_keyword("DISTINCT") is not None
        column: ColumnRef | None
        if self._peek().type is TokenType.STAR:
            self._advance()
            column = None
            if func != "COUNT":
                raise ParseError(f"{func}(*) is not valid", self._peek())
        else:
            column = self._parse_column()
        self._expect(TokenType.RPAREN)
        return Aggregate(func=func, column=column, distinct=distinct)

    def _parse_column(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._peek().type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(second, first)
        return ColumnRef(first)

    def _parse_column_list(self) -> list[ColumnRef]:
        columns = [self._parse_column()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            columns.append(self._parse_column())
        return columns

    def _parse_order_list(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column()
        ascending = True
        if self._match_keyword("DESC"):
            ascending = False
        else:
            self._match_keyword("ASC")
        return OrderItem(column=column, ascending=ascending)

    def _parse_join(self) -> Join:
        self._match_keyword("INNER")
        self._expect_keyword("JOIN")
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect_keyword("ON")
        left = self._parse_column()
        op = self._expect(TokenType.OPERATOR)
        if op.value != "=":
            raise ParseError("only equi-joins are supported", op)
        right = self._parse_column()
        return Join(table=table, left=left, right=right)

    def _parse_where(self) -> tuple[PredicateType, ...]:
        predicates = [self._parse_predicate()]
        while self._match_keyword("AND"):
            predicates.append(self._parse_predicate())
        if self._check_keyword("OR"):
            raise ParseError("OR is not supported in this subset", self._peek())
        return tuple(predicates)

    def _parse_predicate(self) -> PredicateType:
        column = self._parse_column()
        token = self._peek()
        if token.type is TokenType.OPERATOR:
            op = self._advance().value
            value = self._parse_literal()
            return ComparisonPredicate(column=column, op=op, value=value)
        if self._match_keyword("BETWEEN"):
            low = self._parse_literal()
            self._expect_keyword("AND")
            high = self._parse_literal()
            return BetweenPredicate(column=column, low=low, high=high)
        if self._match_keyword("IN"):
            self._expect(TokenType.LPAREN)
            values = [self._parse_literal()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                values.append(self._parse_literal())
            self._expect(TokenType.RPAREN)
            return InPredicate(column=column, values=tuple(values))
        if self._match_keyword("LIKE"):
            pattern = self._expect(TokenType.STRING)
            return LikePredicate(column=column, pattern=pattern.value)
        if self._match_keyword("IS"):
            negated = self._match_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return IsNullPredicate(column=column, negated=negated)
        raise ParseError("expected a predicate operator", token)

    def _parse_literal(self) -> Literal:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if self._match_keyword("NULL"):
            return Literal(None)
        if self._match_keyword("TRUE"):
            return Literal(True)
        if self._match_keyword("FALSE"):
            return Literal(False)
        raise ParseError("expected a literal", token)


def parse(sql: str) -> Statement:
    """Parse ``sql`` into an AST statement (SELECT or INSERT/UPDATE/DELETE).

    Raises :class:`ParseError` (or :class:`~repro.sql.lexer.LexError`) on
    malformed input.
    """
    return _Parser(tokenize(sql)).parse_statement()
