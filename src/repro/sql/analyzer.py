"""Clause-wise column extraction and template fingerprints.

The paper (Section 5) represents each query by the columns it references,
either as a single union set (``δ_euclidean``) or kept separate per clause
(``δ_separate``).  Section 6.2 defines a query *template* by "stripping away
the query details except for the sets of columns used in the select, where,
group by, and order by clauses"; Figure 5 tracks how many queries in one
window share a template with another window.

:func:`analyze` maps an AST (or SQL text) to a :class:`QueryTemplate` that
carries all four clause sets plus the union.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sql.parser import parse

#: Clause keys, in the paper's SWGO order.
CLAUSES = ("select", "where", "group_by", "order_by")


@dataclass(frozen=True)
class QueryTemplate:
    """Clause-wise column sets of a query, hashable so it can key dicts.

    Column names are stored as the (possibly qualified) strings that appear
    in the SQL text; workloads in this repository always emit fully
    qualified ``table.column`` names so templates compare unambiguously.
    """

    select: frozenset[str]
    where: frozenset[str]
    group_by: frozenset[str]
    order_by: frozenset[str]

    @property
    def union(self) -> frozenset[str]:
        """All columns referenced anywhere in the query."""
        return self.select | self.where | self.group_by | self.order_by

    def clause(self, name: str) -> frozenset[str]:
        """Return the column set for one clause key from :data:`CLAUSES`."""
        if name not in CLAUSES:
            raise KeyError(f"unknown clause {name!r}; expected one of {CLAUSES}")
        return getattr(self, name)

    def restricted(self, clauses: tuple[str, ...]) -> frozenset[str]:
        """Union of the given clauses only (for the Figure 11 ablation)."""
        result: frozenset[str] = frozenset()
        for name in clauses:
            result |= self.clause(name)
        return result

    @property
    def is_empty(self) -> bool:
        """True when the query references no columns at all.

        The paper ignores such queries (e.g. ``SELECT version()``-style
        trivia) when building workload vectors.
        """
        return not self.union

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        def fmt(s: frozenset[str]) -> str:
            return "{" + ",".join(sorted(s)) + "}"

        return (
            f"S{fmt(self.select)} W{fmt(self.where)} "
            f"G{fmt(self.group_by)} O{fmt(self.order_by)}"
        )


def _qualified(ref: ColumnRef, table: str) -> str:
    """The ref's qualified name, defaulting bare DML columns to ``table``.

    Write statements conventionally use bare column names (``SET m_01 =
    ...``); qualifying them against the statement's single target table
    keeps write templates comparable with the fully qualified read
    templates the generator emits.
    """
    return ref.qualified if ref.table else f"{table}.{ref.name}"


def analyze(stmt: Statement) -> QueryTemplate:
    """Extract the clause-wise column sets from a parsed statement.

    Write statements map onto the same SWGO shape: the *written* columns
    (INSERT column list, UPDATE SET targets) land in the select set — they
    are the columns the statement touches by value — and the WHERE
    conjunction lands in the where set.  Group/order stay empty.
    """
    if isinstance(stmt, InsertStatement):
        return QueryTemplate(
            select=frozenset(_qualified(c, stmt.table) for c in stmt.columns),
            where=frozenset(),
            group_by=frozenset(),
            order_by=frozenset(),
        )
    if isinstance(stmt, (UpdateStatement, DeleteStatement)):
        written: set[str] = set()
        if isinstance(stmt, UpdateStatement):
            written = {_qualified(a.column, stmt.table) for a in stmt.assignments}
        return QueryTemplate(
            select=frozenset(written),
            where=frozenset(
                _qualified(p.column, stmt.table) for p in stmt.where
            ),
            group_by=frozenset(),
            order_by=frozenset(),
        )
    select_cols: set[str] = set()
    for item in stmt.select:
        if isinstance(item.expr, Aggregate):
            if item.expr.column is not None:
                select_cols.add(item.expr.column.qualified)
        else:
            select_cols.add(item.expr.qualified)
    # Join keys participate in filtering exactly like WHERE columns do, so
    # they are folded into the where set (a design structure that misses a
    # join key cannot serve the join).
    where_cols = {pred.column.qualified for pred in stmt.where}
    for join in stmt.joins:
        where_cols.add(join.left.qualified)
        where_cols.add(join.right.qualified)
    group_cols = {col.qualified for col in stmt.group_by}
    order_cols = {item.column.qualified for item in stmt.order_by}
    return QueryTemplate(
        select=frozenset(select_cols),
        where=frozenset(where_cols),
        group_by=frozenset(group_cols),
        order_by=frozenset(order_cols),
    )


@lru_cache(maxsize=65536)
def extract_template(sql: str) -> QueryTemplate:
    """Parse ``sql`` and extract its template (cached by exact SQL text).

    Workload replays analyze the same query strings over and over; caching
    by text keeps the distance computations cheap.
    """
    return analyze(parse(sql))
