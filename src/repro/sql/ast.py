"""Typed AST for the SQL subset.

The AST is deliberately flat and explicit: a statement is a single
``SELECT`` over one anchor table plus optional equi-joins, a conjunction of
simple predicates, optional ``GROUP BY``, ``ORDER BY``, and ``LIMIT``.
This covers the OLAP template shapes studied in the paper (the paper
fingerprints queries by clause-wise column sets, so richer SQL would add no
information to the reproduction while complicating every substrate).

The write side mirrors the same flatness: ``INSERT`` is a column list plus
literal rows, ``UPDATE`` a conjunction-filtered set of column assignments,
``DELETE`` a conjunction-filtered row removal — enough to drive
per-structure maintenance charging in the cost models without growing a
general DML dialect.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Comparison operators accepted in predicates.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Aggregate function names accepted in the select list.
AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        """Return ``table.name`` when qualified, else the bare name."""
        return f"{self.table}.{self.name}" if self.table else self.name

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean, or NULL (value ``None``)."""

    value: float | int | str | bool | None

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ComparisonPredicate:
    """``column op literal`` — the workhorse filter shape."""

    column: ColumnRef
    op: str
    value: Literal

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")


@dataclass(frozen=True)
class BetweenPredicate:
    """``column BETWEEN low AND high`` (inclusive on both ends)."""

    column: ColumnRef
    low: Literal
    high: Literal


@dataclass(frozen=True)
class InPredicate:
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[Literal, ...]


@dataclass(frozen=True)
class LikePredicate:
    """``column LIKE pattern`` with ``%``/``_`` wildcards."""

    column: ColumnRef
    pattern: str


@dataclass(frozen=True)
class IsNullPredicate:
    """``column IS [NOT] NULL``."""

    column: ColumnRef
    negated: bool = False


#: Union type of all predicate shapes (kept as a tuple for isinstance checks).
Predicate = (
    ComparisonPredicate,
    BetweenPredicate,
    InPredicate,
    LikePredicate,
    IsNullPredicate,
)

PredicateType = (
    ComparisonPredicate
    | BetweenPredicate
    | InPredicate
    | LikePredicate
    | IsNullPredicate
)


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call in the select list; ``column is None`` ⇒ COUNT(*)."""

    func: str
    column: ColumnRef | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unsupported aggregate: {self.func!r}")
        if self.column is None and self.func != "COUNT":
            raise ValueError(f"{self.func}(*) is not valid")


@dataclass(frozen=True)
class SelectItem:
    """One item in the select list: a plain column or an aggregate."""

    expr: ColumnRef | Aggregate
    alias: str | None = None


@dataclass(frozen=True)
class Join:
    """``JOIN table ON left = right`` (equi-join only)."""

    table: str
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` entry."""

    column: ColumnRef
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A full query in the subset."""

    select: tuple[SelectItem, ...]
    table: str
    joins: tuple[Join, ...] = ()
    where: tuple[PredicateType, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    select_star: bool = False

    def __post_init__(self) -> None:
        if not self.select and not self.select_star:
            raise ValueError("a SELECT statement needs a select list or *")

    @property
    def has_aggregates(self) -> bool:
        """True when any select item is an aggregate call."""
        return any(isinstance(item.expr, Aggregate) for item in self.select)

    def predicate_columns(self) -> tuple[ColumnRef, ...]:
        """Columns referenced anywhere in the WHERE conjunction."""
        return tuple(pred.column for pred in self.where)


@dataclass(frozen=True)
class Assignment:
    """One ``column = literal`` pair in an ``UPDATE ... SET`` list."""

    column: ColumnRef
    value: Literal


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table (c1, ...) VALUES (v1, ...)[, (...)]``."""

    table: str
    columns: tuple[ColumnRef, ...]
    rows: tuple[tuple[Literal, ...], ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("an INSERT statement needs a column list")
        if not self.rows:
            raise ValueError("an INSERT statement needs at least one VALUES row")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"VALUES row has {len(row)} values for {len(self.columns)} columns"
                )


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET c = v[, ...] [WHERE ...]``."""

    table: str
    assignments: tuple[Assignment, ...]
    where: tuple[PredicateType, ...] = ()

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("an UPDATE statement needs at least one assignment")

    def predicate_columns(self) -> tuple[ColumnRef, ...]:
        """Columns referenced anywhere in the WHERE conjunction."""
        return tuple(pred.column for pred in self.where)


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: tuple[PredicateType, ...] = ()

    def predicate_columns(self) -> tuple[ColumnRef, ...]:
        """Columns referenced anywhere in the WHERE conjunction."""
        return tuple(pred.column for pred in self.where)


#: Union type of every statement the parser can return.
Statement = SelectStatement | InsertStatement | UpdateStatement | DeleteStatement

#: Write statements, as a tuple for isinstance checks.
WriteStatement = (InsertStatement, UpdateStatement, DeleteStatement)


def column_of(name: str) -> ColumnRef:
    """Build a :class:`ColumnRef` from ``"name"`` or ``"table.name"``."""
    if "." in name:
        table, _, col = name.partition(".")
        return ColumnRef(col, table)
    return ColumnRef(name)
