"""Observability: structured run tracing + process-wide metrics.

The paper's replay experiments are long multi-stage loops (Algorithm 2's
line search inside a windowed replay inside an experiment grid); this
package makes those loops inspectable without changing their behavior:

* :mod:`repro.obs.trace` — :class:`RunTracer`, a JSONL event emitter
  with monotonic timestamps and a deterministic sequence number, plus
  the process-wide activation plumbing (:func:`tracer`,
  :func:`set_tracer`, :func:`trace_to`).  Zero-cost when disabled.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, named
  counters/gauges/histograms with a process-wide default
  (:func:`get_metrics`), rendered by ``python -m repro stats``.

Event schema and metrics catalog: ``docs/observability.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    RunTracer,
    set_tracer,
    trace_to,
    tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "get_metrics",
    "NULL_TRACER",
    "NullTracer",
    "RunTracer",
    "set_tracer",
    "trace_to",
    "tracer",
]
