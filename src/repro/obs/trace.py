"""Structured run tracing: JSONL events with monotonic timestamps.

One :class:`RunTracer` writes one JSON object per line to a sink::

    {"event": "iteration", "seq": 12, "t": 8123.551, "index": 1, ...}

* ``event`` — the event name (see ``docs/observability.md`` for the
  catalog),
* ``seq`` — a per-tracer monotonically increasing sequence number (the
  deterministic ordering key),
* ``t`` — ``time.monotonic()`` at emission (the only field whose value
  is not deterministic across runs; every other field must be, so
  backend-equivalence tests can assert on event sequences).

Tracing is **off by default and zero-cost when off**: the active tracer
is a :data:`NULL_TRACER` whose ``emit`` is a no-op and whose ``enabled``
flag is ``False``, and the hot call sites guard with
``if t.enabled: t.emit(...)`` so disabled runs never even build the
event's keyword arguments.  Activation follows the :mod:`logging`
pattern — a process-wide active tracer (:func:`tracer` /
:func:`set_tracer`) with a :func:`trace_to` context manager for the
common "write this run to a file" case.  Worker processes spawned by the
process backend inherit the default null tracer; all events of a
parallel run are emitted from the parent, which is what keeps serial and
process traces logically identical.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Callable, Iterator


class RunTracer:
    """Append structured events to a file-like sink as JSON lines.

    ``sink`` is any object with ``write(str)``; the tracer never closes
    sinks it did not open (see :meth:`open`).  ``clock`` is injectable
    for tests; it defaults to :func:`time.monotonic` so timestamps are
    immune to wall-clock adjustments and suitable for interval math.
    """

    #: Guard flag for hot call sites (``if t.enabled: t.emit(...)``).
    enabled = True

    def __init__(
        self,
        sink: IO[str],
        clock: Callable[[], float] = time.monotonic,
        source: str | None = None,
    ):
        self._sink = sink
        self._clock = clock
        self._source = source
        self._seq = 0
        self._lock = threading.Lock()
        self._owns_sink = False

    @classmethod
    def open(cls, path: str | Path, **kwargs) -> "RunTracer":
        """A tracer appending to ``path`` (closed by :meth:`close`)."""
        tracer = cls(Path(path).open("a", encoding="utf-8"), **kwargs)
        tracer._owns_sink = True
        return tracer

    @property
    def events_emitted(self) -> int:
        return self._seq

    def emit(self, event: str, /, **fields) -> None:
        """Write one event.  Field values should be JSON-serializable;
        anything that is not falls back to ``repr`` (tracing must never
        crash the run it observes)."""
        with self._lock:
            record: dict[str, object] = {"event": event, "seq": self._seq, "t": self._clock()}
            if self._source is not None:
                record["source"] = self._source
            record.update(fields)
            self._seq += 1
            self._sink.write(
                json.dumps(record, separators=(",", ":"), default=repr) + "\n"
            )

    def flush(self) -> None:
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Flush, and close the sink if this tracer opened it."""
        self.flush()
        if self._owns_sink:
            self._sink.close()

    def __enter__(self) -> "RunTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    events_emitted = 0

    def emit(self, event: str, /, **fields) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: The process-default tracer; call sites fall back to it when no run
#: tracer is active, so tracing costs one truthiness check when off.
NULL_TRACER = NullTracer()

_active: RunTracer | NullTracer = NULL_TRACER


def tracer() -> RunTracer | NullTracer:
    """The currently active tracer (the null tracer when tracing is off)."""
    return _active


def set_tracer(new: RunTracer | NullTracer | None) -> RunTracer | NullTracer:
    """Install ``new`` as the active tracer (``None`` = disable).

    Returns the previously active tracer so callers can restore it —
    :func:`trace_to` does exactly that.
    """
    global _active
    previous = _active
    _active = NULL_TRACER if new is None else new
    return previous


@contextmanager
def trace_to(path: str | Path, source: str | None = None) -> Iterator[RunTracer]:
    """Activate a JSONL tracer appending to ``path`` for one block::

        with trace_to("run.jsonl"):
            session.design()

    The previous active tracer is restored (and the file closed) on
    exit, even on error.
    """
    run_tracer = RunTracer.open(path, source=source)
    previous = set_tracer(run_tracer)
    try:
        yield run_tracer
    finally:
        set_tracer(previous)
        run_tracer.close()
