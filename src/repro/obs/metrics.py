"""Process-wide metrics: counters, gauges, and histograms.

The registry is the numeric side of the observability layer (the event
side is :mod:`repro.obs.trace`).  It is deliberately tiny and
dependency-free:

* :class:`Counter` — monotonically increasing integer (cache evictions,
  retried tasks, redesigns),
* :class:`Gauge` — last-written value (cache sizes, hit rates),
* :class:`Histogram` — streaming count/sum/min/max of observations
  (per-chunk wall times); no buckets, because the consumers here want
  summary rows, not quantile sketches.

Instruments are cheap mutable objects with ``__slots__``; hot paths hold
a direct reference and pay one attribute increment per update.  The
process-wide registry (:func:`get_metrics`) mirrors the way
:mod:`logging` exposes a root logger: library code publishes into it
without threading a registry through every constructor, and
``python -m repro stats`` renders it.  Updates are not locked — CPython
attribute stores are atomic enough for monitoring counters, and the
parallel backends only ever update from the parent process (workers
return plain values; see :mod:`repro.parallel.backends`).
"""

from __future__ import annotations

from dataclasses import dataclass


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Streaming count/sum/min/max of observed values."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.reset()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


@dataclass(frozen=True)
class MetricSample:
    """One rendered metric: ``(name, kind, value)``."""

    name: str
    kind: str
    value: object


class MetricsRegistry:
    """Named instruments, created on first use, stable identity after.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, so call sites may cache
    the instrument and update it directly.  A name registered as one
    kind cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, object]:
        """``{name: value}``; histograms render as a summary dict."""
        out: dict[str, object] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = {
                    "count": instrument.count,
                    "total": instrument.total,
                    "mean": instrument.mean,
                    "min": instrument.minimum if instrument.count else None,
                    "max": instrument.maximum if instrument.count else None,
                }
            else:
                out[name] = instrument.value
        return out

    def samples(self) -> list[MetricSample]:
        """Flat, name-sorted samples for the reporting tables."""
        rendered: list[MetricSample] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                rendered.append(MetricSample(name, "counter", instrument.value))
            elif isinstance(instrument, Gauge):
                rendered.append(MetricSample(name, "gauge", instrument.value))
            else:
                rendered.append(
                    MetricSample(
                        name,
                        "histogram",
                        f"n={instrument.count} mean={instrument.mean:g}",
                    )
                )
        return rendered

    def reset(self) -> None:
        """Zero every instrument **in place** (identities survive, so
        call sites holding a direct reference keep publishing)."""
        for instrument in self._instruments.values():
            instrument.reset()


#: The process-wide registry (the metrics analogue of the root logger).
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL
