"""The stable public entry point: ``RunConfig`` + ``RobustDesignSession``.

Before this module, launching a run meant hand-wiring
``ExperimentScale`` → ``ExperimentContext`` → adapter → nominal designer
→ sampler → ``CliffGuard`` with ~13 constructor kwargs.  The facade
collapses that to::

    from repro import RobustDesignSession, RunConfig

    session = RobustDesignSession(RunConfig(workload="R1", jobs=4, backend="process"))
    outcome = session.design()        # robust design for the latest window
    sweep = session.sweep()           # Figures 8-9: the Γ knob
    comparison = session.replay()     # Figure 7: the designer zoo

``RunConfig`` is a frozen dataclass that validates every knob at
construction; ``RobustDesignSession`` owns the lazily built context,
engine stack, and execution backend (see :mod:`repro.parallel`).  The
``backend``/``jobs`` pair is the single parallelism knob: ``design()``
fans the Γ-neighborhood costing out across workers, while ``sweep()`` and
``replay()`` fan out whole per-Γ / per-designer replays.

The configuration is split in two: ``RunConfig`` is the **batch core**
(workload, engine, scale, search effort, backend, observability), and
:class:`repro.serve.ServeConfig` is the **streaming half** (stream
source, window length, re-design policy, swap/checkpoint cadence).  A
serving session is the pair::

    session = repro.serve_session(RunConfig(workload="R1"),
                                  ServeConfig(policy="drift"))
    outcome = session.serve()         # the online tuning daemon

Everything — CLI, tests, examples — drives the daemon through this same
facade; there is no second configuration path (docs/serving.md).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, fields, replace

from repro.core.cliffguard import CliffGuardReport
from repro.designers import registry
from repro.obs import MetricsRegistry, RunTracer, get_metrics, set_tracer
from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    _engine_stack,
    run_designer_comparison,
    run_gamma_sweep,
    run_schedule_comparison,
)
from repro.harness.replay import ReplayResult
from repro.harness.scheduler import (
    DriftTriggeredPolicy,
    PeriodicPolicy,
    ScheduleOutcome,
)
from repro.parallel.backends import ExecutionBackend, SerialBackend, resolve_backend
from repro.serve.config import ServeConfig
from repro.serve.daemon import ServeDaemon, ServeOutcome
from repro.serve.sources import QuerySource, TraceSource, resolve_source
from repro.state import RunCheckpointer
from repro.workload.workload import Workload

WORKLOADS = ("R1", "S1", "S2", "OLTP", "ECOMMERCE", "HTAP")
ENGINES = ("columnar", "rowstore")
BACKENDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class RunConfig:
    """Every *batch* knob of a run, validated once, immutable thereafter.

    ``backend="auto"`` defers to the ``REPRO_BACKEND``/``REPRO_JOBS``
    environment (falling back to serial) — that is how the CI matrix runs
    the whole suite on the process backend without touching call sites.

    Streaming knobs (stream source, sliding-window length, re-design
    policy, swap cadence) live in :class:`repro.serve.ServeConfig`; a
    serving session is the ``(RunConfig, ServeConfig)`` pair — see
    :meth:`RobustDesignSession.serve` and docs/serving.md.
    """

    #: Trace profile: drifting retail (R1), static (S1), drifting (S2).
    workload: str = "R1"
    #: Engine substrate: Vertica-like columnar or DBMS-X-like row store.
    engine: str = "columnar"
    #: Trace length in days.
    days: int = 196
    #: Replay window size in days.
    window_days: int = 28
    #: Workload intensity.
    queries_per_day: int = 15
    #: Γ-neighborhood sample count n (paper default 20).
    n_samples: int = 10
    #: CliffGuard iteration budget (paper default 5).
    iterations: int = 5
    #: Seed for trace generation and neighborhood sampling.
    seed: int = 42
    #: Robustness knob Γ; ``None`` derives it from average past drift.
    gamma: float | None = None
    #: Legacy (never-queried) tables padding the schema.
    legacy_tables: int = 200
    #: Train→test transitions evaluated per replay (``None`` = all).
    max_transitions: int | None = 1
    #: Warm-up transitions skipped at the start of every replay.
    skip_transitions: int = 3
    #: Storage budget as a fraction of raw data bytes.
    budget_fraction: float = 0.5
    #: Execution backend: "auto", "serial", "thread", "process", an
    #: :class:`~repro.parallel.backends.ExecutionBackend` instance, or
    #: ``None`` for the inline serial path.
    backend: ExecutionBackend | str | None = "auto"
    #: Worker count for the thread/process backends (``None`` = one per core).
    jobs: int | None = None
    #: Per-task timeout (seconds) before a task is retried serially.
    task_timeout: float | None = None
    #: JSONL trace file (appended).  When set, the session activates a
    #: :class:`repro.obs.RunTracer` around every entry point (``design``,
    #: ``replay``, ``sweep``, ``schedule``) — see docs/observability.md
    #: for the event schema.  ``None`` disables tracing (zero overhead).
    trace_path: str | os.PathLike | None = None
    #: Metrics registry the session publishes into (``None`` = the
    #: process-wide default, :func:`repro.obs.get_metrics`).
    metrics: MetricsRegistry | None = None
    #: Checkpoint file for crash-safe resume (docs/state.md).  When set,
    #: every entry point snapshots its progress at natural boundaries
    #: (iteration, window transition, Γ-point, grid cell) through a
    #: :class:`repro.state.RunCheckpointer`; ``None`` disables
    #: checkpointing entirely (zero overhead).
    checkpoint_path: str | os.PathLike | None = None
    #: Write a snapshot every N boundaries (1 = every boundary).
    checkpoint_every: int = 1
    #: Resume from the snapshot at ``checkpoint_path`` when one exists.
    #: A resumed run is bit-identical to an uninterrupted one.
    resume: bool = False

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(f"workload must be one of {WORKLOADS}, got {self.workload!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        for name in ("days", "window_days", "queries_per_day", "n_samples"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        if self.days < self.window_days:
            raise ValueError("days must cover at least one window")
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")
        if self.gamma is not None and self.gamma < 0:
            raise ValueError("gamma must be non-negative when set")
        if self.legacy_tables < 0:
            raise ValueError("legacy_tables must be non-negative")
        if self.max_transitions is not None and self.max_transitions < 1:
            raise ValueError("max_transitions must be at least 1 when set")
        if self.skip_transitions < 0:
            raise ValueError("skip_transitions must be non-negative")
        if not 0 < self.budget_fraction <= 1:
            raise ValueError("budget_fraction must be in (0, 1]")
        if self.backend is not None and not isinstance(self.backend, ExecutionBackend):
            if not isinstance(self.backend, str) or self.backend not in BACKENDS:
                raise ValueError(
                    f"backend must be one of {BACKENDS} or an ExecutionBackend, "
                    f"got {self.backend!r}"
                )
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be at least 1 when set")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive when set")
        if self.trace_path is not None and not isinstance(
            self.trace_path, (str, os.PathLike)
        ):
            raise ValueError(
                f"trace_path must be a path, got {self.trace_path!r}"
            )
        if self.metrics is not None and not isinstance(self.metrics, MetricsRegistry):
            raise ValueError(
                f"metrics must be a repro.obs.MetricsRegistry, got {self.metrics!r}"
            )
        if self.checkpoint_path is not None and not isinstance(
            self.checkpoint_path, (str, os.PathLike)
        ):
            raise ValueError(
                f"checkpoint_path must be a path, got {self.checkpoint_path!r}"
            )
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if self.resume and self.checkpoint_path is None:
            raise ValueError("resume requires checkpoint_path")

    def with_overrides(self, **overrides) -> "RunConfig":
        """A copy with some knobs replaced (re-validated)."""
        return replace(self, **overrides)

    def scale(self) -> ExperimentScale:
        """The harness-level size knobs this config implies."""
        return ExperimentScale(
            days=self.days,
            window_days=self.window_days,
            queries_per_day=self.queries_per_day,
            n_samples=self.n_samples,
            iterations=self.iterations,
            seed=self.seed,
            legacy_tables=self.legacy_tables,
            max_transitions=self.max_transitions,
            skip_transitions=self.skip_transitions,
            budget_fraction=self.budget_fraction,
        )


@contextmanager
def _activated(tracer: RunTracer):
    """Install ``tracer`` as the process-active tracer for one block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.flush()


@dataclass
class DesignOutcome:
    """Result of one :meth:`RobustDesignSession.design` call."""

    #: The robust design (engine-specific design object).
    design: object
    #: Individual structures inside the design.
    structures: list = field(default_factory=list)
    #: Total bytes of the design (the paper's ``price(D)``).
    price_bytes: int = 0
    #: CliffGuard's run trace, including cost-call effort, the execution
    #: backend used, and the costing wall-time.
    report: CliffGuardReport | None = None
    #: Wall-clock seconds of the whole design call.
    wall_seconds: float = 0.0


class RobustDesignSession:
    """One configured run: context, engine stack, backend — lazily built.

    The session is the supported way to launch runs; the CLI, the
    benchmark suite, and the examples all construct through it.  Use as a
    context manager (or call :meth:`close`) to release pooled workers.
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        serve: ServeConfig | None = None,
        **overrides,
    ):
        if config is None:
            config = RunConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.serve_config = serve
        self._context: ExperimentContext | None = None
        self._backend: ExecutionBackend | None = None
        self._backend_resolved = False
        self._adapter = None
        self._nominal = None
        self._tracer: RunTracer | None = None
        self._checkpointer: RunCheckpointer | None = None

    # -- lazily built pieces -----------------------------------------------------

    @property
    def context(self) -> ExperimentContext:
        """Schema, traces, and windows at the configured scale."""
        if self._context is None:
            self._context = ExperimentContext(self.config.scale())
        return self._context

    @property
    def backend(self) -> ExecutionBackend | None:
        """The resolved execution backend (``None`` = inline serial)."""
        if not self._backend_resolved:
            self._backend = resolve_backend(
                self.config.backend,
                jobs=self.config.jobs,
                task_timeout=self.config.task_timeout,
            )
            self._backend_resolved = True
        return self._backend

    @property
    def adapter(self):
        """The engine adapter, with neighborhood costing fanned out over
        the session backend."""
        if self._adapter is None:
            self._adapter, self._nominal = _engine_stack(
                self.context, self.config.engine, self.backend
            )
        return self._adapter

    @property
    def nominal(self):
        """The engine's nominal ("existing") designer."""
        self.adapter
        return self._nominal

    @property
    def gamma(self) -> float:
        """The robustness knob: configured, or derived from past drift."""
        if self.config.gamma is not None:
            return self.config.gamma
        return self.context.default_gamma(self.config.workload)

    # -- observability ---------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this session publishes into."""
        return self.config.metrics if self.config.metrics is not None else get_metrics()

    @property
    def checkpointer(self) -> RunCheckpointer | None:
        """The crash-safe snapshot writer (``None`` when unconfigured)."""
        if self.config.checkpoint_path is None:
            return None
        if self._checkpointer is None:
            self._checkpointer = RunCheckpointer(
                self.config.checkpoint_path,
                every=self.config.checkpoint_every,
                resume=self.config.resume,
                metrics=self.config.metrics,
            )
        return self._checkpointer

    def _tracing(self):
        """Context that activates the session tracer (no-op when
        ``trace_path`` is unset — disabled tracing costs nothing)."""
        if self.config.trace_path is None:
            return nullcontext()
        if self._tracer is None:
            self._tracer = RunTracer.open(self.config.trace_path)
        return _activated(self._tracer)

    def _publish_metrics(self) -> None:
        """Push the costing service's counters into the registry."""
        service = getattr(self._adapter, "costing", None) if self._adapter else None
        if service is not None:
            service.publish_metrics(self.metrics)

    def designer(self, name: str = "CliffGuard", **cfg):
        """Build one registered designer wired to this session's stack."""
        merged = {
            "n_samples": self.config.n_samples,
            "max_iterations": self.config.iterations,
            **cfg,
        }
        designer, sampler = registry.get(
            name, self.adapter, self.nominal, self.gamma,
            make_sampler=self.context.sampler, **merged,
        )
        return designer, sampler

    # -- the three entry points ----------------------------------------------------

    def design(self, window: Workload | int | None = None) -> DesignOutcome:
        """Run CliffGuard on one window and return the robust design.

        ``window`` is a :class:`Workload`, a window index, or ``None`` for
        the latest complete window.  The sampler's perturbation pool is
        restricted to queries strictly before the window (no peeking at
        the future).  Neighborhood costing fans out over the session
        backend; results are bit-identical to serial at any worker count.
        """
        windows = self.context.trace_windows(self.config.workload)
        if window is None:
            window = windows[-2] if len(windows) > 1 else windows[-1]
        elif isinstance(window, int):
            window = windows[window]
        designer, sampler = self.designer("CliffGuard")
        if self.checkpointer is not None:
            designer.checkpointer = self.checkpointer
        start, _ = window.span_days
        sampler.set_pool(
            [q for q in self.context.trace(self.config.workload) if q.timestamp < start]
        )
        started = time.perf_counter()
        with self._tracing():
            design = designer.design(window)
        wall = time.perf_counter() - started
        self._publish_metrics()
        return DesignOutcome(
            design=design,
            structures=self.adapter.structures(design),
            price_bytes=self.adapter.design_price(design),
            report=designer.last_report,
            wall_seconds=wall,
        )

    def replay(self, which: list[str] | None = None) -> ReplayResult:
        """The Figure 7 / 10 / 15 designer comparison (per-designer fan-out)."""
        with self._tracing():
            result = run_designer_comparison(
                self.context,
                self.config.workload,
                engine=self.config.engine,
                which=which,
                gamma=self.config.gamma,
                backend=self.backend,
                checkpointer=self.checkpointer,
            )
        self._publish_metrics()
        return result

    def sweep(self, gammas: list[float] | None = None) -> dict[float, tuple[float, float]]:
        """The Figures 8–9 robustness-knob sweep (per-Γ fan-out)."""
        with self._tracing():
            result = run_gamma_sweep(
                self.context,
                self.config.workload,
                gammas=gammas,
                backend=self.backend,
                checkpointer=self.checkpointer,
            )
        self._publish_metrics()
        return result

    def schedule(
        self,
        everies: tuple[int, ...] = (1, 2),
        designers: tuple[str, ...] = ("ExistingDesigner", "CliffGuard"),
    ) -> dict[tuple[str, int], ScheduleOutcome]:
        """Re-design-frequency comparison (per-(designer, period) fan-out)."""
        with self._tracing():
            result = run_schedule_comparison(
                self.context,
                self.config.workload,
                engine=self.config.engine,
                everies=everies,
                designers=designers,
                gamma=self.config.gamma,
                backend=self.backend,
                checkpointer=self.checkpointer,
            )
        self._publish_metrics()
        return result

    # -- the streaming entry point ---------------------------------------------------

    def daemon(self, serve: ServeConfig | None = None, **overrides) -> ServeDaemon:
        """Build the online tuning daemon for this session (docs/serving.md).

        ``serve`` overrides the session's attached :class:`ServeConfig`
        (both default to ``ServeConfig()``); keyword ``overrides`` patch
        individual serve knobs.  Run-config knobs (scale, engine,
        backend, …) come from the session as everywhere else — one
        facade, one configuration path.
        """
        cfg = serve if serve is not None else self.serve_config
        if cfg is None:
            cfg = ServeConfig()
        if overrides:
            cfg = cfg.with_overrides(**overrides)
        workload = self.config.workload
        window_days = (
            cfg.window_days if cfg.window_days is not None else float(self.config.window_days)
        )
        threshold = (
            cfg.threshold
            if cfg.threshold is not None
            else self.context.default_gamma(workload)
        )
        if cfg.policy == "periodic":
            policy = PeriodicPolicy(every=cfg.every)
        else:
            policy = DriftTriggeredPolicy(self.context.distance, threshold)
        if cfg.source is None or cfg.source == "trace":
            source: QuerySource = TraceSource(
                self.context.trace(workload), window_days=window_days
            )
        else:
            source = resolve_source(cfg.source)
        checkpoint_path = (
            cfg.checkpoint_path
            if cfg.checkpoint_path is not None
            else self.config.checkpoint_path
        )
        resume = cfg.resume if cfg.resume is not None else self.config.resume
        if resume and checkpoint_path is None:
            raise ValueError("serve resume requires a checkpoint path")
        checkpointer = None
        if checkpoint_path is not None:
            checkpointer = RunCheckpointer(
                checkpoint_path,
                every=(
                    cfg.checkpoint_every
                    if cfg.checkpoint_every is not None
                    else self.config.checkpoint_every
                ),
                resume=resume,
                metrics=self.config.metrics,
            )
        # ``submit`` needs a real backend; the inline serial path maps to
        # an explicit SerialBackend (reference semantics, blocking swaps).
        backend = self.backend if self.backend is not None else SerialBackend()
        # Online learners (learns_online) must live in the daemon process
        # — background workers would lose the per-boundary feedback — so
        # the designer is instantiated here and handed over; classic
        # designers keep re-designing by name in background tasks.
        built, _ = self.designer(cfg.designer)
        learner = built if getattr(built, "learns_online", False) else None
        return ServeDaemon(
            scale=self.config.scale(),
            workload=workload,
            engine=self.config.engine,
            gamma=self.gamma,
            designer=cfg.designer,
            adapter=self.adapter,
            source=source,
            policy=policy,
            window_days=window_days,
            serve=cfg,
            backend=backend,
            distance=self.context.distance,
            threshold=threshold,
            checkpointer=checkpointer,
            learner=learner,
        )

    def serve(self, serve: ServeConfig | None = None, **overrides) -> ServeOutcome:
        """Run the online tuning daemon to stream end (or ``max_queries``).

        Ingests the configured query stream, prices every query against
        the epoch-fenced active design, launches background CliffGuard
        re-designs when the policy fires, and hot-swaps them in — see
        docs/serving.md for the architecture and guarantees.  Emits the
        ``serve.*`` event/metric family when tracing is on.
        """
        daemon = self.daemon(serve, **overrides)
        with self._tracing():
            outcome = daemon.run()
        self._publish_metrics()
        return outcome

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Release pooled backend workers and close the trace file (the
        session stays usable — both are recreated lazily on next use)."""
        if self._backend is not None:
            self._backend.shutdown()
        if self._tracer is not None:
            self._tracer.close()
            self._tracer = None

    def __enter__(self) -> "RobustDesignSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        knobs = ", ".join(
            f"{f.name}={getattr(self.config, f.name)!r}"
            for f in fields(self.config)
            if getattr(self.config, f.name) != f.default
        )
        return f"RobustDesignSession({knobs})"


def serve_session(
    config: RunConfig | None = None,
    serve: ServeConfig | None = None,
    **overrides,
) -> RobustDesignSession:
    """A session pre-wired for online serving (re-exported as
    ``repro.serve_session``).

    ``config`` carries the batch core, ``serve`` the streaming knobs;
    keyword ``overrides`` patch the run config.  The returned session's
    :meth:`RobustDesignSession.serve` runs the daemon::

        outcome = repro.serve_session(workload="R1").serve(max_queries=500)
    """
    if serve is None:
        serve = ServeConfig()
    return RobustDesignSession(config, serve=serve, **overrides)
