"""Schema catalog: tables, columns, foreign keys, and name resolution.

The catalog is pure metadata — actual data lives in the engines.  Both the
columnar and the row-store substrates share one :class:`Schema`, as the
paper's two evaluation targets (Vertica and DBMS-X) shared one workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.types import ColumnType


class SchemaError(ValueError):
    """Raised on unknown tables/columns or inconsistent definitions."""


@dataclass(frozen=True)
class Column:
    """A column definition.

    ``ndv`` is the declared number of distinct values and drives both the
    data generator and the cost models' selectivity estimates; ``skew``
    (a Zipf-like exponent, 0 = uniform) shapes the generated value
    distribution.
    """

    name: str
    type: ColumnType
    ndv: int = 1000
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.ndv <= 0:
            raise SchemaError(f"column {self.name!r}: ndv must be positive")
        if self.skew < 0:
            raise SchemaError(f"column {self.name!r}: skew must be >= 0")


@dataclass(frozen=True)
class ForeignKey:
    """``table.column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class Table:
    """A table definition: ordered columns plus a declared row count."""

    name: str
    columns: list[Column]
    row_count: int = 100_000
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.row_count <= 0:
            raise SchemaError(f"table {self.name!r}: row_count must be positive")
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(
                    f"table {self.name!r}: duplicate column {column.name!r}"
                )
            seen.add(column.name)
        self._by_name = {column.name: column for column in self.columns}

    def column(self, name: str) -> Column:
        """Look up a column by bare name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """True when the table defines ``name``."""
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    @property
    def row_bytes(self) -> int:
        """Approximate width of one full row, in bytes."""
        return sum(column.type.byte_width for column in self.columns)


@dataclass
class Schema:
    """A set of tables with qualified-name resolution."""

    tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        """Register ``table``; duplicate names are an error."""
        if table.name in self.tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name!r}") from None

    def resolve(self, qualified: str) -> tuple[Table, Column]:
        """Resolve ``"table.column"`` (or a bare, unambiguous name).

        A bare column name resolves only when exactly one table defines it.
        """
        if "." in qualified:
            table_name, _, column_name = qualified.partition(".")
            table = self.table(table_name)
            return table, table.column(column_name)
        owners = [t for t in self.tables.values() if t.has_column(qualified)]
        if not owners:
            raise SchemaError(f"no table defines column {qualified!r}")
        if len(owners) > 1:
            names = ", ".join(sorted(t.name for t in owners))
            raise SchemaError(f"ambiguous column {qualified!r} (in {names})")
        return owners[0], owners[0].column(qualified)

    @property
    def total_columns(self) -> int:
        """Total column count across all tables (the paper's ``n``)."""
        return sum(len(table.columns) for table in self.tables.values())

    def all_qualified_columns(self) -> list[str]:
        """Every ``table.column`` name, in deterministic order."""
        names: list[str] = []
        for table_name in sorted(self.tables):
            table = self.tables[table_name]
            names.extend(f"{table_name}.{c}" for c in table.column_names)
        return names
