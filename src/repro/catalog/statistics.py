"""Column statistics and selectivity estimation.

Both what-if cost models estimate predicate selectivities from the same
statistics a production optimizer would keep: distinct-value counts,
min/max bounds, and equi-width histograms.  Statistics can be *declared*
(derived from the schema, for cost-only runs) or *measured* from generated
data (for runs that also execute queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.schema import Column, Table
from repro.catalog.types import ColumnType
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    PredicateType,
)

#: Default selectivity for predicate shapes the estimator cannot reason
#: about precisely (mirrors the classic System R magic numbers).
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_NULL_FRACTION = 0.01
#: Histogram resolution for measured statistics.
HISTOGRAM_BINS = 64


@dataclass
class ColumnStatistics:
    """Statistics for one column."""

    ndv: int
    min_value: float
    max_value: float
    null_fraction: float = 0.0
    histogram: np.ndarray | None = None  # normalized equi-width bin masses
    histogram_edges: np.ndarray | None = None

    @classmethod
    def declared(cls, column: Column, row_count: int) -> "ColumnStatistics":
        """Build statistics from the schema declaration alone.

        Values are assumed to span ``[0, ndv)`` — exactly what the data
        generator produces for codes — so declared and measured statistics
        agree in expectation.
        """
        ndv = min(column.ndv, row_count)
        if column.type is ColumnType.BOOL:
            ndv = 2
        return cls(ndv=ndv, min_value=0.0, max_value=float(max(ndv - 1, 0)))

    @classmethod
    def measured(cls, values: np.ndarray) -> "ColumnStatistics":
        """Compute statistics from actual column values."""
        if values.size == 0:
            return cls(ndv=1, min_value=0.0, max_value=0.0)
        if values.dtype == np.bool_:
            values = values.astype(np.int64)
        finite = values[np.isfinite(values.astype(np.float64))]
        if finite.size == 0:  # pragma: no cover - NaN-only columns
            return cls(ndv=1, min_value=0.0, max_value=0.0)
        lo = float(finite.min())
        hi = float(finite.max())
        ndv = int(np.unique(finite).size)
        hist, edges = np.histogram(
            finite.astype(np.float64), bins=HISTOGRAM_BINS, range=(lo, max(hi, lo + 1e-9))
        )
        mass = hist.astype(np.float64)
        total = mass.sum()
        if total > 0:
            mass /= total
        return cls(
            ndv=max(ndv, 1),
            min_value=lo,
            max_value=hi,
            histogram=mass,
            histogram_edges=edges,
        )

    # -- selectivity primitives ------------------------------------------------

    def equality_selectivity(self) -> float:
        """Selectivity of ``col = const`` (uniform over NDV)."""
        return 1.0 / max(self.ndv, 1)

    def range_fraction(self, low: float, high: float) -> float:
        """Fraction of values in ``[low, high]``.

        Uses the histogram when available, otherwise assumes a uniform
        spread between min and max.
        """
        if high < low:
            return 0.0
        lo = max(low, self.min_value)
        hi = min(high, self.max_value)
        if hi < lo:
            return 0.0
        span = self.max_value - self.min_value
        if span <= 0:
            return 1.0
        if self.histogram is None or self.histogram_edges is None:
            return min(1.0, max(0.0, (hi - lo) / span))
        edges = self.histogram_edges
        mass = 0.0
        for i, bin_mass in enumerate(self.histogram):
            b_lo, b_hi = edges[i], edges[i + 1]
            width = b_hi - b_lo
            if width <= 0:
                continue
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            mass += bin_mass * (overlap / width)
        return min(1.0, max(0.0, mass))


def _literal_as_float(value: object) -> float | None:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        # String constants are compared by dictionary code in the engines;
        # for estimation we fall back to NDV-based uniformity, signalled by
        # returning None.
        return None
    return None


@dataclass
class TableStatistics:
    """Statistics for a whole table."""

    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def declared(cls, table: Table) -> "TableStatistics":
        """Derive statistics from the table declaration."""
        return cls(
            row_count=table.row_count,
            columns={
                column.name: ColumnStatistics.declared(column, table.row_count)
                for column in table.columns
            },
        )

    def column(self, name: str) -> ColumnStatistics:
        """Look up statistics for a column by bare name."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no statistics for column {name!r}") from None

    def predicate_selectivity(self, predicate: PredicateType) -> float:
        """Estimate the selectivity of one predicate against this table.

        Unknown columns estimate conservatively at 1.0 (no filtering) so a
        workload referencing stale schema never crashes the designers — the
        paper's real trace had exactly this property (only 15.5K of 430K
        queries conformed to the latest schema).
        """
        name = predicate.column.name
        if name not in self.columns:
            return 1.0
        stats = self.columns[name]
        if isinstance(predicate, ComparisonPredicate):
            value = _literal_as_float(predicate.value.value)
            eq = stats.equality_selectivity()
            if predicate.op == "=":
                return eq
            if predicate.op == "!=":
                return max(0.0, 1.0 - eq)
            if value is None:
                # Range over a non-numeric literal: assume a third passes.
                return 1.0 / 3.0
            if predicate.op in ("<", "<="):
                return stats.range_fraction(stats.min_value, value)
            return stats.range_fraction(value, stats.max_value)
        if isinstance(predicate, BetweenPredicate):
            low = _literal_as_float(predicate.low.value)
            high = _literal_as_float(predicate.high.value)
            if low is None or high is None:
                return 1.0 / 4.0
            return stats.range_fraction(low, high)
        if isinstance(predicate, InPredicate):
            return min(1.0, len(predicate.values) * stats.equality_selectivity())
        if isinstance(predicate, LikePredicate):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(predicate, IsNullPredicate):
            null_fraction = stats.null_fraction or DEFAULT_NULL_FRACTION
            return (1.0 - null_fraction) if predicate.negated else null_fraction
        raise TypeError(f"unknown predicate type: {type(predicate).__name__}")

    def conjunction_selectivity(self, predicates: tuple[PredicateType, ...]) -> float:
        """Independence-assumption selectivity of a conjunction."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(predicate)
        return selectivity
