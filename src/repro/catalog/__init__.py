"""Catalog substrate: schema metadata, column statistics, and data generation.

* :mod:`repro.catalog.types` — column types,
* :mod:`repro.catalog.schema` — tables, columns, foreign keys, resolution,
* :mod:`repro.catalog.statistics` — per-column statistics used by the
  what-if cost models (NDV, min/max, histograms, selectivity estimation),
* :mod:`repro.catalog.datagen` — seeded synthetic data matching the declared
  statistics, for real execution in tests and examples.
"""

from repro.catalog.schema import Column, ForeignKey, Schema, Table
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.catalog.types import ColumnType

__all__ = [
    "Column",
    "ColumnStatistics",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "TableStatistics",
]
