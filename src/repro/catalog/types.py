"""Column types for the catalog.

Types are deliberately coarse: the cost models only need a per-cell byte
width and to know whether a column is orderable, and the data generator only
needs to know what kind of values to draw.
"""

from __future__ import annotations

import enum

import numpy as np


class ColumnType(enum.Enum):
    """Logical column type."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"  # stored as days since an epoch (int64)
    BOOL = "bool"

    @property
    def byte_width(self) -> int:
        """Approximate storage width of one cell, in bytes.

        Strings are dictionary-encoded in the columnar engine, so their
        effective width is a code word plus amortized dictionary cost.
        """
        return _BYTE_WIDTHS[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store this column's values.

        Strings are stored as int64 dictionary codes; the dictionary itself
        lives beside the column in :class:`repro.engine.storage.ColumnData`.
        """
        dtypes = {
            ColumnType.INT: np.dtype(np.int64),
            ColumnType.FLOAT: np.dtype(np.float64),
            ColumnType.STRING: np.dtype(np.int64),
            ColumnType.DATE: np.dtype(np.int64),
            ColumnType.BOOL: np.dtype(np.bool_),
        }
        return dtypes[self]

    @property
    def is_orderable(self) -> bool:
        """Whether range predicates and sort orders make sense."""
        return self is not ColumnType.BOOL


#: Hoisted so the hot ``byte_width`` lookup never rebuilds the table.
_BYTE_WIDTHS = {
    ColumnType.INT: 8,
    ColumnType.FLOAT: 8,
    ColumnType.STRING: 16,
    ColumnType.DATE: 8,
    ColumnType.BOOL: 1,
}
