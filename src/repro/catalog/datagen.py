"""Seeded synthetic data generation.

Generates numpy column arrays that match the declared schema statistics
(NDV, skew).  The executor runs real queries over this data, which lets the
test suite validate the cost model's *orderings* against actually measured
work and lets the examples demonstrate end-to-end behaviour.

All generation is deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, Schema, Table
from repro.catalog.types import ColumnType


def _zipf_weights(ndv: int, skew: float) -> np.ndarray:
    """Normalized Zipf(skew) weights over ``ndv`` ranks (skew=0 ⇒ uniform)."""
    ranks = np.arange(1, ndv + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(ndv)
    return weights / weights.sum()


def generate_column(
    column: Column, row_count: int, rng: np.random.Generator
) -> np.ndarray:
    """Generate one column's values.

    Integer/date/string columns draw dictionary codes in ``[0, ndv)`` with
    the declared skew; float columns draw the same codes plus uniform jitter
    so ranges stay meaningful; booleans are fair coin flips.
    """
    ndv = min(column.ndv, max(row_count, 1))
    if column.type is ColumnType.BOOL:
        return rng.integers(0, 2, size=row_count).astype(np.bool_)
    weights = _zipf_weights(ndv, column.skew)
    codes = rng.choice(ndv, size=row_count, p=weights)
    if column.type is ColumnType.FLOAT:
        jitter = rng.uniform(0.0, 1.0, size=row_count)
        return codes.astype(np.float64) + jitter
    return codes.astype(np.int64)


def generate_table(
    table: Table, rng: np.random.Generator, row_count: int | None = None
) -> dict[str, np.ndarray]:
    """Generate all columns of ``table`` as a name → array mapping."""
    rows = table.row_count if row_count is None else row_count
    return {
        column.name: generate_column(column, rows, rng) for column in table.columns
    }


def generate_database(
    schema: Schema, seed: int = 0, scale: float = 1.0
) -> dict[str, dict[str, np.ndarray]]:
    """Generate data for every table in ``schema``.

    ``scale`` multiplies declared row counts, so tests can run the same
    schema at a fraction of the benchmark size.  Foreign-key columns are
    re-drawn uniformly over the referenced table's generated key range so
    joins actually match.
    """
    rng = np.random.default_rng(seed)
    database: dict[str, dict[str, np.ndarray]] = {}
    row_counts: dict[str, int] = {}
    for name in sorted(schema.tables):
        table = schema.tables[name]
        rows = max(1, int(round(table.row_count * scale)))
        row_counts[name] = rows
        database[name] = generate_table(table, rng, row_count=rows)
    # Columns referenced by foreign keys are primary keys: make them unique
    # (a shuffled 0..n-1 sequence) so equi-joins have exact semantics.
    for table in schema.tables.values():
        for fk in table.foreign_keys:
            if fk.ref_table in database:
                rows = row_counts[fk.ref_table]
                keys = np.arange(rows, dtype=np.int64)
                rng.shuffle(keys)
                database[fk.ref_table][fk.ref_column] = keys
    # Re-link foreign keys to actually-present referenced values.
    for name in sorted(schema.tables):
        table = schema.tables[name]
        for fk in table.foreign_keys:
            if fk.ref_table not in database:
                continue
            ref_values = database[fk.ref_table].get(fk.ref_column)
            if ref_values is None or ref_values.size == 0:
                continue
            picks = rng.integers(0, ref_values.size, size=row_counts[name])
            database[name][fk.column] = ref_values[picks]
    return database
