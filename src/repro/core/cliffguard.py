"""Algorithm 2: the CliffGuard robust designer.

CliffGuard wraps an existing (nominal) designer — a black box — and
iterates:

1. **Neighborhood exploration**: evaluate the current design on ``n``
   perturbed workloads sampled in the Γ-neighborhood of ``W0``; the most
   expensive ones are the worst neighbors.  Following Section 4.3, the
   selection is loosened from the strict max to a top fraction to mitigate
   finite-sample bias; the default uses the whole neighborhood (every
   sample informs the move), and the ablation benches sweep the fraction.
2. **Robust local move**: build ``W_moved`` (Algorithm 3) and ask the
   nominal designer for its design.  Accept it only when it improves the
   worst-case cost over the sampled neighborhood; adapt the step size with
   backtracking line search (``α ← α·λ_success`` on success,
   ``α ← α·λ_failure`` on failure).
3. Stop after ``max_iterations`` or when improvement stalls.

Defaults mirror the paper's Section 6.1: ``n = 20`` samples, 5 iterations,
``λ_success = 5``, ``λ_failure = 0.5``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import ClassVar

from repro.costing.service import workload_fingerprint
from repro.designers.base import DesignAdapter, Designer
from repro.obs import tracer
from repro.state import (
    RunCheckpointer,
    costing_state,
    restore_costing,
    restore_sampler,
    run_key,
    sampler_state,
)
from repro.workload.sampler import NeighborhoodSampler
from repro.workload.workload import Workload


@dataclass
class CliffGuardReport:
    """Trace of one CliffGuard run (useful for the ablation benches)."""

    iterations: int = 0
    accepted_moves: int = 0
    worst_case_history: list[float] = field(default_factory=list)
    alpha_history: list[float] = field(default_factory=list)
    designer_calls: int = 0
    #: Query-cost evaluations requested during this run (cache hits
    #: included) — the designer-effort number the A1–A3 benches report.
    query_cost_calls: int = 0
    #: Raw cost-model invocations actually paid (misses only).
    raw_cost_model_calls: int = 0
    #: Lookups served by the cost-evaluation service's memo cache.
    cache_hits: int = 0
    #: The step size after the last accepted/rejected move.
    final_alpha: float = 0.0
    #: Execution backend that filled cost-cache misses ("serial",
    #: "thread", or "process") — see :mod:`repro.parallel`.
    backend: str = "serial"
    #: Wall-clock seconds spent inside cost evaluation during this run.
    eval_wall_seconds: float = 0.0
    #: (candidate, query) cells the candidate-matrix cache served warm
    #: during this run's nominal-designer calls.
    matrix_hits: int = 0
    #: (candidate, query) cells the kernel actually priced into matrix
    #: columns during this run.
    matrix_pairs_priced: int = 0
    #: (design, query) pairs the delta neighborhood path copied from the
    #: incumbent design instead of re-pricing.
    delta_pairs_saved: int = 0
    #: Wall-clock seconds spent inside the nominal designer's ``design``
    #: calls (the candidate generation + pricing + greedy selection the
    #: matrix cache accelerates).
    nominal_wall_seconds: float = 0.0

    #: Fields a resumed run may legitimately report differently from the
    #: uninterrupted run: wall-clock times, plus every counter derived
    #: from non-exported cache state (the matrix cache and the delta
    #: path are rebuilt cold after a resume; see docs/state.md).
    RESUME_EXEMPT_FIELDS: ClassVar[tuple[str, ...]] = (
        "eval_wall_seconds",
        "matrix_hits",
        "matrix_pairs_priced",
        "delta_pairs_saved",
        "nominal_wall_seconds",
    )


class CliffGuard(Designer):
    """The robust designer (paper Algorithm 2)."""

    name = "CliffGuard"

    def __init__(
        self,
        nominal: Designer,
        adapter: DesignAdapter,
        sampler: NeighborhoodSampler,
        gamma: float,
        n_samples: int = 20,
        max_iterations: int = 5,
        initial_alpha: float = 1.0,
        lambda_success: float = 5.0,
        lambda_failure: float = 0.5,
        worst_fraction: float = 1.0,
        min_worst: int = 1,
        patience: int | None = None,
        include_base_in_neighborhood: bool = True,
        keep_base_in_move: bool = True,
    ):
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if initial_alpha <= 0:
            raise ValueError("initial_alpha must be positive")
        if min_worst < 1:
            raise ValueError("min_worst must be at least 1")
        if not 0 < worst_fraction <= 1:
            raise ValueError("worst_fraction must be in (0, 1]")
        if lambda_success <= 1:
            raise ValueError("lambda_success must exceed 1")
        if not 0 < lambda_failure < 1:
            raise ValueError("lambda_failure must be in (0, 1)")
        if patience is not None and patience < 1:
            raise ValueError("patience must be at least 1 when set")
        self.nominal = nominal
        self.adapter = adapter
        self.sampler = sampler
        self.gamma = gamma
        self.n_samples = n_samples
        self.max_iterations = max_iterations
        self.initial_alpha = initial_alpha
        self.lambda_success = lambda_success
        self.lambda_failure = lambda_failure
        self.worst_fraction = worst_fraction
        self.min_worst = min_worst
        self.patience = patience
        self.include_base_in_neighborhood = include_base_in_neighborhood
        self.keep_base_in_move = keep_base_in_move
        self.last_report: CliffGuardReport | None = None
        #: Optional :class:`repro.state.RunCheckpointer`; when set,
        #: :meth:`design` snapshots the loop at every iteration boundary
        #: and resumes from the latest snapshot (see docs/state.md).
        self.checkpointer: RunCheckpointer | None = None

    # -- neighborhood machinery ----------------------------------------------------

    def _neighborhood_costs(
        self, neighborhood: list[Workload], design, reference=None
    ) -> list[float]:
        """f(W_i, D) for every sampled neighbor (average latency).

        Evaluated through the adapter's batched neighborhood API: the
        neighbors overwhelmingly share queries (they come from the same
        history pool), so each distinct query is costed once per design
        instead of once per neighbor.  ``reference`` (the incumbent
        design when evaluating a candidate move) lets the service
        re-price only the queries the design diff can touch — results
        stay bit-identical either way.
        """
        reports = self.adapter.evaluate_neighborhood(
            [design], neighborhood, reference=reference
        )[0]
        return [report.average_ms for report in reports]

    def _worst_neighbors(
        self, neighborhood: list[Workload], costs: list[float]
    ) -> list[Workload]:
        """Top-fraction most expensive neighbors (Section 4.3's loosened
        selection — strict max would inherit finite-sample bias).

        ``k`` is clamped to the neighborhood size: ``min_worst`` larger
        than the sample count must select the whole neighborhood rather
        than silently degrading through an oversized slice.
        """
        k = max(self.min_worst, math.ceil(len(neighborhood) * self.worst_fraction))
        k = min(k, len(neighborhood))
        ranked = sorted(range(len(neighborhood)), key=lambda i: -costs[i])
        return [neighborhood[i] for i in ranked[:k]]

    # -- the designer -------------------------------------------------------------------

    def design(self, workload: Workload):
        """Run Algorithm 2 and return the robust design.

        With a ``checkpointer`` attached, the loop state (iteration,
        α, accepted design, neighborhood costs, worst-case history, the
        sampler's bit-generator state, and the warm cost cache) is
        snapshotted after the initial neighborhood evaluation and after
        every iteration; a killed run resumed from any of those
        boundaries produces a bit-identical design and report (see
        docs/state.md).
        """
        from repro.core.move import move_workload

        report = CliffGuardReport()
        self.last_report = report
        service = getattr(self.adapter, "costing", None)
        baseline = service.stats.snapshot() if service is not None else None
        # Arena/matrix counters are derived state (never checkpointed), so
        # their baseline is taken fresh on every call — resumed runs
        # legitimately report different matrix/delta numbers (see
        # CliffGuardReport.RESUME_EXEMPT_FIELDS).
        arena_baseline = (
            service.arena_stats.snapshot() if service is not None else None
        )
        t = tracer()
        ckpt = self.checkpointer
        key = None
        state = None
        if ckpt is not None:
            key = run_key(
                "cliffguard",
                self.name,
                self.gamma,
                self.n_samples,
                self.max_iterations,
                self.initial_alpha,
                self.worst_fraction,
                self.min_worst,
                self.patience,
                # The Workload passes through whole: its fingerprint is
                # identity-memoized and the digest matches the old
                # list-based spelling, so checkpoint keys are unchanged.
                workload_fingerprint(workload),
            )
            state = ckpt.load("cliffguard", key)

        def checkpoint(next_iteration: int) -> None:
            if ckpt is None:
                return
            ckpt.step(
                "cliffguard",
                key,
                lambda: {
                    "next_iteration": next_iteration,
                    "design": design,
                    "neighborhood": neighborhood,
                    "costs": costs,
                    "worst_case": worst_case,
                    "alpha": alpha,
                    "stale": stale,
                    "report": report,
                    "baseline": baseline,
                    "sampler": sampler_state(self.sampler),
                    "costing": costing_state(self.adapter),
                },
            )

        if state is None:
            if t.enabled:
                t.emit(
                    "design_start",
                    designer=self.name,
                    gamma=self.gamma,
                    n_samples=self.n_samples,
                    max_iterations=self.max_iterations,
                    queries=len(workload),
                )

            nominal_started = time.perf_counter()
            design = self.nominal.design(workload)  # Line 1: initial nominal design
            report.nominal_wall_seconds += time.perf_counter() - nominal_started
            report.designer_calls += 1
            if self.gamma == 0 or self.max_iterations == 0 or not workload:
                # Γ = 0 degenerates to the nominal design by definition.
                self._finish(
                    report, service, baseline, self.initial_alpha, arena_baseline
                )
                return design

            neighborhood = self.sampler.sample(workload, self.gamma, self.n_samples)
            if self.include_base_in_neighborhood:
                neighborhood = [workload] + neighborhood

            costs = self._neighborhood_costs(neighborhood, design)
            worst_case = max(costs) if costs else 0.0
            report.worst_case_history.append(worst_case)

            alpha = self.initial_alpha
            stale = 0
            next_iteration = 0
            checkpoint(0)
        else:
            design = state["design"]
            neighborhood = state["neighborhood"]
            costs = state["costs"]
            worst_case = state["worst_case"]
            alpha = state["alpha"]
            stale = state["stale"]
            next_iteration = state["next_iteration"]
            report = state["report"]
            self.last_report = report
            baseline = state["baseline"]
            restore_sampler(self.sampler, state["sampler"])
            restore_costing(self.adapter, state["costing"])

        for _ in range(next_iteration, self.max_iterations):
            report.iterations += 1
            report.alpha_history.append(alpha)
            if t.enabled:
                t.emit(
                    "iteration",
                    designer=self.name,
                    index=report.iterations,
                    alpha=alpha,
                    worst_case=worst_case,
                )
            stop = False
            worst = self._worst_neighbors(neighborhood, costs)
            moved = move_workload(
                workload,
                worst,
                cost=lambda sql: self.adapter.query_cost(sql, design),
                alpha=alpha,
                keep_base=self.keep_base_in_move,
                batch_cost=lambda sqls: self.adapter.query_costs(sqls, design),
            )
            if t.enabled:
                t.emit(
                    "move",
                    designer=self.name,
                    index=report.iterations,
                    worst_neighbors=len(worst),
                    moved_queries=len(moved),
                    alpha=alpha,
                )
            nominal_started = time.perf_counter()
            candidate = self.nominal.design(moved)
            report.nominal_wall_seconds += time.perf_counter() - nominal_started
            report.designer_calls += 1
            # The incumbent's costs are already cached for this
            # neighborhood, so the candidate evaluation delta-prices only
            # the queries the design diff can touch (bit-identical).
            candidate_costs = self._neighborhood_costs(
                neighborhood, candidate, reference=design
            )
            candidate_worst = max(candidate_costs) if candidate_costs else 0.0
            if candidate_worst < worst_case:
                design = candidate
                costs = candidate_costs
                worst_case = candidate_worst
                alpha *= self.lambda_success
                report.accepted_moves += 1
                stale = 0
                if t.enabled:
                    t.emit(
                        "accept",
                        designer=self.name,
                        index=report.iterations,
                        worst_case=candidate_worst,
                    )
                    t.emit("alpha", designer=self.name, value=alpha, reason="success")
            else:
                alpha *= self.lambda_failure
                stale += 1
                if t.enabled:
                    t.emit(
                        "reject",
                        designer=self.name,
                        index=report.iterations,
                        candidate_worst=candidate_worst,
                        worst_case=worst_case,
                    )
                    t.emit("alpha", designer=self.name, value=alpha, reason="failure")
                if self.patience is not None and stale >= self.patience:
                    stop = True
            if not stop:
                report.worst_case_history.append(worst_case)
            checkpoint(self.max_iterations if stop else report.iterations)
            if stop:
                break
        self._finish(report, service, baseline, alpha, arena_baseline)
        return design

    def _finish(
        self,
        report: CliffGuardReport,
        service,
        baseline,
        alpha: float,
        arena_baseline=None,
    ) -> None:
        """Record designer effort (cost-call counters) and the final α."""
        report.final_alpha = alpha
        if service is not None and baseline is not None:
            report.backend = service.backend_name
            delta = service.stats.since(baseline)
            report.eval_wall_seconds = delta.eval_seconds
            # Total query-cost evaluations the run asked for, counting the
            # duplicates the batched API collapsed — the effort a designer
            # without the evaluation service would have paid.
            report.query_cost_calls = delta.query_requests + delta.dedup_saved
            report.raw_cost_model_calls = delta.raw_model_calls
            report.cache_hits = delta.query_hits
        if service is not None and arena_baseline is not None:
            arena_delta = service.arena_stats.since(arena_baseline)
            report.matrix_hits = arena_delta.matrix_hits
            report.matrix_pairs_priced = arena_delta.matrix_pairs_priced
            report.delta_pairs_saved = arena_delta.delta_pairs_saved
        t = tracer()
        if t.enabled:
            t.emit(
                "design_finish",
                designer=self.name,
                iterations=report.iterations,
                accepted_moves=report.accepted_moves,
                designer_calls=report.designer_calls,
                final_alpha=report.final_alpha,
                worst_case=(
                    report.worst_case_history[-1]
                    if report.worst_case_history
                    else None
                ),
            )
