"""Algorithm 3: ``MoveWorkload``.

Builds a merged workload that is closer to the worst neighbors than ``W0``
is, by re-weighting each query::

    ω_q = (f_q · Σ_i weight(q, Ŵ_i))^α + weight(q, W0)

where ``f_q`` is the query's cost under the current design, ``weight(q, W)``
is the query's normalized frequency in ``W``, and ``α > 0`` is the step
size (the analogue of BNT's ``t_k``).  Two properties the paper leans on:

* taking latencies *and* frequencies into account "encourages the nominal
  designer to seek designs that reduce the cost of more expensive and/or
  popular queries";
* the ``+ weight(q, W0)`` term means the original workload is never fully
  abandoned, which is why CliffGuard degrades to (not below) the nominal
  designer at extreme Γ (Section 6.5).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.workload.query import WorkloadQuery
from repro.workload.workload import Workload


def move_workload(
    base: Workload,
    worst_neighbors: Sequence[Workload],
    cost: Callable[[str], float],
    alpha: float,
    keep_base: bool = True,
    batch_cost: Callable[[Sequence[str]], dict[str, float]] | None = None,
) -> Workload:
    """Merge ``base`` with its worst neighbors, re-weighted per Algorithm 3.

    ``cost`` maps a SQL string to its latency under the *current* design.
    ``keep_base=False`` drops the ``+ weight(q, W0)`` anchor — the paper
    credits that anchor for CliffGuard never falling below the nominal
    designer at extreme Γ (Section 6.5), and the A3 ablation bench
    measures exactly that.

    Two practical refinements over the paper's formula, both documented in
    DESIGN.md:

    * the latency factor ``f_q`` is normalized by the mean latency across
      the merged queries, making the neighbor term dimensionless and
      commensurate with the ``weight(q, W0)`` anchor regardless of the
      engine's cost scale (with raw milliseconds the neighbor term is
      10³–10⁴ times the anchor and the designer abandons the original
      workload entirely);
    * the step size enters **multiplicatively** (``ω = w0 + α·f̃·mass``)
      rather than as an exponent.  An exponent is only monotone in α when
      its base exceeds 1; once normalized, bases are below 1 and a larger
      "step" would paradoxically move *less*.  The multiplicative form
      keeps the paper's semantics — α controls how far the merged workload
      tilts toward the worst neighbors, and the backtracking line search
      grows or shrinks that tilt — across cost scales.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    base_weights = base.normalized_weights()
    neighbor_weights = [w.normalized_weights() for w in worst_neighbors]

    all_sql: dict[str, WorkloadQuery] = {}
    for query in base:
        all_sql.setdefault(query.sql, query)
    for neighbor in worst_neighbors:
        for query in neighbor:
            all_sql.setdefault(query.sql, query)

    # ``batch_cost`` (the cost-evaluation service's deduplicated batch
    # API) prices all merged queries in one call; the per-query ``cost``
    # callable remains the fallback for callers without a service.
    if batch_cost is not None:
        costs = dict(batch_cost(list(all_sql)))
    else:
        costs = {sql: cost(sql) for sql in all_sql}
    mean_cost = sum(costs.values()) / max(len(costs), 1)
    if mean_cost <= 0:
        mean_cost = 1.0

    # Average (not sum) the neighbor masses so the tilt toward the worst
    # neighbors does not grow with how many of them the caller passes in —
    # the number of worst neighbors is an exploration knob, not a weight.
    neighbor_count = max(len(neighbor_weights), 1)
    moved: list[WorkloadQuery] = []
    for sql, query in all_sql.items():
        neighbor_mass = (
            sum(weights.get(sql, 0.0) for weights in neighbor_weights)
            / neighbor_count
        )
        f_q = (costs[sql] / mean_cost) if neighbor_mass > 0 else 0.0
        anchor = base_weights.get(sql, 0.0) if keep_base else 0.0
        omega = alpha * f_q * neighbor_mass + anchor
        if omega > 0:
            moved.append(
                WorkloadQuery(sql=sql, timestamp=query.timestamp, frequency=omega)
            )
    return Workload(moved)
