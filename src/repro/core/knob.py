"""Helpers for choosing the robustness knob Γ.

The paper is explicit that Γ is a *business decision*, not a prediction
(Section 3).  Still, it sketches the simple strategies a user might apply
to the observed drift history ``δ(W0,W1), δ(W1,W2), …`` — average, max, or
``k × max`` — plus optional forecasting.  These helpers implement them.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.workload.workload import Workload


def drift_history(
    windows: Sequence[Workload],
    distance: Callable[[Workload, Workload], float],
) -> list[float]:
    """``δ(W_i, W_{i+1})`` for every consecutive window pair."""
    return [distance(windows[i], windows[i + 1]) for i in range(len(windows) - 1)]


def gamma_from_history(
    distances: Sequence[float],
    strategy: str = "avg",
    k: float = 1.5,
) -> float:
    """Pick Γ from a drift history.

    ``strategy`` is one of:

    * ``"avg"`` — the mean past drift,
    * ``"max"`` — the worst past drift,
    * ``"kmax"`` — ``k`` times the worst past drift (``k > 1``: guard
      beyond anything seen, the paper's "3× peak load" analogy),
    * ``"forecast"`` — a damped linear extrapolation of the recent trend
      (the paper's nod to time-series forecasting).
    """
    if not distances:
        return 0.0
    values = np.asarray(distances, dtype=np.float64)
    if strategy == "avg":
        return float(values.mean())
    if strategy == "max":
        return float(values.max())
    if strategy == "kmax":
        if k <= 1:
            raise ValueError("kmax requires k > 1")
        return float(values.max() * k)
    if strategy == "forecast":
        if values.size == 1:
            return float(values[0])
        x = np.arange(values.size, dtype=np.float64)
        slope, intercept = np.polyfit(x, values, 1)
        predicted = intercept + slope * values.size
        # Damp toward the mean and never forecast below zero.
        damped = 0.5 * predicted + 0.5 * float(values.mean())
        return max(0.0, float(damped))
    raise ValueError(f"unknown strategy {strategy!r}")
