"""Algorithm 1: the generic Bertsimas–Nohadani–Teo robust local search.

This is the continuous-space algorithm CliffGuard adapts (Section 4.1).
It is included both as executable documentation of the framework and to
validate the geometric machinery on closed-form non-convex surfaces (the
Figures 3–4 story; see ``benchmarks/bench_bnt_continuous.py``).

Each iteration:

1. **Neighborhood exploration** — find the worst neighbors: the (near-)
   maximal points of ``f`` within the Γ-ball around the current ``x``.
2. **Robust local move** — find a *descent direction* pointing away from
   every worst neighbor.  Geometrically (Figure 3), such a direction exists
   iff the origin is **not** in the convex hull of the normalized offset
   vectors ``u_i = Δx_i / ‖Δx_i‖``; when it exists, the steepest choice is
   the negated min-norm point of that hull.  When the origin is inside the
   hull, no direction moves away from all worst neighbors simultaneously —
   a local robust optimum (Figure 3(b)).
3. Take a step along the direction, shrinking the step until the sampled
   worst-case cost improves (backtracking line search).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

#: Neighbors within this relative margin of the maximum are "worst".
WORST_MARGIN = 0.02
#: ‖min-norm point‖ below this means the origin is in the hull.
HULL_TOLERANCE = 1e-6


@dataclass
class BNTResult:
    """Outcome of a :func:`bnt_minimize` run."""

    x: np.ndarray
    worst_case: float
    iterations: int
    converged: bool
    history: list[np.ndarray] = field(default_factory=list)
    worst_case_history: list[float] = field(default_factory=list)


def sample_ball(
    center: np.ndarray, radius: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform samples in the closed ball (plus boundary axis points)."""
    dim = center.shape[0]
    directions = rng.normal(size=(count, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = radius * rng.uniform(0.0, 1.0, size=(count, 1)) ** (1.0 / dim)
    points = center + directions / norms * radii
    boundary = np.concatenate([np.eye(dim), -np.eye(dim)]) * radius + center
    return np.concatenate([points, boundary, center[None, :]])


def find_worst_neighbors(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    gamma: float,
    rng: np.random.Generator,
    n_candidates: int = 96,
    margin: float = WORST_MARGIN,
) -> tuple[np.ndarray, float]:
    """Offsets ``Δx`` of the near-maximal points in the Γ-ball, and the max.

    Like CliffGuard's database instantiation, the inner maximization is
    sampled (the cost function need not be differentiable); the returned
    set includes every sampled point within ``margin`` of the maximum,
    which is BNT's guard against picking a single biased extreme.
    """
    points = sample_ball(x, gamma, n_candidates, rng)
    values = np.array([f(p) for p in points])
    worst = float(values.max())
    baseline = f(x)
    spread = max(worst - baseline, abs(worst) * margin, 1e-12)
    threshold = worst - margin * spread
    mask = values >= threshold
    offsets = points[mask] - x
    # Drop the center itself (zero offset carries no direction).
    norms = np.linalg.norm(offsets, axis=1)
    offsets = offsets[norms > 1e-12]
    return offsets, worst


def min_norm_point(vectors: np.ndarray) -> np.ndarray:
    """The minimum-norm point of the convex hull of row ``vectors``.

    Solved as a small QP over the simplex (SLSQP); exact enough for the
    ≤ a-few-dozen worst neighbors each iteration produces.
    """
    count = vectors.shape[0]
    if count == 1:
        return vectors[0]
    gram = vectors @ vectors.T

    def objective(lam: np.ndarray) -> float:
        return float(lam @ gram @ lam)

    def gradient(lam: np.ndarray) -> np.ndarray:
        return 2.0 * gram @ lam

    initial = np.full(count, 1.0 / count)
    result = minimize(
        objective,
        initial,
        jac=gradient,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * count,
        constraints=[{"type": "eq", "fun": lambda lam: lam.sum() - 1.0}],
        options={"maxiter": 200, "ftol": 1e-12},
    )
    lam = result.x if result.success else initial
    lam = np.clip(lam, 0.0, None)
    total = lam.sum()
    if total > 0:
        lam /= total
    return vectors.T @ lam


def descent_direction(offsets: np.ndarray) -> np.ndarray | None:
    """The direction pointing away from all worst neighbors, or ``None``.

    ``None`` signals the Figure 3(b) situation: the origin lies in the
    convex hull of the normalized offsets, so every direction approaches
    some worst neighbor — a local robust optimum.
    """
    if offsets.size == 0:
        return None
    norms = np.linalg.norm(offsets, axis=1, keepdims=True)
    normalized = offsets / norms
    z = min_norm_point(normalized)
    magnitude = float(np.linalg.norm(z))
    if magnitude < HULL_TOLERANCE:
        return None
    return -z / magnitude


def bnt_minimize(
    f: Callable[[np.ndarray], float],
    x0: np.ndarray,
    gamma: float,
    max_iterations: int = 60,
    initial_step: float | None = None,
    n_candidates: int = 96,
    seed: int = 0,
) -> BNTResult:
    """Minimize the worst-case cost ``max_{‖Δx‖≤Γ} f(x + Δx)`` locally.

    The step size is adaptive backtracking line search (the same
    grow-on-success / halve-on-failure scheme CliffGuard uses for ``α``):
    a step is only taken when it reduces the sampled worst-case cost, it
    grows after successes so distant starts converge quickly, and the run
    stops when no descent direction exists (the Figure 3(b) condition) or
    no step of any size improves.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(x0, dtype=np.float64).copy()
    step = initial_step if initial_step is not None else gamma
    offsets, worst = find_worst_neighbors(f, x, gamma, rng, n_candidates)
    result = BNTResult(
        x=x.copy(),
        worst_case=worst,
        iterations=0,
        converged=False,
        history=[x.copy()],
        worst_case_history=[worst],
    )

    for k in range(1, max_iterations + 1):
        result.iterations = k
        direction = descent_direction(offsets)
        if direction is None:
            result.converged = True
            break
        moved = False
        trial = step
        for _ in range(10):  # backtracking
            candidate = x + trial * direction
            new_offsets, new_worst = find_worst_neighbors(
                f, candidate, gamma, rng, n_candidates
            )
            if new_worst < worst:
                x, offsets, worst = candidate, new_offsets, new_worst
                step = min(trial * 1.8, 16.0 * gamma)  # grow on success
                moved = True
                break
            trial *= 0.5
        result.history.append(x.copy())
        result.worst_case_history.append(worst)
        if not moved:
            result.converged = True
            break

    result.x = x
    result.worst_case = worst
    return result
