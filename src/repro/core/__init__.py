"""The paper's contribution: CliffGuard and its building blocks.

* :mod:`repro.core.bnt` — Algorithm 1: the generic Bertsimas–Nohadani–Teo
  robust local search for continuous decision spaces (used to validate the
  framework on closed-form surfaces, Figures 3–4),
* :mod:`repro.core.move` — Algorithm 3: ``MoveWorkload``,
* :mod:`repro.core.cliffguard` — Algorithm 2: the CliffGuard designer,
* :mod:`repro.core.knob` — helpers for choosing the robustness knob Γ.
"""

from repro.core.bnt import BNTResult, bnt_minimize
from repro.core.cliffguard import CliffGuard, CliffGuardReport
from repro.core.knob import gamma_from_history
from repro.core.move import move_workload

__all__ = [
    "BNTResult",
    "CliffGuard",
    "CliffGuardReport",
    "bnt_minimize",
    "gamma_from_history",
    "move_workload",
]
