"""State capture/restore helpers for resume-equivalent snapshots.

Bit-identical resume needs more than the partial results: every source
of downstream nondeterminism must be snapshotted too.  Concretely that
is the :class:`~repro.workload.sampler.NeighborhoodSampler`'s numpy
``Generator`` (its bit-generator state decides every future
perturbation draw) and the
:class:`~repro.costing.service.CostEvaluationService`'s memo caches
(cache warmth decides the hit/miss counters every report surfaces, so a
resumed run must see exactly the cache the uninterrupted run would
have).  These helpers keep the knowledge of *where* that state lives in
one place; the checkpoint call sites stay one-liners.
"""

from __future__ import annotations


def sampler_state(sampler) -> dict:
    """Snapshot a :class:`NeighborhoodSampler`'s random stream.

    The perturbation pool is *not* captured: every harness rebuilds the
    pool deterministically from the trace and the window index before
    sampling (see ``_past_pool_hook``), so only the generator position
    is genuine run state.
    """
    return {"bit_generator": sampler.rng.bit_generator.state}


def restore_sampler(sampler, state: dict) -> None:
    """Restore a sampler's random stream from :func:`sampler_state`."""
    sampler.rng.bit_generator.state = state["bit_generator"]


def designer_state(designer) -> dict | None:
    """Snapshot the resumable state a designer carries, if any.

    Designers are black boxes to the harness, so the capture is
    duck-typed: a ``sampler`` with an ``rng`` (CliffGuard and friends —
    the generator position decides every future perturbation draw) is
    snapshotted as before, and a designer exposing
    ``export_state``/``import_state`` (the online learners — the bandit's
    V/b matrices, RNG stream, incumbent, and arm log) ships its own
    state dict alongside.  Stateless designers return ``None``.
    """
    state: dict = {}
    sampler = getattr(designer, "sampler", None)
    if sampler is not None and hasattr(sampler, "rng"):
        state["sampler"] = sampler_state(sampler)
    export = getattr(designer, "export_state", None)
    if callable(export):
        state["model"] = export()
    return state or None


def restore_designer(designer, state: dict | None) -> None:
    """Restore what :func:`designer_state` captured (``None`` = no-op)."""
    if state is None:
        return
    sampler = getattr(designer, "sampler", None)
    if sampler is not None and "sampler" in state:
        restore_sampler(sampler, state["sampler"])
    restore = getattr(designer, "import_state", None)
    if callable(restore) and "model" in state:
        restore(state["model"])


def monitor_state(monitor) -> dict:
    """Snapshot a :class:`~repro.workload.monitor.WorkloadMonitor`.

    The serve daemon's sliding window, measurement cadence, and alarm
    refractory anchors all live in the monitor; a resumed daemon must
    observe the remainder of the stream exactly as the uninterrupted
    one would have (docs/serving.md).
    """
    return monitor.state()


def restore_monitor(monitor, state: dict) -> None:
    """Restore what :func:`monitor_state` captured."""
    monitor.restore(state)


def costing_state(adapter_or_service) -> dict | None:
    """Export the cost-evaluation cache behind an adapter (or service).

    Accepts either a :class:`DesignAdapter` (the common case — its
    ``costing`` attribute is the service) or a service itself; returns
    ``None`` for stub adapters without one, so call sites never branch.

    Compiled workload arenas are *derived* state: they bake only the
    workload text and the model's statistics, both of which survive a
    restart, so snapshots exclude them (``export_state`` ships the memo
    caches only) and a resumed run rebuilds arenas on first use.  The
    arena/shm counters (``ArenaStats``) are likewise excluded so a
    kill-resume run's counter deltas stay byte-identical to an
    uninterrupted run's.
    """
    service = getattr(adapter_or_service, "costing", adapter_or_service)
    export = getattr(service, "export_state", None)
    if export is None:
        return None
    return export()


def restore_costing(adapter_or_service, state: dict | None) -> None:
    """Import a cache export from :func:`costing_state` (``None`` = no-op)."""
    if state is None:
        return
    service = getattr(adapter_or_service, "costing", adapter_or_service)
    restore = getattr(service, "import_state", None)
    if restore is not None:
        restore(state)
