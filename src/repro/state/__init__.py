"""Crash-safe checkpoint/resume for long-running entry points.

* :mod:`repro.state.checkpoint` — :class:`RunCheckpointer`: atomic,
  versioned, digest-verified snapshots (write-temp + fsync + rename;
  blake2b payload digest re-verified on load), ``every``-gated write
  thinning, and the :class:`SimulatedCrash` /
  ``REPRO_STATE_CRASH_AFTER`` fault-injection hooks.
* :mod:`repro.state.capture` — capture/restore helpers for the state
  that makes resume bit-identical: sampler rng streams, designer state,
  and warm cost-evaluation caches.

Contract (docs/state.md): a run checkpointed and killed after any
iteration/window/Γ-point boundary resumes to a bit-identical final
result — same designs, same costs, same report counters — as the
uninterrupted run.
"""

from repro.state.capture import (
    costing_state,
    designer_state,
    monitor_state,
    restore_costing,
    restore_designer,
    restore_monitor,
    restore_sampler,
    sampler_state,
)
from repro.state.checkpoint import (
    CRASH_ENV,
    FORMAT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointVersionError,
    RunCheckpointer,
    SimulatedCrash,
    run_key,
)

__all__ = [
    "CRASH_ENV",
    "FORMAT_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointVersionError",
    "RunCheckpointer",
    "SimulatedCrash",
    "costing_state",
    "designer_state",
    "monitor_state",
    "restore_costing",
    "restore_designer",
    "restore_monitor",
    "restore_sampler",
    "run_key",
    "sampler_state",
]
