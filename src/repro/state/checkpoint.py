"""Crash-safe run snapshots: atomic, versioned, digest-verified.

A production tuner is a long-lived, restartable process: a crash, OOM,
or preemption anywhere inside a multi-window replay, a Γ-sweep, or a
many-iteration CliffGuard run must not throw away every designer call
and cost-model evaluation already paid for.  :class:`RunCheckpointer`
is the one writer/reader of run snapshots; the long-running entry
points (:meth:`repro.core.cliffguard.CliffGuard.design`,
:func:`repro.harness.replay.replay`,
:func:`repro.harness.scheduler.scheduled_replay`, and the experiment
grids) call it at their natural boundaries — iteration, window,
Γ-point, designer — and restore from it on resume.

Snapshot file format (version 1)::

    <one JSON header line>\\n<binary pickle payload>

The header carries ``magic``, ``version``, ``kind`` (which entry point
wrote the snapshot), ``key`` (a digest of the run's identifying
parameters — see :func:`run_key`), ``payload_bytes``, and ``digest``, a
blake2b content hash of the payload bytes that is re-verified on every
load.  The payload is a pickle of plain run state (designs, workloads,
numpy bit-generator states, cost-cache exports) written by this
codebase for this codebase; treat checkpoint files like any other
trusted local state, not as an interchange format.

Atomicity contract: the payload is written to a same-directory
temporary file, flushed, ``fsync``\\ ed, and then :func:`os.replace`\\ d
over the target (with a best-effort directory fsync), so a crash at any
instant leaves either the previous complete snapshot or the new
complete snapshot on disk — never a torn file.  A snapshot that fails
digest, magic, or size verification raises
:class:`CheckpointCorruptError` instead of resuming from garbage;
a snapshot written by a different run configuration raises
:class:`CheckpointMismatchError` instead of silently mixing runs.

Fault injection: ``crash_after=N`` makes the checkpointer raise
:class:`SimulatedCrash` immediately *after* the N-th snapshot write
completes (the file is already durable — exactly the state a ``kill
-9`` right after a checkpoint leaves behind); the
``REPRO_STATE_CRASH_AFTER`` environment variable does the same with a
real ``SIGKILL``, which is what the CI kill/resume leg uses.  The
fault-injection suite in ``tests/test_state.py`` sweeps ``crash_after``
over every boundary and asserts resumed == uninterrupted.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time
from hashlib import blake2b
from pathlib import Path

from repro.obs import MetricsRegistry, get_metrics, tracer

#: Bump when the payload layout changes incompatibly; loaders refuse
#: snapshots from other versions rather than guessing.
FORMAT_VERSION = 1
#: File-type marker in the header line.
MAGIC = "repro-state"
#: Environment variable: SIGKILL the process after N checkpoint writes.
CRASH_ENV = "REPRO_STATE_CRASH_AFTER"


class CheckpointError(RuntimeError):
    """Base class for checkpoint load/save failures."""


class CheckpointCorruptError(CheckpointError):
    """The snapshot file is torn, truncated, or fails digest verification."""


class CheckpointVersionError(CheckpointError):
    """The snapshot was written by an incompatible format version."""


class CheckpointMismatchError(CheckpointError):
    """The snapshot belongs to a different run (kind or key mismatch)."""


class SimulatedCrash(BaseException):
    """Raised by the fault-injection hook right after a durable write.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    recovery code cannot accidentally swallow the simulated kill.
    """


def run_key(*parts) -> str:
    """Digest of a run's identifying parameters.

    Callers pass everything that must match between the checkpointed run
    and the resuming run (scale knobs, workload, engine, Γ, designer
    list, …); two runs share a key iff every part's ``repr`` matches.
    """
    h = blake2b(digest_size=12)
    for part in parts:
        h.update(repr(part).encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def _payload_digest(payload: bytes) -> str:
    return blake2b(payload, digest_size=16).hexdigest()


class RunCheckpointer:
    """Writes and reads atomic run snapshots at one filesystem path.

    One checkpointer serves one run and one file; the *latest* snapshot
    wins (each write replaces the previous one — resume only ever needs
    the most recent boundary).  ``every`` thins the write frequency:
    only every ``every``-th :meth:`step` call actually writes, trading
    recovery granularity for lower overhead on very tight loops.

    ``resume=False`` (the default) ignores any existing file: the run
    starts fresh and the first write replaces the old snapshot.  With
    ``resume=True``, :meth:`load` returns the snapshot payload after
    verifying its digest, format version, and run identity.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        every: int = 1,
        resume: bool = False,
        metrics: MetricsRegistry | None = None,
        crash_after: int | None = None,
    ):
        if every < 1:
            raise ValueError("every must be at least 1")
        if crash_after is not None and crash_after < 1:
            raise ValueError("crash_after must be at least 1 when set")
        self.path = Path(path)
        self.every = every
        self.resume = resume
        self._metrics = metrics
        self.crash_after = crash_after
        env = os.environ.get(CRASH_ENV)
        #: SIGKILL (not an exception) after N writes — the CI leg's hook.
        self._kill_after = int(env) if env else None
        self.writes = 0
        self.steps = 0

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- writing ---------------------------------------------------------------

    def step(self, kind: str, key: str, make_payload) -> bool:
        """One boundary passed; write a snapshot if it is due.

        ``make_payload`` is a zero-argument callable returning the state
        dict — called only when this step actually writes, so skipped
        boundaries never pay for cache exports or rng captures.  Returns
        whether a snapshot was written.
        """
        self.steps += 1
        if self.steps % self.every != 0:
            self.metrics.counter("state.checkpoint_skips").inc()
            return False
        self.save(kind, key, make_payload())
        return True

    def save(self, kind: str, key: str, payload) -> None:
        """Atomically replace the snapshot file with ``payload``."""
        started = time.perf_counter()
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {
                "magic": MAGIC,
                "version": FORMAT_VERSION,
                "kind": kind,
                "key": key,
                "payload_bytes": len(body),
                "digest": _payload_digest(body),
            },
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            with temp.open("wb") as sink:
                sink.write(header.encode("utf-8") + b"\n")
                sink.write(body)
                sink.flush()
                os.fsync(sink.fileno())
            os.replace(temp, self.path)
        except BaseException:
            temp.unlink(missing_ok=True)
            raise
        self._fsync_directory()
        self.writes += 1
        elapsed = time.perf_counter() - started
        registry = self.metrics
        registry.counter("state.checkpoint_writes").inc()
        registry.gauge("state.payload_bytes").set(len(body))
        registry.histogram("state.write_seconds").observe(elapsed)
        t = tracer()
        if t.enabled:
            t.emit(
                "checkpoint_write",
                kind=kind,
                path=str(self.path),
                bytes=len(body),
                write=self.writes,
            )
        self._maybe_crash()

    def _fsync_directory(self) -> None:
        """Best-effort fsync of the containing directory (so the rename
        itself is durable); not all platforms/filesystems allow it."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def _maybe_crash(self) -> None:
        if self.crash_after is not None and self.writes >= self.crash_after:
            raise SimulatedCrash(
                f"simulated crash after checkpoint write #{self.writes}"
            )
        if self._kill_after is not None and self.writes >= self._kill_after:
            # The real thing: die without unwinding, exactly like an OOM
            # kill or preemption.  The snapshot just written is durable.
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    # -- reading ---------------------------------------------------------------

    def load(self, kind: str, key: str):
        """The latest snapshot's payload, or ``None`` when not resuming.

        Returns ``None`` when ``resume`` is off or no snapshot file
        exists (the run starts fresh).  Raises
        :class:`CheckpointCorruptError` /
        :class:`CheckpointVersionError` /
        :class:`CheckpointMismatchError` when a file exists but cannot
        be trusted for this run — resuming from a wrong or damaged
        snapshot would silently corrupt results, so it is never
        attempted.
        """
        if not self.resume or not self.path.exists():
            return None
        raw = self.path.read_bytes()
        newline = raw.find(b"\n")
        if newline < 0:
            raise CheckpointCorruptError(f"{self.path}: missing snapshot header")
        try:
            header = json.loads(raw[:newline])
        except ValueError as error:
            raise CheckpointCorruptError(
                f"{self.path}: unreadable snapshot header"
            ) from error
        if header.get("magic") != MAGIC:
            raise CheckpointCorruptError(
                f"{self.path}: not a repro checkpoint (magic {header.get('magic')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointVersionError(
                f"{self.path}: snapshot format v{header.get('version')} "
                f"is not supported (this build reads v{FORMAT_VERSION})"
            )
        body = raw[newline + 1 :]
        if len(body) != header.get("payload_bytes"):
            raise CheckpointCorruptError(
                f"{self.path}: truncated snapshot "
                f"({len(body)} of {header.get('payload_bytes')} payload bytes)"
            )
        if _payload_digest(body) != header.get("digest"):
            raise CheckpointCorruptError(
                f"{self.path}: snapshot payload fails digest verification"
            )
        if header.get("kind") != kind or header.get("key") != key:
            raise CheckpointMismatchError(
                f"{self.path}: snapshot belongs to a different run "
                f"(kind={header.get('kind')!r}, expected {kind!r}; "
                "re-run with the original configuration or drop --resume)"
            )
        payload = pickle.loads(body)
        registry = self.metrics
        registry.counter("state.checkpoint_loads").inc()
        t = tracer()
        if t.enabled:
            t.emit(
                "checkpoint_load",
                kind=kind,
                path=str(self.path),
                bytes=len(body),
            )
        return payload
