"""Figure 7 — designer comparison on the columnar engine (R1, S1, S2).

Paper shape (Vertica):

* R1: CliffGuard ≫ ExistingDesigner (14.3× avg / 39.7× max), approaching
  FutureKnowingDesigner; MajorityVote ≈ Existing + ~13%; OptimalLocalSearch
  slightly worse than Existing; Existing only ~25% better than NoDesign.
* S1 (static): everyone close; CliffGuard ≈ Existing (1.2–1.5×).
* S2 (drifting): CliffGuard ≫ Existing, within ~30% of FutureKnowing.

We assert the *ordering* and direction of these effects; absolute factors
depend on the synthetic substrate (see EXPERIMENTS.md).
"""

import pytest

from repro.designers import registry
from repro.harness.experiments import run_designer_comparison
from repro.harness.reporting import format_table


def render(outcome, emit, title):
    emit(
        format_table(
            ["Designer", "Avg latency (ms)", "Max latency (ms)"],
            [
                [name, outcome.run(name).mean_average_ms, outcome.run(name).mean_max_ms]
                for name in registry.names()
                if name in outcome.runs
            ],
            title=title,
        )
    )


@pytest.mark.parametrize("workload", ["R1", "S1", "S2"])
def test_fig7_designer_comparison(benchmark, context, emit, backend, workload):
    outcome = benchmark.pedantic(
        run_designer_comparison,
        args=(context, workload),
        kwargs={"backend": backend},
        rounds=1,
        iterations=1,
    )
    render(outcome, emit, f"Figure 7: designers on the columnar engine, {workload}")

    avg = {name: run.mean_average_ms for name, run in outcome.runs.items()}
    # Universal orderings from the paper.
    assert avg["FutureKnowingDesigner"] < avg["ExistingDesigner"]
    assert avg["ExistingDesigner"] < avg["NoDesign"]
    assert avg["CliffGuard"] < avg["NoDesign"]
    if workload in ("R1", "S2"):
        # Under drift, the robust designer beats the nominal one.
        assert avg["CliffGuard"] <= avg["ExistingDesigner"] * 1.02
        cg_speedup, _ = outcome.speedup("ExistingDesigner", "CliffGuard")
        emit(f"{workload}: CliffGuard vs Existing avg speedup = {cg_speedup:.2f}x")
    else:
        # S1 is static: the nominal designer is already near-optimal and
        # CliffGuard must not be meaningfully worse.
        assert avg["CliffGuard"] <= avg["ExistingDesigner"] * 1.25
