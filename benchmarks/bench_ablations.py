"""Ablation benches for CliffGuard design choices DESIGN.md calls out.

A1 — worst-neighbor selection rule (strict max vs top fraction): the paper
     loosens strict max to mitigate finite-sample bias (Section 4.3).
A2 — backtracking line search on/off: adaptive α vs frozen α.
A3 — keeping W0 in the merged workload (Algorithm 3's anchor term): the
     paper credits this for never falling below the nominal designer.
"""

import pytest

from repro.core.cliffguard import CliffGuard
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.experiments import _past_pool_hook
from repro.harness.replay import replay
from repro.harness.reporting import format_table


def run_variant(context, emit, label, **cliffguard_kwargs):
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = context.trace_windows("R1")
    gamma = context.default_gamma("R1")
    sampler = context.sampler()
    designer = CliffGuard(
        nominal,
        adapter,
        sampler,
        gamma,
        n_samples=context.scale.n_samples,
        max_iterations=context.scale.iterations,
        **cliffguard_kwargs,
    )
    outcome = replay(
        windows,
        {label: designer},
        adapter,
        candidate_source=nominal,
        max_transitions=context.scale.max_transitions,
        skip_transitions=context.scale.skip_transitions,
        before_transition=_past_pool_hook(context.trace("R1"), [sampler]),
    )
    run = outcome.run(label)
    report = designer.last_report
    return (
        run.mean_average_ms,
        run.mean_max_ms,
        report.query_cost_calls if report else 0,
        report.matrix_hits if report else 0,
        report.delta_pairs_saved if report else 0,
        report.final_alpha if report else 0.0,
    )


def test_ablation_worst_neighbor_selection(benchmark, context, emit):
    def run():
        return {
            "strict max (1 neighbor)": run_variant(
                context, emit, "strict", worst_fraction=0.01, min_worst=1
            ),
            "top 20%": run_variant(context, emit, "top20", worst_fraction=0.2),
            "whole neighborhood": run_variant(
                context, emit, "all", worst_fraction=1.0
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            [
                "Selection rule",
                "Avg latency (ms)",
                "Max latency (ms)",
                "Cost calls",
                "Matrix hits",
                "Delta saved",
                "Final α",
            ],
            [[k, *v] for k, v in results.items()],
            title="Ablation A1: worst-neighbor selection rule (R1)",
        )
    )
    # The loosened selections must not lose to strict max (the bias the
    # paper warns about); ties are acceptable.
    strict = results["strict max (1 neighbor)"][0]
    assert results["whole neighborhood"][0] <= strict * 1.1


def test_ablation_line_search(benchmark, context, emit):
    def run():
        return {
            "adaptive α (5.0 / 0.5)": run_variant(
                context, emit, "adaptive", lambda_success=5.0, lambda_failure=0.5
            ),
            "frozen α (≈1)": run_variant(
                context, emit, "frozen", lambda_success=1.0001, lambda_failure=0.9999
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            [
                "Step-size policy",
                "Avg latency (ms)",
                "Max latency (ms)",
                "Cost calls",
                "Matrix hits",
                "Delta saved",
                "Final α",
            ],
            [[k, *v] for k, v in results.items()],
            title="Ablation A2: backtracking line search (R1)",
        )
    )
    adaptive = results["adaptive α (5.0 / 0.5)"][0]
    frozen = results["frozen α (≈1)"][0]
    assert adaptive <= frozen * 1.2  # adaptivity must not hurt


def test_ablation_keep_base_workload(benchmark, context, emit):
    def run():
        return {
            "keep W0 anchor": run_variant(context, emit, "anchored", keep_base_in_move=True),
            "drop W0 anchor": run_variant(context, emit, "dropped", keep_base_in_move=False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            [
                "Algorithm 3 variant",
                "Avg latency (ms)",
                "Max latency (ms)",
                "Cost calls",
                "Matrix hits",
                "Delta saved",
                "Final α",
            ],
            [[k, *v] for k, v in results.items()],
            title="Ablation A3: the + weight(q, W0) anchor term (R1)",
        )
    )
    kept = results["keep W0 anchor"][0]
    dropped = results["drop W0 anchor"][0]
    # The anchor is what protects nominal optimality (Section 6.5).
    assert kept <= dropped * 1.05
