"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and prints
it.  The default scale is the fast, seeded "smoke" scale; set
``REPRO_BENCH_SCALE=paper`` for a run closer to the paper's 12-month trace
(expect a multi-hour wall clock).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import (
    ExperimentContext,
    paper_scale,
    smoke_scale,
)
from repro.parallel import backend_from_env


def _scale():
    if os.environ.get("REPRO_BENCH_SCALE", "smoke") == "paper":
        return paper_scale()
    return smoke_scale()


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One shared context: schema, traces, and windows are cached across
    the whole benchmark session."""
    return ExperimentContext(_scale())


@pytest.fixture(scope="session")
def backend():
    """Execution backend from ``REPRO_BACKEND``/``REPRO_JOBS`` (``None`` =
    the inline serial path).  Results are bit-identical either way; only
    the wall clock changes."""
    executor = backend_from_env()
    yield executor
    if executor is not None:
        executor.shutdown()


@pytest.fixture(scope="session")
def emit():
    """Printer fixture: renders a table/series under the benchmark output."""

    def _emit(text: str) -> None:
        print()
        print(text)

    return _emit
