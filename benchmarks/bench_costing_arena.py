"""Compile-once arena reuse vs recompile-per-batch (the iteration hot path).

Every CliffGuard iteration, greedy sweep, and replay window re-prices one
workload under a stream of designs in which successive designs differ by
a single structure — the ``core/move.py`` neighborhood step and the
greedy grow-by-one sweep.  Before the arena refactor each design in the
stream recompiled the query-side arrays and re-reduced every query; now
``compile_queries`` runs once per workload, ``bind`` runs once per
stream, and each subsequent design is priced by ``delta_design_costs``
(re-reducing only the queries the changed structure can touch — the
path ``workload_costs_batch`` takes in production).  This benchmark
times one such stream — a base design of ``design size`` structures
grown by one pool structure per iteration — in three modes:

* ``recompile``  — ``kernel.compile(profiles, structures)`` +
  full reduction per design (the PR-4 per-batch path),
* ``arena``      — ``compile_queries`` once, ``bind`` once over the
  stream's union, then one ``delta_design_costs`` per step,
* ``arena_shm``  — ``compile_queries`` once, then per design ``bind`` +
  a ``ProcessBackend(jobs=2)`` fan-out of the bound batch through
  shared memory (:mod:`repro.parallel.shm`) — the full-reduction
  fan-out shape, for the zero-copy shipping cost,

asserts the three cost vectors are bit-identical, and writes a JSON
record (``BENCH_costing_arena.json``)::

    PYTHONPATH=src python benchmarks/bench_costing_arena.py            # full
    PYTHONPATH=src python benchmarks/bench_costing_arena.py --smoke   # CI leg

The grid tops out at 100k query instances x 10k candidate structures;
the full-pool sweep at that scale runs arena-mode only (recompiling the
query side per 10k-structure batch is exactly the cost this refactor
removes) with the reduction chunked over the query axis to bound peak
memory.  Query
*instances* are workload weights over the distinct SQL texts — the
kernel prices each distinct query once regardless of its frequency, so
both counts are recorded.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.costing.kernel import kernel_for
from repro.costing.service import _evaluate_kernel_chunk_shm
from repro.designers.base import ColumnarAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.engine.projection import Projection, SortColumn
from repro.parallel import ProcessBackend
from repro.parallel.shm import leaked_segments, share_batch
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.workload import Workload

#: (name, query instances, distinct sqls, candidate pool, design size,
#: iterations, modes).  ``design size`` is the base design's structure
#: count; the stream grows it by one pool structure per iteration — the
#: CliffGuard/greedy iteration shape; ``design size >= pool`` prices the
#: whole pool every iteration (the sweep shape, reduction chunked over
#: the query axis).
ALL_MODES = ("recompile", "arena", "arena_shm")
FULL_CONFIGS = [
    ("small", 5_000, 500, 1_000, 16, 8, ALL_MODES),
    ("medium", 20_000, 1_500, 4_000, 16, 8, ALL_MODES),
    ("large", 100_000, 5_000, 10_000, 16, 8, ALL_MODES),
    # The headline sweep: every pool structure bound at once, arena-only
    # (recompiling the query side per 10k-structure batch is exactly the
    # cost this refactor removes).
    ("xlarge-sweep", 100_000, 5_000, 10_000, 10_000, 2, ("arena",)),
]
SMOKE_CONFIGS = [
    ("smoke-small", 100, 10, 20, 4, 2, ALL_MODES),
    ("smoke-large", 1_000, 20, 60, 8, 2, ALL_MODES),
]

#: Query-axis chunk for the chunked (sweep) reduction.
CHUNK_QUERIES = 64


@lru_cache(maxsize=1)
def _trace_pool():
    schema, roles = build_star_schema(
        fact_tables=3,
        fact_rows=1_000_000,
        fact_attributes=14,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=24, topic_count=8, templates_per_topic=8)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=240)
    return schema, list(dict.fromkeys(q.sql for q in trace))


def _environment(distinct: int):
    schema, sqls = _trace_pool()
    if len(sqls) < distinct:
        raise SystemExit(
            f"trace produced only {len(sqls)} distinct queries, need {distinct}"
        )
    return schema, sqls[:distinct]


def _synthetic_projections(schema, count: int, seed: int) -> list[Projection]:
    rng = np.random.default_rng(seed)
    facts = [
        name
        for name, table in sorted(schema.tables.items())
        if len(table.column_names) >= 6
    ]
    out: list[Projection] = []
    seen: set[Projection] = set()
    while len(out) < count:
        table = facts[int(rng.integers(len(facts)))]
        names = schema.table(table).column_names
        width = int(rng.integers(2, min(len(names), 8)))
        picked = tuple(
            names[i] for i in sorted(rng.choice(len(names), size=width, replace=False))
        )
        sort_width = int(rng.integers(1, min(3, width) + 1))
        order = rng.permutation(width)[:sort_width]
        projection = Projection(
            table=table,
            columns=picked,
            sort_columns=tuple(SortColumn(picked[int(i)]) for i in order),
        )
        if projection not in seen:
            seen.add(projection)
            out.append(projection)
    return out


def _candidates(schema, sqls: list[str], count: int) -> list[Projection]:
    model = ColumnarCostModel(schema)
    nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    pool = nominal.generate_candidates(Workload.from_sql(sqls))[:count]
    if len(pool) < count:
        for projection in _synthetic_projections(schema, count * 2, seed=13):
            if len(pool) >= count:
                break
            if projection not in pool:
                pool.append(projection)
    return pool[:count]


def _instance_weights(distinct: int, instances: int) -> list[int]:
    """Integer frequencies over ``distinct`` sqls summing to ``instances``."""
    rng = np.random.default_rng(41)
    weights = rng.multinomial(instances - distinct, [1.0 / distinct] * distinct)
    return [int(w) + 1 for w in weights]


def _chunks(count: int, size: int) -> list[list[int]]:
    return [list(range(lo, min(lo + size, count))) for lo in range(0, count, size)]


def _design_walk(pool: int, design_size: int, iterations: int) -> list[list[int]]:
    """Deterministic grow-by-one stream of pool indices: a base design of
    ``design_size`` structures plus one new structure per iteration —
    every mode prices the exact same stream."""
    if design_size >= pool:
        return [list(range(pool))] * iterations
    rng = np.random.default_rng(17)
    union = [
        int(i)
        for i in rng.choice(pool, design_size + iterations - 1, replace=False)
    ]
    return [union[: design_size + k] for k in range(iterations)]


def _run_config(schema, sqls, candidates, design_size, iterations, modes):
    """Per-mode wall clock of ``iterations`` design evaluations.

    Profiling is hoisted out of every timed region (the profiler memoizes
    by SQL text; all modes would pay it identically on a warm service) —
    the timed difference is exactly compile-per-batch vs bind vs fan-out.
    """
    model = ColumnarCostModel(schema)
    kernel = kernel_for(model)
    profiles = [model.profile(sql) for sql in sqls]
    walk = _design_walk(len(candidates), design_size, iterations)
    sweep = design_size >= len(candidates)  # chunk reduce: bound peak matrix
    seconds: dict[str, float] = {}
    vectors: dict[str, list[np.ndarray]] = {}

    if "recompile" in modes:
        out = []
        started = time.perf_counter()
        for members in walk:
            design = [candidates[i] for i in members]
            out.append(kernel.compile(profiles, design).design_costs())
        seconds["recompile"] = time.perf_counter() - started
        vectors["recompile"] = out

    out = []
    started = time.perf_counter()
    arena = kernel.compile_queries(profiles)
    if sweep:
        batch = kernel.bind(arena, candidates)
        for _ in walk:
            parts = [
                batch.take(chunk).design_costs()
                for chunk in _chunks(batch.query_count, CHUNK_QUERIES)
            ]
            out.append(np.concatenate(parts))
    else:
        # One bind over the stream's union; the walk's rows are ordered so
        # design k is exactly rows [0, len(walk[k])) and step k adds row
        # len(walk[k]) - 1 — each step is a single delta re-reduction.
        batch = kernel.bind(arena, [candidates[i] for i in walk[-1]])
        prev = None
        for members in walk:
            rows = np.arange(len(members), dtype=np.intp)
            if prev is None:
                prev = batch.design_costs(rows)
            else:
                prev = batch.delta_design_costs(rows, len(members) - 1, prev)
            out.append(prev)
    seconds["arena"] = time.perf_counter() - started
    vectors["arena"] = out

    if "arena_shm" in modes:
        backend = ProcessBackend(jobs=2)
        try:
            out = []
            started = time.perf_counter()
            arena = kernel.compile_queries(profiles)
            for members in walk:
                batch = kernel.bind(arena, [candidates[i] for i in members])
                chunks = _chunks(batch.query_count, max(1, batch.query_count // 2))
                with share_batch(batch) as handle:
                    results = backend.map(
                        _evaluate_kernel_chunk_shm,
                        [(handle, chunk) for chunk in chunks],
                    )
                out.append(np.array([cost for part in results for cost in part]))
            seconds["arena_shm"] = time.perf_counter() - started
            vectors["arena_shm"] = out
        finally:
            backend.shutdown()
        if leaked_segments():
            raise SystemExit("shared-memory segments leaked during the bench")

    reference = vectors["arena"]
    equal = all(
        len(series) == len(reference)
        and all(np.array_equal(a, b) for a, b in zip(series, reference))
        for series in vectors.values()
    )
    return seconds, equal


def run(configs, out_path: Path) -> dict:
    results = []
    for name, instances, distinct, candidate_count, design_size, iterations, modes in configs:
        schema, sqls = _environment(distinct)
        candidates = _candidates(schema, sqls, candidate_count)
        weights = _instance_weights(len(sqls), instances)
        seconds, equal = _run_config(
            schema, sqls, candidates, design_size, iterations, modes
        )
        base = min(design_size, len(candidates))
        final = (
            base if design_size >= len(candidates) else base + iterations - 1
        )
        record = {
            "name": name,
            "query_instances": int(sum(weights)),
            "distinct_sqls": len(sqls),
            "candidates": len(candidates),
            "design_size": base,
            "final_design_size": final,
            "iterations": iterations,
            "seconds": {mode: seconds[mode] for mode in modes},
            "equal": equal,
        }
        if "recompile" in seconds:
            record["arena_speedup"] = seconds["recompile"] / seconds["arena"]
        results.append(record)
        shown = "  ".join(f"{m} {seconds[m]:.3f}s" for m in modes)
        speedup = (
            f"  arena {record['arena_speedup']:.1f}x"
            if "arena_speedup" in record
            else ""
        )
        print(
            f"{name}: {record['query_instances']}inst/"
            f"{record['distinct_sqls']}q x {record['candidates']}c "
            f"(designs of {record['design_size']}->{final}) x {iterations}it  "
            f"{shown}{speedup}  equal={equal}"
        )
        if not equal:
            raise SystemExit(f"{name}: modes diverged bitwise")
    payload = {"benchmark": "costing_arena", "configs": results}
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: exercises equivalence and the JSON format only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_costing_arena.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    out = args.out
    if args.smoke and out.name == "BENCH_costing_arena.json":
        # The smoke leg must not clobber the checked-in full-run record.
        out = out.with_name("BENCH_costing_arena.smoke.json")
    payload = run(configs, out)
    if not args.smoke:
        common = [c for c in payload["configs"] if "arena_speedup" in c][-1]
        if common["arena_speedup"] < 3.0:
            print(
                f"WARNING: largest-common-config arena speedup "
                f"{common['arena_speedup']:.1f}x is below the 3x target"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
