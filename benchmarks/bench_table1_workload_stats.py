"""Table 1 — δ(W_i, W_{i+1}) statistics for R1, S1, S2 (28-day windows).

Paper values (for shape comparison):

    R1  min=0.00016  max=0.00311  avg=0.00120  std=0.00122
    S1  min≈0.1m     max≈m        avg=0.00006  std=0.00003
    S2  min≈m        max≈M        avg=0.00178  std=0.00063
"""

from repro.harness.experiments import run_table1
from repro.harness.reporting import format_table


def test_table1_workload_statistics(benchmark, context, emit):
    rows = benchmark.pedantic(run_table1, args=(context,), rounds=1, iterations=1)
    emit(
        format_table(
            ["Workload", "Min δ", "Max δ", "Avg δ", "Std δ"],
            [
                [r.workload, r.minimum, r.maximum, r.average, r.std]
                for r in rows
            ],
            title="Table 1: workload drift between consecutive 28-day windows",
        )
    )
    by_name = {r.workload: r for r in rows}
    # Shape assertions: S1 is (near-)static; S2 spans a comparable range to R1.
    assert by_name["S1"].average < 0.25 * by_name["R1"].average
    assert by_name["S2"].maximum >= by_name["R1"].minimum
    for r in rows:
        assert r.minimum <= r.average <= r.maximum
