"""Scalar vs. vectorized candidate-matrix build (the greedy hot path).

Times ``designers.greedy.evaluate_candidates`` — the full
``(candidates x queries)`` what-if matrix behind every nominal design —
with the costing service's vectorized kernel enabled and with it forced
off, at three sizes, and asserts the two matrices are bit-identical.
Emits a JSON record (``BENCH_costing_kernel.json`` by default) so the
speedup trajectory can be tracked across commits::

    PYTHONPATH=src python benchmarks/bench_costing_kernel.py            # full
    PYTHONPATH=src python benchmarks/bench_costing_kernel.py --smoke   # CI leg

The candidate pool is the nominal designer's, extended with seeded
synthetic projections so each configuration hits its exact candidate
count regardless of how many structures the workload itself suggests.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.costing.service import CostEvaluationService
from repro.designers.base import ColumnarAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.greedy import evaluate_candidates
from repro.engine.optimizer import ColumnarCostModel
from repro.engine.projection import Projection, SortColumn
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile
from repro.workload.workload import Workload

#: (name, query count, candidate count) per configuration.
FULL_CONFIGS = [("small", 20, 60), ("medium", 60, 250), ("large", 160, 800)]
SMOKE_CONFIGS = [("smoke-small", 6, 12), ("smoke-large", 10, 30)]


def _environment(query_count: int):
    """Schema plus ``query_count`` distinct trace queries."""
    schema, roles = build_star_schema(
        fact_tables=2,
        fact_rows=1_000_000,
        fact_attributes=12,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=12, topic_count=4, templates_per_topic=5)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=120)
    sqls = list(dict.fromkeys(q.sql for q in trace))[:query_count]
    if len(sqls) < query_count:
        raise SystemExit(
            f"trace produced only {len(sqls)} distinct queries, "
            f"need {query_count}"
        )
    return schema, sqls


def _synthetic_projections(schema, count: int, seed: int) -> list[Projection]:
    """Seeded random projections over the fact tables."""
    rng = np.random.default_rng(seed)
    facts = [
        name
        for name, table in sorted(schema.tables.items())
        if len(table.column_names) >= 6
    ]
    out: list[Projection] = []
    seen: set[Projection] = set()
    while len(out) < count:
        table = facts[int(rng.integers(len(facts)))]
        names = schema.table(table).column_names
        width = int(rng.integers(2, min(len(names), 8)))
        picked = tuple(
            names[i] for i in sorted(rng.choice(len(names), size=width, replace=False))
        )
        sort_width = int(rng.integers(1, min(3, width) + 1))
        order = rng.permutation(width)[:sort_width]
        projection = Projection(
            table=table,
            columns=picked,
            sort_columns=tuple(SortColumn(picked[int(i)]) for i in order),
        )
        if projection not in seen:
            seen.add(projection)
            out.append(projection)
    return out


def _candidates(schema, sqls: list[str], count: int) -> list[Projection]:
    model = ColumnarCostModel(schema)
    nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    pool = nominal.generate_candidates(Workload.from_sql(sqls))[:count]
    if len(pool) < count:
        extra = _synthetic_projections(schema, count * 2, seed=13)
        for projection in extra:
            if len(pool) >= count:
                break
            if projection not in pool:
                pool.append(projection)
    return pool[:count]


def _timed_build(schema, sqls: list[str], candidates, use_kernel: bool):
    """Wall clock of the candidate-matrix build for one fresh service.

    Query parsing/profiling is hoisted out of the timed region: it is a
    shared preprocessing stage both paths pay identically (the profiler
    memoizes by exact SQL text), not part of the what-if matrix build
    this benchmark measures.
    """
    model = ColumnarCostModel(schema)
    for sql in sqls:
        model.profile(sql)
    service = CostEvaluationService(model)
    if not use_kernel:
        service.kernel = None
    adapter = ColumnarAdapter(model, costing=service)
    workload = Workload.from_sql(sqls)
    started = time.perf_counter()
    evaluation = evaluate_candidates(adapter, workload, candidates)
    return time.perf_counter() - started, evaluation


def run(configs, out_path: Path, repeats: int = 3) -> dict:
    results = []
    for name, query_count, candidate_count in configs:
        schema, sqls = _environment(query_count)
        candidates = _candidates(schema, sqls, candidate_count)
        scalar_seconds = kernel_seconds = float("inf")
        scalar_eval = kernel_eval = None
        for _ in range(repeats):  # best-of-N: each leg is a fresh service
            seconds, scalar_eval = _timed_build(
                schema, sqls, candidates, use_kernel=False
            )
            scalar_seconds = min(scalar_seconds, seconds)
            seconds, kernel_eval = _timed_build(
                schema, sqls, candidates, use_kernel=True
            )
            kernel_seconds = min(kernel_seconds, seconds)
        equal = bool(
            np.array_equal(scalar_eval.matrix, kernel_eval.matrix)
            and np.array_equal(scalar_eval.base_costs, kernel_eval.base_costs)
        )
        record = {
            "name": name,
            "queries": len(sqls),
            "candidates": len(candidates),
            "scalar_seconds": scalar_seconds,
            "kernel_seconds": kernel_seconds,
            "speedup": scalar_seconds / kernel_seconds if kernel_seconds else 0.0,
            "equal": equal,
        }
        results.append(record)
        print(
            f"{name}: {record['queries']}q x {record['candidates']}c  "
            f"scalar {scalar_seconds:.3f}s  kernel {kernel_seconds:.3f}s  "
            f"{record['speedup']:.1f}x  equal={equal}"
        )
        if not equal:
            raise SystemExit(f"{name}: kernel matrix diverged from scalar matrix")
    payload = {"benchmark": "costing_kernel", "configs": results}
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: exercises equivalence and the JSON format only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_costing_kernel.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    repeats = 1 if args.smoke else 3
    out = args.out
    if args.smoke and out.name == "BENCH_costing_kernel.json":
        # The smoke leg must not clobber the checked-in full-run record.
        out = out.with_name("BENCH_costing_kernel.smoke.json")
    payload = run(configs, out, repeats=repeats)
    if not args.smoke:
        largest = payload["configs"][-1]
        if largest["speedup"] < 5.0:
            print(
                f"WARNING: largest-config speedup {largest['speedup']:.1f}x "
                "is below the 5x target"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
