"""Checkpoint overhead on the Γ-sweep bench — the docs/state.md budget.

Runs the Figures 8–9 Γ-sweep shape (``run_gamma_sweep`` at the bench
scale) uninterrupted and again with a ``RunCheckpointer`` snapshotting
at every Γ-point, asserts the two sweeps are bit-identical, and emits a
JSON record of the wall times and the cumulative snapshot-write time.

The acceptance budget is **< 5 % overhead** at ``checkpoint_every=1``
(docs/state.md).  The assertion targets the directly-attributable cost —
the ``state.write_seconds`` histogram total as a fraction of the
checkpointed run's wall clock — because end-to-end wall deltas on a
shared CI box are dominated by scheduler noise, not by the three
pickle+fsync+rename calls this run performs.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_state_checkpoint.py -s
"""

import json
import time

from repro.harness.experiments import run_gamma_sweep
from repro.obs import MetricsRegistry
from repro.state import RunCheckpointer

#: docs/state.md acceptance budget: snapshot writes may cost at most
#: this fraction of the checkpointed run's wall time.
OVERHEAD_BUDGET = 0.05


def _sweep(context, checkpointer=None):
    base_gamma = context.default_gamma("R1")
    gammas = [0.0, base_gamma, 8 * base_gamma]
    started = time.perf_counter()
    results = run_gamma_sweep(context, "R1", gammas=gammas, checkpointer=checkpointer)
    return results, time.perf_counter() - started


def test_checkpoint_overhead(context, emit, tmp_path):
    plain, plain_wall = _sweep(context)

    registry = MetricsRegistry()
    checkpointer = RunCheckpointer(tmp_path / "sweep.ckpt", metrics=registry)
    checked, checked_wall = _sweep(context, checkpointer)

    # Attaching a checkpointer must not perturb the results.
    assert checked == plain
    assert checkpointer.writes == 3  # one durable snapshot per Γ-point

    write_seconds = registry.histogram("state.write_seconds").total
    write_fraction = write_seconds / checked_wall
    emit(
        json.dumps(
            {
                "bench": "state_checkpoint",
                "plain_wall_seconds": round(plain_wall, 4),
                "checkpointed_wall_seconds": round(checked_wall, 4),
                "snapshot_writes": checkpointer.writes,
                "snapshot_write_seconds": round(write_seconds, 4),
                "write_fraction_of_wall": round(write_fraction, 4),
                "payload_bytes": int(
                    registry.gauge("state.payload_bytes").value
                ),
                "budget": OVERHEAD_BUDGET,
            },
            indent=2,
        )
    )
    assert write_fraction < OVERHEAD_BUDGET, (
        f"checkpoint writes cost {write_fraction:.1%} of wall time "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
