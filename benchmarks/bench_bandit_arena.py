"""BanditDesigner vs CliffGuard vs the nominal designer under drift.

The designer registry is an *arena*: any strategy mapping a workload
window to a design under the storage budget can race the BNT local
search.  This benchmark replays four drift scenarios — ``R1`` (the paper's
read-only analytical drift), ``ECOMMERCE`` (flash-sale write bursts +
seasonal cycle), ``OLTP`` (write-majority), and ``HTAP`` (analytical
drift over a transactional write stream) —
through the Figure-7 designer comparison with the C²UCB
:class:`~repro.designers.bandit.BanditDesigner` in the field, and
records:

* per-window **regret curves** — the bandit's window latency minus the
  best rival's on the same window (negative = the bandit won the
  window);
* the bandit's learner counters (``rounds``, ``observations``,
  ``safety_fallbacks``, ``model_digest``) from ``DesignerRun.stats``;
* serial-vs-process **digest identity**: every configuration runs on
  both backends and the window trajectories *and* learner stats must be
  bit-identical (``equal: true``); any divergence is a hard failure.

A separate **safety drill** cranks the ECOMMERCE flash-sale knobs
(``flash_sale_probability=0.3``, ``flash_sale_write_boost=8.0``) until
write bursts dominate whole windows, then runs the bandit at
``safety_margin=0.0`` so the no-regret guard has to fire: the drill
asserts at least one ``safety_fallbacks`` event and (run twice) a
deterministic model digest.

Output (``BENCH_bandit_arena.json``)::

    PYTHONPATH=src python benchmarks/bench_bandit_arena.py           # full
    PYTHONPATH=src python benchmarks/bench_bandit_arena.py --smoke   # CI leg
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.designers.bandit import BanditDesigner
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_designer_comparison,
)
from repro.parallel import ProcessBackend, SerialBackend
from repro.workload.families import ecommerce_profile
from repro.workload.generator import TraceGenerator
from repro.workload.windows import split_windows

BANDIT = "BanditDesigner"
ARENA = ["ExistingDesigner", "CliffGuard", BANDIT]

#: (name, workload, scale).  ``skip_transitions=1`` keeps the cold-start
#: window out; the remaining transitions all carry drifted mixes, and
#: the bandit learns across them through the replay observe hook.
FULL_CONFIGS = [
    (
        "r1-read-only",
        "R1",
        ExperimentScale(
            days=140,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=3,
            legacy_tables=3,
            max_transitions=3,
            skip_transitions=1,
        ),
    ),
    (
        "ecommerce-flash-sale",
        "ECOMMERCE",
        ExperimentScale(
            days=140,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=5,
            legacy_tables=3,
            max_transitions=3,
            skip_transitions=1,
        ),
    ),
    (
        "oltp-write-majority",
        "OLTP",
        ExperimentScale(
            days=112,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=7,
            legacy_tables=3,
            max_transitions=2,
            skip_transitions=1,
        ),
    ),
    (
        "htap-write-mix",
        "HTAP",
        ExperimentScale(
            days=140,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=2,
            legacy_tables=3,
            max_transitions=3,
            skip_transitions=1,
        ),
    ),
]

SMOKE_CONFIGS = [
    (
        "smoke-ecommerce",
        "ECOMMERCE",
        ExperimentScale(
            days=84,
            window_days=28,
            queries_per_day=6,
            n_samples=2,
            iterations=1,
            seed=3,
            legacy_tables=2,
            max_transitions=2,
            skip_transitions=0,
        ),
    ),
]


def _run_windows(run) -> list[dict]:
    return [
        {
            "window_index": w.window_index,
            "average_ms": w.average_ms,
            "max_ms": w.max_ms,
            "design_price_bytes": w.design_price_bytes,
            "structure_count": w.structure_count,
        }
        for w in run.windows
    ]


def _comparison(workload: str, scale: ExperimentScale, backend) -> dict:
    context = ExperimentContext(scale)
    result = run_designer_comparison(context, workload, which=ARENA, backend=backend)
    return {
        name: {
            "windows": _run_windows(result.run(name)),
            "stats": result.run(name).stats,
        }
        for name in ARENA
    }


def _regret_curve(arena: dict) -> list[dict]:
    """Per window: bandit latency minus the best rival's (< 0 = bandit won)."""
    curve = []
    bandit = arena[BANDIT]["windows"]
    rivals = [arena[name]["windows"] for name in ARENA if name != BANDIT]
    for i, window in enumerate(bandit):
        best_rival = min(r[i]["average_ms"] for r in rivals)
        curve.append(
            {
                "window_index": window["window_index"],
                "bandit_ms": window["average_ms"],
                "best_rival_ms": best_rival,
                "regret_ms": window["average_ms"] - best_rival,
            }
        )
    return curve


def _summary(windows: list[dict]) -> dict:
    avgs = [w["average_ms"] for w in windows]
    return {
        "mean_average_ms": sum(avgs) / len(avgs),
        "worst_window_ms": max(avgs),
        "mean_price_bytes": sum(w["design_price_bytes"] for w in windows)
        / len(windows),
    }


def safety_drill(seed: int = 5, days: int = 84, window_days: int = 7) -> dict:
    """Flash-sale stress run that must trip the no-regret guard.

    The boosted profile makes flash-sale windows write-dominated, so the
    exploring super-arm is periodically predicted to regress past the
    zero-margin incumbent bound and the guard has to fall back.  Run
    twice start-to-finish: identical fallback counts and model digests
    are the determinism half of the drill.
    """

    def once() -> BanditDesigner:
        scale = ExperimentScale(
            days=days,
            window_days=window_days,
            queries_per_day=8,
            n_samples=2,
            iterations=1,
            seed=seed,
            legacy_tables=2,
            max_transitions=None,
            skip_transitions=0,
        )
        context = ExperimentContext(scale)
        profile = ecommerce_profile(
            queries_per_day=scale.queries_per_day,
            flash_sale_probability=0.3,
            flash_sale_write_boost=8.0,
        )
        generator = TraceGenerator(
            context.schema, context.roles, profile, seed=scale.seed
        )
        windows = [
            w
            for w in split_windows(generator.generate(days=scale.days), window_days)
            if len(w)
        ]
        adapter = context.columnar_adapter()
        nominal = ColumnarNominalDesigner(adapter)
        bandit = BanditDesigner(nominal, adapter, safety_margin=0.0, seed=0)
        for i in range(len(windows) - 1):
            design = bandit.design(windows[i])
            observed = {
                q.sql: adapter.query_cost(q.sql, design)
                for q in windows[i + 1].collapsed()
            }
            bandit.observe(windows[i + 1], design, observed)
        return bandit

    first, second = once(), once()
    deterministic = (
        first.model_digest() == second.model_digest()
        and first.safety_fallbacks == second.safety_fallbacks
    )
    if not deterministic:
        raise SystemExit("safety drill: two identical runs diverged")
    if first.safety_fallbacks < 1:
        raise SystemExit(
            "safety drill: no safety-fallback event under flash-sale drift"
        )
    return {
        "workload": "ECOMMERCE (flash_sale_probability=0.3, write_boost=8.0)",
        "safety_margin": 0.0,
        "rounds": first.rounds,
        "safety_fallbacks": first.safety_fallbacks,
        "model_digest": first.model_digest(),
        "deterministic": deterministic,
    }


def run(configs, out_path: Path) -> dict:
    results = []
    for name, workload, scale in configs:
        started = time.perf_counter()
        serial = _comparison(workload, scale, SerialBackend())
        with ProcessBackend(jobs=2) as pool:
            process = _comparison(workload, scale, pool)
        if serial != process:
            raise SystemExit(f"{name}: serial and process backends diverged")
        bandit_stats = serial[BANDIT]["stats"]
        record = {
            "name": name,
            "workload": workload,
            "transitions": len(serial[BANDIT]["windows"]),
            "summaries": {
                d: _summary(serial[d]["windows"]) for d in ARENA
            },
            "bandit_stats": bandit_stats,
            "regret_curve": _regret_curve(serial),
            "windows": {d: serial[d]["windows"] for d in ARENA},
            "equal": True,
            "seconds": time.perf_counter() - started,
        }
        results.append(record)
        mean_regret = sum(p["regret_ms"] for p in record["regret_curve"]) / len(
            record["regret_curve"]
        )
        print(
            f"{name}: bandit mean "
            f"{record['summaries'][BANDIT]['mean_average_ms']:.2f}ms  "
            f"cliffguard mean "
            f"{record['summaries']['CliffGuard']['mean_average_ms']:.2f}ms  "
            f"mean regret {mean_regret:+.2f}ms  "
            f"fallbacks {bandit_stats['safety_fallbacks']}  "
            f"({record['seconds']:.1f}s)"
        )
    drill = safety_drill()
    print(
        f"safety drill: {drill['safety_fallbacks']} fallbacks over "
        f"{drill['rounds']} rounds, deterministic={drill['deterministic']}"
    )
    payload = {
        "benchmark": "bandit_arena",
        "configs": results,
        "safety_drill": drill,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: exercises determinism, the safety drill, and "
        "the JSON format only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_bandit_arena.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    out = args.out
    if args.smoke and out.name == "BENCH_bandit_arena.json":
        # The smoke leg must not clobber the checked-in full-run record.
        out = out.with_name("BENCH_bandit_arena.smoke.json")
    run(configs, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
