"""Ablation A4 — the generic continuous BNT optimizer on closed-form
non-convex surfaces (the Figures 2–4 story).

Validates that the robust local search finds robust optima that differ
from nominal optima exactly where the paper's toy example says they
should: near cliffs, the robust minimizer backs away from the edge.
"""

import numpy as np

from repro.core.bnt import bnt_minimize
from repro.harness.reporting import format_table


def cliff_surface(x):
    """A 2-D valley with a steep cliff on one side (Figure 2's shape)."""
    a, b = float(x[0]), float(x[1])
    base = 0.5 * (a**2) + 0.5 * (b**2)
    cliff = 40.0 * max(0.0, a - 0.6) ** 2
    return base + cliff


def multimodal_surface(x):
    """Two basins: a narrow deep one and a wide shallow one."""
    a = float(x[0])
    narrow = 0.2 + 30.0 * (a - 1.0) ** 2
    wide = 0.5 + 0.5 * (a + 1.5) ** 2
    return min(narrow, wide)


def test_bnt_convex_baseline(benchmark, emit):
    result = benchmark.pedantic(
        bnt_minimize,
        args=(lambda x: float(x @ x), np.array([4.0, -3.0])),
        kwargs={"gamma": 0.5, "seed": 1},
        rounds=1,
        iterations=1,
    )
    emit(f"convex quadratic: x* = {result.x.round(3)}, worst-case = {result.worst_case:.3f}")
    assert np.linalg.norm(result.x) < 0.4


def test_bnt_backs_away_from_cliffs(benchmark, emit):
    gamma = 0.5
    result = benchmark.pedantic(
        bnt_minimize,
        args=(cliff_surface, np.array([0.55, 0.1])),
        kwargs={"gamma": gamma, "seed": 2},
        rounds=1,
        iterations=1,
    )
    nominal_x = np.zeros(2)  # nominal optimum of the base bowl
    rows = [
        ["robust x*", f"({result.x[0]:.3f}, {result.x[1]:.3f})"],
        ["robust worst-case", f"{result.worst_case:.3f}"],
        ["iterations", result.iterations],
        ["converged", result.converged],
    ]
    emit(format_table(["quantity", "value"], rows, title="A4: cliff surface"))
    # The robust solution must keep the whole Γ-ball off the cliff: its
    # center sits left of (0.6 - something close to Γ).
    assert result.x[0] < 0.3
    # And its worst case beats staying at the nominal bowl optimum.
    from repro.core.bnt import find_worst_neighbors

    rng = np.random.default_rng(9)
    _, nominal_worst = find_worst_neighbors(cliff_surface, nominal_x, gamma, rng)
    assert result.worst_case <= nominal_worst * 1.05


def test_bnt_prefers_wide_basin_under_uncertainty(benchmark, emit):
    """With Γ wider than the narrow basin, the robust optimum is the wide
    shallow basin — even though the narrow one is nominally better."""
    result = benchmark.pedantic(
        bnt_minimize,
        args=(multimodal_surface, np.array([0.2])),
        kwargs={"gamma": 0.8, "seed": 3},
        rounds=1,
        iterations=1,
    )
    emit(f"multimodal: robust x* = {result.x[0]:.3f} (nominal optimum at 1.0)")
    assert result.x[0] < 0.5  # moved away from the narrow basin at 1.0
