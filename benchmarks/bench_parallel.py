"""Parallel execution backends — speedup and bit-identity measurements.

Runs the same CliffGuard design call (the F7a neighborhood-evaluation hot
path) on the serial backend and on the process backend, asserts the two
produce bit-identical designs, cost trajectories, and service counters,
and emits a JSON record of the per-backend wall times.

The speedup assertion only fires on multi-core machines: on a single
core a process pool is pure overhead, and the honest result is the
measurement, not a forced pass.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -s
"""

import json
import os
import time

from repro.designers import registry
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.experiments import run_gamma_sweep
from repro.parallel import ProcessBackend, SerialBackend

JOBS = 4


def _design_once(context, backend):
    """One CliffGuard design call on a fresh engine stack over ``backend``."""
    adapter = context.columnar_adapter(backend)
    nominal = ColumnarNominalDesigner(adapter)
    gamma = context.default_gamma("R1")
    designer, sampler = registry.get(
        "CliffGuard",
        adapter,
        nominal,
        gamma,
        make_sampler=context.sampler,
        n_samples=context.scale.n_samples,
        max_iterations=context.scale.iterations,
    )
    windows = context.trace_windows("R1")
    window = windows[-2]
    sampler.set_pool(
        [q for q in context.trace("R1") if q.timestamp < window.span_days[0]]
    )
    started = time.perf_counter()
    design = designer.design(window)
    wall = time.perf_counter() - started
    report = designer.last_report
    fingerprint = sorted(s.to_sql() for s in adapter.structures(design))
    counters = (
        report.query_cost_calls,
        report.raw_cost_model_calls,
        report.cache_hits,
        report.designer_calls,
    )
    return {
        "backend": report.backend,
        "wall_seconds": wall,
        "eval_wall_seconds": report.eval_wall_seconds,
        "fingerprint": fingerprint,
        "price_bytes": adapter.design_price(design),
        "worst_case_history": report.worst_case_history,
        "counters": counters,
    }


def test_neighborhood_backend_speedup(context, emit):
    serial = _design_once(context, SerialBackend())
    with ProcessBackend(jobs=JOBS) as pool:
        process = _design_once(context, pool)

    # Bit-identity: same design, same cost trajectory, same counters.
    assert process["fingerprint"] == serial["fingerprint"]
    assert process["price_bytes"] == serial["price_bytes"]
    assert process["worst_case_history"] == serial["worst_case_history"]
    assert process["counters"] == serial["counters"]

    cpu = os.cpu_count() or 1
    record = {
        "benchmark": "neighborhood_evaluation",
        "cpu_count": cpu,
        "jobs": JOBS,
        "n_samples": context.scale.n_samples,
        "serial_wall_seconds": round(serial["wall_seconds"], 4),
        "process_wall_seconds": round(process["wall_seconds"], 4),
        "serial_eval_seconds": round(serial["eval_wall_seconds"], 4),
        "process_eval_seconds": round(process["eval_wall_seconds"], 4),
        "speedup": round(serial["wall_seconds"] / max(process["wall_seconds"], 1e-9), 3),
        "bit_identical": True,
    }
    emit(json.dumps(record, indent=2))
    if cpu >= 4:
        assert record["speedup"] > 1.0


def test_gamma_sweep_backend_speedup(context, emit):
    gammas = [0.0, context.default_gamma("R1")]
    started = time.perf_counter()
    serial_sweep = run_gamma_sweep(context, "R1", gammas=gammas, backend=SerialBackend())
    serial_wall = time.perf_counter() - started

    with ProcessBackend(jobs=JOBS) as pool:
        started = time.perf_counter()
        process_sweep = run_gamma_sweep(context, "R1", gammas=gammas, backend=pool)
        process_wall = time.perf_counter() - started

    assert process_sweep == serial_sweep

    cpu = os.cpu_count() or 1
    record = {
        "benchmark": "gamma_sweep",
        "cpu_count": cpu,
        "jobs": JOBS,
        "gammas": len(gammas),
        "serial_wall_seconds": round(serial_wall, 4),
        "process_wall_seconds": round(process_wall, 4),
        "speedup": round(serial_wall / max(process_wall, 1e-9), 3),
        "bit_identical": True,
    }
    emit(json.dumps(record, indent=2))
    if cpu >= 4:
        assert record["speedup"] > 1.0
