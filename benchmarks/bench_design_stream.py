"""Design-stream re-costing: warm candidate matrix + delta neighborhoods
vs the cold rebuild, end to end through CliffGuard's outer loop.

A tuning session is a *stream* of designer invocations over largely
overlapping workloads: every CliffGuard iteration re-invokes the nominal
designer on a moved workload, every serve-daemon window re-designs over
a slid window, every replay transition re-prices the same recurring
queries.  Before this change each invocation recompiled and re-priced
the full (candidates × queries) matrix and re-reduced every neighborhood
query from scratch; now priced matrix columns persist in
``CostEvaluationService``'s candidate-matrix cache (new SQL extends the
arena, new candidates price fresh columns) and candidate designs are
delta-evaluated against the incumbent (only queries the diff can touch
are re-reduced).  This benchmark times three stream shapes:

* ``matrix-stream-*`` — a sliding-window ``candidate_costs`` stream per
  substrate (columnar / rowstore / samples), the designer-invocation
  inner loop in isolation;
* ``cliffguard-*`` — end-to-end ``CliffGuard.design`` over successive
  trace windows (the serve-daemon re-design stream), columnar and
  rowstore;
* ``comparison-columnar`` — ``run_designer_comparison`` (the Figure 7
  harness) with the CliffGuard designer;

in two modes each — ``cold`` (matrix cache and delta neighborhoods
disabled: the prior per-call rebuild) and ``warm`` (both enabled) — plus
a ``warm_process`` ProcessBackend(jobs=2) variant where noted, asserts
every mode's outputs are bit-identical, and writes
``BENCH_design_stream.json``::

    PYTHONPATH=src python benchmarks/bench_design_stream.py           # full
    PYTHONPATH=src python benchmarks/bench_design_stream.py --smoke   # CI leg

The full run exits non-zero if any config's modes diverge bitwise or the
headline speedup misses the 3x target.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core.cliffguard import CliffGuard
from repro.costing.service import CostEvaluationService
from repro.designers.base import ColumnarAdapter, RowstoreAdapter, SamplesAdapter
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.designers.rowstore_nominal import RowstoreNominalDesigner
from repro.engine.optimizer import ColumnarCostModel
from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    _engine_stack,
    run_designer_comparison,
)
from repro.parallel import ProcessBackend
from repro.parallel.shm import leaked_segments
from repro.rowstore.optimizer import RowstoreCostModel
from repro.samples.design import StratifiedSample
from repro.samples.optimizer import SamplesCostModel
from repro.serve.handle import design_digest
from repro.workload.generator import TraceGenerator, build_star_schema, r1_profile

#: Matrix-stream shape: ``windows`` sliding query windows (slide =
#: ``step`` sqls, an arena extension), each re-priced ``repeats`` times
#: with a candidate set growing by ``cstep`` per call — the shape of
#: CliffGuard's repeated nominal invocations, the multi-designer
#: comparison, and serve-daemon re-designs over one boundary.
MATRIX_FULL = {
    "sqls": 400, "window": 260, "step": 20,
    "pool": 640, "c0": 480, "cstep": 8,
    "windows": 4, "repeats": 6,
}
MATRIX_SMOKE = {
    "sqls": 60, "window": 40, "step": 10,
    "pool": 80, "c0": 56, "cstep": 4,
    "windows": 2, "repeats": 4,
}

#: CliffGuard-stream shape: successive trace windows re-designed.
CLIFF_FULL = ExperimentScale(
    days=224,
    window_days=28,
    queries_per_day=30,
    n_samples=8,
    iterations=4,
    legacy_tables=8,
)
CLIFF_SMOKE = ExperimentScale(
    days=112,
    window_days=28,
    queries_per_day=6,
    n_samples=3,
    iterations=2,
    legacy_tables=2,
)
CLIFF_FULL_WINDOWS = 4
CLIFF_SMOKE_WINDOWS = 2

COMPARISON_FULL = ExperimentScale(
    days=168,
    window_days=28,
    queries_per_day=18,
    n_samples=6,
    iterations=3,
    legacy_tables=4,
    max_transitions=2,
    skip_transitions=3,
)
COMPARISON_SMOKE = ExperimentScale(
    days=112,
    window_days=28,
    queries_per_day=6,
    n_samples=2,
    iterations=1,
    legacy_tables=2,
    max_transitions=1,
    skip_transitions=2,
)


@contextmanager
def _toggles(enabled: bool):
    """Force the design-stream reuse toggles for every service built
    inside the block (the harness builds its own stacks)."""
    original = CostEvaluationService.__init__

    def patched(self, *args, **kwargs):
        original(self, *args, **kwargs)
        self.matrix_cache_enabled = enabled
        self.delta_neighborhood_enabled = enabled

    CostEvaluationService.__init__ = patched
    try:
        yield
    finally:
        CostEvaluationService.__init__ = original


# -- matrix-stream configs ---------------------------------------------------------


@lru_cache(maxsize=1)
def _matrix_environment(distinct: int):
    schema, roles = build_star_schema(
        fact_tables=3,
        fact_rows=1_000_000,
        fact_attributes=14,
        legacy_tables=2,
        legacy_columns=3,
        seed=7,
    )
    profile = r1_profile(queries_per_day=24, topic_count=8, templates_per_topic=8)
    trace = TraceGenerator(schema, roles, profile, seed=9).generate(days=240)
    sqls = list(dict.fromkeys(q.sql for q in trace))
    if len(sqls) < distinct:
        raise SystemExit(
            f"trace produced only {len(sqls)} distinct queries, need {distinct}"
        )
    return schema, sqls[:distinct]


def _matrix_substrate(substrate: str, shape: dict):
    schema, sqls = _matrix_environment(shape["sqls"])
    if substrate == "columnar":
        model = ColumnarCostModel(schema)
        nominal = ColumnarNominalDesigner(ColumnarAdapter(model))
    elif substrate == "rowstore":
        model = RowstoreCostModel(schema)
        nominal = RowstoreNominalDesigner(RowstoreAdapter(model))
    else:
        model = SamplesCostModel(schema)
        nominal = None
    profiles = [model.profile(sql) for sql in sqls]
    if substrate == "samples":
        # Star-join traces are not sample-answerable, so the nominal pool
        # is empty; synthesize stratified samples over the touched tables
        # (reuse must hold for unanswerable structures too).
        used = list(dict.fromkeys(t.table for p in profiles for t in p.tables))
        pool = [
            StratifiedSample(
                table=table,
                strata_columns=(schema.table(table).column_names[col],),
                fraction=fraction,
            )
            for table in used
            for col in range(min(4, len(schema.table(table).column_names)))
            for fraction in (0.005, 0.01, 0.05, 0.1)
        ]
    else:
        from repro.workload.workload import Workload

        pool = nominal.generate_candidates(Workload.from_sql(sqls))
    if len(pool) < shape["pool"]:
        # Small pools (samples, sparse templates) cycle with distinct
        # fractions/width rather than capping the stream.
        shape = dict(shape, pool=len(pool), c0=min(shape["c0"], len(pool)))
    return model, pool[: shape["pool"]], profiles, shape


def _matrix_calls(shape: dict):
    """The (query-slice, candidate-slice) stream: each window slide is an
    arena extension; the ``repeats`` calls that follow re-price the same
    queries with a candidate set growing per call — the warm path
    reduces them to cached-column assembly plus the fresh columns."""
    calls = []
    call_index = 0
    for w in range(shape["windows"]):
        lo = min(w * shape["step"], max(0, shape["sqls"] - shape["window"]))
        hi = min(lo + shape["window"], shape["sqls"])
        for _ in range(shape["repeats"]):
            n_cand = min(shape["c0"] + call_index * shape["cstep"], shape["pool"])
            calls.append((slice(lo, hi), slice(0, n_cand)))
            call_index += 1
    return calls


def _adapter_for(model, service):
    if isinstance(model, ColumnarCostModel):
        return ColumnarAdapter(model, costing=service)
    if isinstance(model, RowstoreCostModel):
        return RowstoreAdapter(model, costing=service)
    return SamplesAdapter(model, costing=service)


def _run_matrix_stream(substrate: str, shape: dict, with_process: bool):
    model, pool, profiles, shape = _matrix_substrate(substrate, shape)
    calls = _matrix_calls(shape)
    seconds: dict[str, float] = {}
    outputs: dict[str, list] = {}
    modes = ["cold", "warm"] + (["warm_process"] if with_process else [])
    for mode in modes:
        backend = ProcessBackend(jobs=2) if mode == "warm_process" else None
        try:
            service = CostEvaluationService(model, backend=backend)
            warm = mode != "cold"
            service.matrix_cache_enabled = warm
            service.delta_neighborhood_enabled = warm
            adapter = _adapter_for(model, service)
            out = []
            # Accumulated heap from earlier configs penalizes whichever
            # mode runs later; settle the collector before each timing.
            gc.collect()
            started = time.perf_counter()
            for q_slice, c_slice in calls:
                base, matrix = service.candidate_costs(
                    profiles[q_slice], pool[c_slice], adapter.make_design
                )
                out.append((base, matrix))
            seconds[mode] = time.perf_counter() - started
            outputs[mode] = out
        finally:
            if backend is not None:
                backend.shutdown()
        if backend is not None and leaked_segments():
            raise SystemExit("shared-memory segments leaked during the bench")
    reference = outputs["cold"]
    equal = all(
        all(
            np.array_equal(base, ref_base) and np.array_equal(matrix, ref_matrix)
            for (base, matrix), (ref_base, ref_matrix) in zip(series, reference)
        )
        for series in outputs.values()
    )
    pairs = sum(
        (q.stop - q.start) * (c.stop - c.start) for q, c in calls
    )
    facts = {
        "distinct_sqls": shape["sqls"],
        "window": shape["window"],
        "candidates": shape["pool"],
        "calls": len(calls),
        "request_pairs": pairs,
    }
    return seconds, equal, facts


# -- CliffGuard-stream configs -----------------------------------------------------


def _report_facts(report):
    exempt = type(report).RESUME_EXEMPT_FIELDS
    return tuple(
        (name, getattr(report, name))
        for name in (
            "iterations",
            "accepted_moves",
            "query_cost_calls",
            "raw_cost_model_calls",
            "final_alpha",
        )
        if name not in exempt
    )


def _run_cliffguard_stream(engine: str, scale: ExperimentScale, windows: int, with_process: bool):
    workload = "R1"
    seconds: dict[str, float] = {}
    outputs: dict[str, list] = {}
    modes = ["cold", "warm"] + (["warm_process"] if with_process else [])
    for mode in modes:
        backend = ProcessBackend(jobs=2) if mode == "warm_process" else None
        try:
            with _toggles(mode != "cold"):
                context = ExperimentContext(scale)
                adapter, nominal = _engine_stack(context, engine, backend=backend)
                gamma = context.default_gamma(workload)
                sampler = context.sampler()
                sampler.set_pool(context.trace(workload))
                designer = CliffGuard(
                    nominal,
                    adapter,
                    sampler,
                    gamma,
                    n_samples=scale.n_samples,
                    max_iterations=scale.iterations,
                )
                stream = context.trace_windows(workload)[
                    scale.skip_transitions : scale.skip_transitions + windows
                ]
                out = []
                gc.collect()
                started = time.perf_counter()
                for window in stream:
                    design = designer.design(window)
                    out.append(
                        (
                            design_digest(adapter, design),
                            _report_facts(designer.last_report),
                        )
                    )
                seconds[mode] = time.perf_counter() - started
                outputs[mode] = out
        finally:
            if backend is not None:
                backend.shutdown()
    equal = all(series == outputs["cold"] for series in outputs.values())
    facts = {
        "windows": len(outputs["cold"]),
        "n_samples": scale.n_samples,
        "iterations": scale.iterations,
    }
    return seconds, equal, facts


def _run_comparison(scale: ExperimentScale):
    seconds: dict[str, float] = {}
    outputs: dict[str, tuple] = {}
    for mode in ("cold", "warm"):
        with _toggles(mode != "cold"):
            context = ExperimentContext(scale)
            gc.collect()
            started = time.perf_counter()
            result = run_designer_comparison(
                context, "R1", engine="columnar", which=["CliffGuard"]
            )
            seconds[mode] = time.perf_counter() - started
            run = result.run("CliffGuard")
            outputs[mode] = (
                run.mean_average_ms,
                run.mean_max_ms,
                tuple(
                    (w.average_ms, w.max_ms, w.design_price_bytes, w.structure_count)
                    for w in run.windows
                ),
            )
    equal = outputs["warm"] == outputs["cold"]
    facts = {"transitions": len(outputs["cold"][2])}
    return seconds, equal, facts


# -- driver ------------------------------------------------------------------------


def run(smoke: bool, out_path: Path) -> dict:
    matrix_shape = MATRIX_SMOKE if smoke else MATRIX_FULL
    cliff_scale = CLIFF_SMOKE if smoke else CLIFF_FULL
    cliff_windows = CLIFF_SMOKE_WINDOWS if smoke else CLIFF_FULL_WINDOWS
    comparison_scale = COMPARISON_SMOKE if smoke else COMPARISON_FULL
    configs = [
        ("matrix-stream-columnar", _run_matrix_stream, ("columnar", matrix_shape, True)),
        ("matrix-stream-rowstore", _run_matrix_stream, ("rowstore", matrix_shape, False)),
        ("matrix-stream-samples", _run_matrix_stream, ("samples", matrix_shape, False)),
        (
            "cliffguard-columnar",
            _run_cliffguard_stream,
            ("columnar", cliff_scale, cliff_windows, not smoke),
        ),
        (
            "cliffguard-rowstore",
            _run_cliffguard_stream,
            ("rowstore", cliff_scale, cliff_windows, False),
        ),
        ("comparison-columnar", _run_comparison, (comparison_scale,)),
    ]
    results = []
    for name, runner, args in configs:
        seconds, equal, facts = runner(*args)
        record = {
            "name": name,
            **facts,
            "seconds": seconds,
            "equal": equal,
            "speedup": seconds["cold"] / seconds["warm"],
        }
        results.append(record)
        shown = "  ".join(f"{mode} {wall:.3f}s" for mode, wall in seconds.items())
        print(f"{name}: {shown}  warm {record['speedup']:.1f}x  equal={equal}")
        if not equal:
            raise SystemExit(f"{name}: modes diverged bitwise")
    payload = {"benchmark": "design_stream", "configs": results}
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: exercises equivalence and the JSON format only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_design_stream.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    out = args.out
    if args.smoke and out.name == "BENCH_design_stream.json":
        # The smoke leg must not clobber the checked-in full-run record.
        out = out.with_name("BENCH_design_stream.smoke.json")
    payload = run(args.smoke, out)
    if not args.smoke:
        headline = max(
            c["speedup"]
            for c in payload["configs"]
            if c["name"].startswith("matrix-stream")
        )
        if headline < 3.0:
            raise SystemExit(
                f"headline matrix-stream speedup {headline:.1f}x misses the 3x target"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
