"""Figure 14 — offline design time per designer vs deployment time.

Paper shape: CliffGuard takes ~5× the nominal designer's time (it calls it
per iteration); MajorityVote and OptimalLocalSearch pay the neighborhood
sampling cost; the *deployment* of a design dwarfs all design times, which
is the paper's argument that robustness is cheap.
"""

from repro.harness.experiments import run_offline_time
from repro.harness.reporting import format_table


def test_fig14_offline_time(benchmark, context, emit):
    rows = benchmark.pedantic(
        run_offline_time,
        args=(context,),
        kwargs={
            "which": [
                "NoDesign",
                "ExistingDesigner",
                "MajorityVoteDesigner",
                "CliffGuard",
            ]
        },
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["Designer", "Design time (s)", "Deployment time (s, modeled)"],
            [[r.designer, r.design_seconds, r.deployment_seconds] for r in rows],
            title="Figure 14: offline design time vs deployment time",
        )
    )
    by_name = {r.designer: r for r in rows}
    # CliffGuard costs a small multiple of the nominal designer's time...
    assert (
        by_name["CliffGuard"].design_seconds
        > by_name["ExistingDesigner"].design_seconds
    )
    # ...but deployment dominates every designer's offline time.
    assert (
        by_name["CliffGuard"].deployment_seconds
        > 3 * by_name["CliffGuard"].design_seconds
    )
    assert by_name["NoDesign"].deployment_seconds == 0.0
