"""Figure 6 — soundness of δ_euclidean: performance decay of a workload W
on a design made for W0 is strongly correlated with δ(W0, W).

Paper shape: a monotone, strongly correlated relationship between distance
and average latency under the anchored design.
"""

import numpy as np

from repro.harness.experiments import run_fig6
from repro.harness.reporting import format_table


def test_fig6_distance_soundness(benchmark, context, emit):
    points = benchmark.pedantic(
        run_fig6, args=(context,), kwargs={"n_probes": 6, "anchors": 2},
        rounds=1, iterations=1,
    )
    emit(
        format_table(
            ["δ(W0, W)", "avg latency on D(W0) [ms]"],
            [[d, latency] for d, latency in points],
            title="Figure 6: performance decay vs workload distance",
        )
    )
    distances = np.array([d for d, _ in points])
    latencies = np.array([l for _, l in points])
    # Strong positive correlation between distance and latency.
    correlation = np.corrcoef(distances, latencies)[0, 1]
    emit(f"correlation = {correlation:.3f} (paper: strongly positive)")
    assert correlation > 0.5
    # The farthest probes must be slower than the nearest.  The probe
    # distances only reach a few multiples of the observed drift (the
    # sampler cannot exceed δ(W0, Q) for any candidate set Q), so the
    # magnitude check is directional rather than a large factor.
    assert latencies[distances.argmax()] > 1.05 * latencies[distances.argmin()]
