"""Figures 10 and 15 — designer comparison on the row store (DBMS-X).

Paper shape: CliffGuard improves over DBMS-X's advisor by 2–3.2× (avg) and
2.5–5.2× (max) on R1, with smaller margins than on Vertica because the
advisor's workload-compression heuristics resist overfitting; S1 shows
small margins, S2 larger ones.
"""

import pytest

from repro.designers import registry
from repro.harness.experiments import run_designer_comparison
from repro.harness.reporting import format_table


@pytest.mark.parametrize(
    "workload,figure", [("R1", "10"), ("S1", "15a"), ("S2", "15b")]
)
def test_rowstore_designers(benchmark, context, emit, backend, workload, figure):
    outcome = benchmark.pedantic(
        run_designer_comparison,
        args=(context, workload),
        kwargs={"engine": "rowstore", "backend": backend},
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["Designer", "Avg latency (ms)", "Max latency (ms)"],
            [
                [name, outcome.run(name).mean_average_ms, outcome.run(name).mean_max_ms]
                for name in registry.names()
                if name in outcome.runs
            ],
            title=f"Figure {figure}: designers on the row store, {workload}",
        )
    )
    avg = {name: run.mean_average_ms for name, run in outcome.runs.items()}
    assert avg["FutureKnowingDesigner"] < avg["ExistingDesigner"]
    assert avg["ExistingDesigner"] < avg["NoDesign"]
    if workload in ("R1", "S2"):
        assert avg["CliffGuard"] <= avg["ExistingDesigner"] * 1.05
    else:
        assert avg["CliffGuard"] <= avg["ExistingDesigner"] * 1.25
