"""Figure 16 — the latency-aware distance δ_latency at ω = 0.1 and ω = 0.2.

Paper shape: the (δ_latency, latency-ratio) relationship is noisy /
non-monotonic at ω = 0.1 and becomes (relatively) monotonic at ω = 0.2 —
the penalty factor matters.
"""

import numpy as np

from repro.harness.experiments import run_latency_metric_correlation
from repro.harness.reporting import format_table


def spearman(points):
    xs = np.array([x for x, _ in points])
    ys = np.array([y for _, y in points])
    if xs.size < 3:
        return 0.0
    rank_x = np.argsort(np.argsort(xs))
    rank_y = np.argsort(np.argsort(ys))
    return float(np.corrcoef(rank_x, rank_y)[0, 1])


def test_fig16_latency_metric_correlation(benchmark, context, emit):
    curves = benchmark.pedantic(
        run_latency_metric_correlation,
        args=(context,),
        kwargs={"omegas": (0.1, 0.2), "n_probes": 8},
        rounds=1,
        iterations=1,
    )
    for omega, points in sorted(curves.items()):
        emit(
            format_table(
                ["δ_latency", "latency ratio W/W0"],
                [[d, r] for d, r in points],
                title=f"Figure 16: ω = {omega}",
            )
        )
        emit(f"ω={omega}: Spearman rank correlation = {spearman(points):.3f}")
    # Both settings must show a positive distance↔decay relationship at
    # this scale; ω = 0.2 must be at least as monotonic as ω = 0.1.
    assert spearman(curves[0.2]) > 0.3
    assert spearman(curves[0.2]) >= spearman(curves[0.1]) - 0.25
