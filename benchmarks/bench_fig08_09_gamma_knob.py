"""Figures 8 and 9 — effect of the robustness knob Γ (R1 and S2).

Paper shape: CliffGuard approaches the nominal designer as Γ → 0; a very
large Γ makes it overly conservative (eroding its margin) but it still
performs no worse than the nominal designer.
"""

import pytest

from repro.harness.experiments import run_designer_comparison, run_gamma_sweep
from repro.harness.reporting import format_table


@pytest.mark.parametrize("workload,figure", [("R1", 8), ("S2", 9)])
def test_gamma_knob(benchmark, context, emit, backend, workload, figure):
    base_gamma = context.default_gamma(workload)
    gammas = [0.0, base_gamma, 8 * base_gamma]

    def run():
        sweep = run_gamma_sweep(context, workload, gammas=gammas, backend=backend)
        reference = run_designer_comparison(
            context, workload, which=["ExistingDesigner"], backend=backend
        )
        return sweep, reference

    sweep, reference = benchmark.pedantic(run, rounds=1, iterations=1)
    nominal = reference.run("ExistingDesigner")
    rows = [
        [f"Γ = {gamma:.5f}", avg, mx] for gamma, (avg, mx) in sorted(sweep.items())
    ]
    rows.append(["ExistingDesigner", nominal.mean_average_ms, nominal.mean_max_ms])
    emit(
        format_table(
            ["Setting", "Avg latency (ms)", "Max latency (ms)"],
            rows,
            title=f"Figure {figure}: robustness knob sweep on {workload}",
        )
    )

    # Γ = 0 degenerates to the nominal designer (Section 3).
    zero_avg, _ = sweep[0.0]
    assert zero_avg == pytest.approx(nominal.mean_average_ms, rel=0.05)
    # Even a poor (8×) Γ does not make CliffGuard much worse than nominal
    # (Section 6.5's "no worse than the nominal designer" finding).
    big_avg, _ = sweep[8 * base_gamma]
    assert big_avg <= nominal.mean_average_ms * 1.35
