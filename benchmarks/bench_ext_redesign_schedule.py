"""Extension — re-design frequency (the paper's operational-cost claim).

Claim (d) of the introduction: a robust design reduces operational cost by
requiring less frequent re-designs.  We replay R1 re-designing every
window vs every other window, for the nominal designer and CliffGuard, and
compare how much latency each designer loses when its designs must serve
longer.  The (designer, period) grid fans out over the execution backend
selected by ``REPRO_BACKEND``/``REPRO_JOBS``.
"""

from repro.harness.experiments import run_schedule_comparison
from repro.harness.reporting import format_table


def test_extension_redesign_frequency(benchmark, context, emit, backend):
    results = benchmark.pedantic(
        run_schedule_comparison,
        args=(context, "R1"),
        kwargs={
            "everies": (1, 2),
            "designers": ("ExistingDesigner", "CliffGuard"),
            "iterations": 3,
            "backend": backend,
        },
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["Designer", "Re-design every", "Avg latency (ms)", "Re-designs", "Deploy (s)"],
            [
                [
                    label,
                    f"{every} window(s)",
                    outcome.mean_average_ms,
                    outcome.redesign_count,
                    outcome.total_deployment_seconds,
                ]
                for (label, every), outcome in results.items()
            ],
            title="Extension: latency vs re-design frequency (R1)",
        )
    )

    # Halving the re-design frequency must cut deployment cost…
    assert (
        results[("ExistingDesigner", 2)].total_deployment_seconds
        < results[("ExistingDesigner", 1)].total_deployment_seconds
    )
    # …and the robust designer must tolerate the staleness at least as
    # well as the nominal one (relative degradation no worse).
    nominal_penalty = results[("ExistingDesigner", 2)].mean_average_ms / max(
        results[("ExistingDesigner", 1)].mean_average_ms, 1e-9
    )
    robust_penalty = results[("CliffGuard", 2)].mean_average_ms / max(
        results[("CliffGuard", 1)].mean_average_ms, 1e-9
    )
    emit(
        f"staleness penalty: nominal {nominal_penalty:.2f}x, "
        f"CliffGuard {robust_penalty:.2f}x (lower is better)"
    )
    assert robust_penalty <= nominal_penalty * 1.15
