"""Extension — re-design frequency (the paper's operational-cost claim).

Claim (d) of the introduction: a robust design reduces operational cost by
requiring less frequent re-designs.  We replay R1 re-designing every
window vs every other window, for the nominal designer and CliffGuard, and
compare how much latency each designer loses when its designs must serve
longer.
"""

from repro.core.cliffguard import CliffGuard
from repro.designers.columnar_nominal import ColumnarNominalDesigner
from repro.harness.reporting import format_table
from repro.harness.scheduler import PeriodicPolicy, scheduled_replay


def test_extension_redesign_frequency(benchmark, context, emit):
    def run():
        adapter = context.columnar_adapter()
        nominal = ColumnarNominalDesigner(adapter)
        windows = context.trace_windows("R1")
        trace = context.trace("R1")
        gamma = context.default_gamma("R1")
        results = {}
        for label, make in (
            ("nominal", lambda sampler: nominal),
            (
                "CliffGuard",
                lambda sampler: CliffGuard(
                    nominal, adapter, sampler, gamma,
                    n_samples=context.scale.n_samples, max_iterations=3,
                ),
            ),
        ):
            for every in (1, 2):
                sampler = context.sampler()
                designer = make(sampler)

                def refresh(i, windows=windows, sampler=sampler):
                    start, _ = windows[i].span_days
                    sampler.set_pool([q for q in trace if q.timestamp < start])

                outcome = scheduled_replay(
                    windows,
                    designer,
                    adapter,
                    PeriodicPolicy(every=every),
                    before_design=refresh,
                )
                results[(label, every)] = outcome
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["Designer", "Re-design every", "Avg latency (ms)", "Re-designs", "Deploy (s)"],
            [
                [
                    label,
                    f"{every} window(s)",
                    outcome.mean_average_ms,
                    outcome.redesign_count,
                    outcome.total_deployment_seconds,
                ]
                for (label, every), outcome in results.items()
            ],
            title="Extension: latency vs re-design frequency (R1)",
        )
    )

    # Halving the re-design frequency must cut deployment cost…
    assert (
        results[("nominal", 2)].total_deployment_seconds
        < results[("nominal", 1)].total_deployment_seconds
    )
    # …and the robust designer must tolerate the staleness at least as
    # well as the nominal one (relative degradation no worse).
    nominal_penalty = results[("nominal", 2)].mean_average_ms / max(
        results[("nominal", 1)].mean_average_ms, 1e-9
    )
    robust_penalty = results[("CliffGuard", 2)].mean_average_ms / max(
        results[("CliffGuard", 1)].mean_average_ms, 1e-9
    )
    emit(
        f"staleness penalty: nominal {nominal_penalty:.2f}x, "
        f"CliffGuard {robust_penalty:.2f}x (lower is better)"
    )
    assert robust_penalty <= nominal_penalty * 1.15
