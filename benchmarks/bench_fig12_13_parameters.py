"""Figures 12 and 13 — CliffGuard's neighborhood sample size and iteration
budget.

Paper shape: ~10 samples already suffice to infer a good descent
direction; the search converges within ~5 iterations (hence the default).
"""

from repro.harness.experiments import run_iteration_sweep, run_sample_size_sweep
from repro.harness.reporting import format_table


def test_fig12_sample_size(benchmark, context, emit):
    results = benchmark.pedantic(
        run_sample_size_sweep,
        args=(context,),
        kwargs={"sample_sizes": (2, 8, 16)},
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["n (samples)", "Avg latency (ms)", "Max latency (ms)"],
            [[n, avg, mx] for n, (avg, mx) in sorted(results.items())],
            title="Figure 12: effect of neighborhood sample size (R1)",
        )
    )
    # More samples never catastrophically hurts; mid-size is adequate.
    avgs = {n: avg for n, (avg, mx) in results.items()}
    assert avgs[16] <= avgs[2] * 1.2


def test_fig13_iterations(benchmark, context, emit):
    results = benchmark.pedantic(
        run_iteration_sweep,
        args=(context,),
        kwargs={"iteration_counts": (0, 2, 5, 10)},
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["iterations", "Avg latency (ms)", "Max latency (ms)"],
            [[k, avg, mx] for k, (avg, mx) in sorted(results.items())],
            title="Figure 13: effect of the iteration budget (R1)",
        )
    )
    avgs = {k: avg for k, (avg, mx) in results.items()}
    # Zero iterations = nominal; a few iterations must not be worse, and
    # beyond ~5 the curve flattens (paper: converges quickly).
    assert avgs[5] <= avgs[0] * 1.05
    assert abs(avgs[10] - avgs[5]) <= max(0.35 * avgs[5], 1.0)
