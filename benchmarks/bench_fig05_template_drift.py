"""Figure 5 — fraction of query mass in shared templates vs window lag.

Paper shape: ~51% shared between consecutive 7-day windows, ~35% for
28-day windows, decaying below 10% beyond ~2.5 months regardless of the
window size.
"""

from repro.harness.experiments import run_fig5
from repro.harness.reporting import format_series


def test_fig5_template_sharing_decay(benchmark, context, emit):
    curves = benchmark.pedantic(
        run_fig5, args=(context,), kwargs={"window_sizes": (7, 14, 21, 28)},
        rounds=1, iterations=1,
    )
    for window_days, points in sorted(curves.items()):
        emit(
            format_series(
                "lag (windows)",
                "shared fraction",
                points,
                title=f"Figure 5: window size = {window_days} days",
            )
        )
    # Shape: sharing decays with lag for every window size.
    for window_days, points in curves.items():
        if len(points) >= 3:
            first = points[0][1]
            last = points[-1][1]
            assert last < first, f"no decay for {window_days}-day windows"
    # Consecutive-window sharing is partial, not total and not zero.
    lag1_7day = curves[7][0][1]
    assert 0.15 <= lag1_7day <= 0.85
