"""Micro-benchmark for the unified cost-evaluation service.

Cold-vs-warm neighborhood evaluation on the F7a configuration (R1 on the
columnar engine at bench scale): the first pass pays one raw cost-model
call per distinct (design, query) pair, the second is served entirely
from the fingerprinted memo cache.  Emits a JSON record so the perf
trajectory can be tracked across commits.
"""

import json
import time

from repro.core.cliffguard import CliffGuard
from repro.designers.columnar_nominal import ColumnarNominalDesigner


def _f7a_parts(context):
    """Adapter, designer stack, and one train window of the F7a setup."""
    adapter = context.columnar_adapter()
    nominal = ColumnarNominalDesigner(adapter)
    windows = context.trace_windows("R1")
    gamma = context.default_gamma("R1")
    index = max(1, len(windows) - 2)
    window = windows[index]
    sampler = context.sampler()
    sampler.set_pool(
        [q for q in context.trace("R1") if q.timestamp < window.span_days[0]]
    )
    return adapter, nominal, sampler, gamma, window


def test_costing_cache_cold_vs_warm(benchmark, context, emit):
    def run():
        adapter, nominal, sampler, gamma, window = _f7a_parts(context)
        service = adapter.costing
        design = nominal.design(window)
        neighborhood = [window] + sampler.sample(
            window, gamma, context.scale.n_samples
        )

        service.clear()
        service.reset_stats()
        started = time.perf_counter()
        cold_reports = service.evaluate_neighborhood([design], neighborhood)[0]
        cold_seconds = time.perf_counter() - started
        cold_stats = service.stats.snapshot()

        started = time.perf_counter()
        warm_reports = service.evaluate_neighborhood([design], neighborhood)[0]
        warm_seconds = time.perf_counter() - started
        warm_stats = service.stats.since(cold_stats)

        return {
            "config": "F7a (R1, columnar)",
            "neighborhood_size": len(neighborhood),
            "distinct_queries": cold_stats.raw_model_calls,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
            "cold_dedup_ratio": cold_stats.dedup_ratio,
            "warm_hit_rate": warm_stats.hit_rate,
            "warm_raw_model_calls": warm_stats.raw_model_calls,
            "identical": all(
                a.per_query_ms == b.per_query_ms
                for a, b in zip(cold_reports, warm_reports)
            ),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("bench_costing_cache: " + json.dumps(result, sort_keys=True))

    assert result["identical"], "cached evaluation must be bit-identical"
    assert result["warm_raw_model_calls"] == 0, "warm pass must be all cache hits"
    assert result["warm_hit_rate"] == 1.0
    assert result["warm_seconds"] <= result["cold_seconds"]
    # Neighbors share queries heavily: batching must collapse duplicates.
    assert result["cold_dedup_ratio"] > 0.0


def test_cliffguard_run_reports_cache_savings(benchmark, context, emit):
    """A full F7a CliffGuard run must issue measurably fewer raw
    cost-model calls than it requests query-cost evaluations."""

    def run():
        adapter, nominal, sampler, gamma, window = _f7a_parts(context)
        adapter.costing.reset_stats()
        designer = CliffGuard(
            nominal,
            adapter,
            sampler,
            gamma,
            n_samples=context.scale.n_samples,
            max_iterations=context.scale.iterations,
        )
        designer.design(window)
        report = designer.last_report
        return {
            "config": "F7a (R1, columnar)",
            "query_cost_calls": report.query_cost_calls,
            "raw_cost_model_calls": report.raw_cost_model_calls,
            "cache_hits": report.cache_hits,
            "savings_ratio": (
                1.0 - report.raw_cost_model_calls / report.query_cost_calls
                if report.query_cost_calls
                else 0.0
            ),
            "final_alpha": report.final_alpha,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("bench_costing_cliffguard: " + json.dumps(result, sort_keys=True))

    assert result["cache_hits"] > 0, "cache hit rate must be reported > 0"
    assert result["raw_cost_model_calls"] < result["query_cost_calls"]
    assert result["savings_ratio"] > 0.25
