"""CliffGuard vs the nominal designer under write-heavy drift (HTAP).

The write-aware cost models charge every physical structure maintenance
proportional to the writes that touch it, so an over-designed hot table
is now a modeled liability, not a free lunch.  This benchmark replays
the mixed read/write workload families — ``HTAP`` (analytics plus an
OLTP write stream), ``ECOMMERCE`` (flash-sale bursts + seasonal write
cycles), and ``OLTP`` (write-majority) — through the Figure-7 designer
comparison and records the robustness gap between CliffGuard and the
drift-blind nominal designer (``ExistingDesigner``): the worst
train→test window is where nominal designs built for last window's
read mix pay for structures the next window's writes must maintain.

Every configuration runs twice — serial and process backend — and the
two window trajectories must be bit-identical (the PR-5 determinism
contract extended to write costing); any divergence is a hard failure.

Output (``BENCH_htap_writes.json``)::

    PYTHONPATH=src python benchmarks/bench_htap_writes.py           # full
    PYTHONPATH=src python benchmarks/bench_htap_writes.py --smoke   # CI leg
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.harness.experiments import (
    ExperimentContext,
    ExperimentScale,
    run_designer_comparison,
)
from repro.parallel import ProcessBackend, SerialBackend
from repro.sql.ast import SelectStatement
from repro.sql.parser import parse

NOMINAL = "ExistingDesigner"
ROBUST = "CliffGuard"

#: (name, workload, scale).  ``skip_transitions=1`` keeps the cold-start
#: window out of the comparison; the remaining transitions all carry
#: drifted write mixes.
FULL_CONFIGS = [
    (
        "htap-drift",
        "HTAP",
        ExperimentScale(
            days=140,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=2,
            legacy_tables=3,
            max_transitions=3,
            skip_transitions=1,
        ),
    ),
    (
        "ecommerce-flash-seasonal",
        "ECOMMERCE",
        ExperimentScale(
            days=140,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=5,
            legacy_tables=3,
            max_transitions=3,
            skip_transitions=1,
        ),
    ),
    (
        "oltp-write-majority",
        "OLTP",
        ExperimentScale(
            days=112,
            window_days=28,
            queries_per_day=12,
            n_samples=4,
            iterations=2,
            seed=7,
            legacy_tables=3,
            max_transitions=2,
            skip_transitions=1,
        ),
    ),
]

SMOKE_CONFIGS = [
    (
        "smoke-htap",
        "HTAP",
        ExperimentScale(
            days=84,
            window_days=28,
            queries_per_day=4,
            n_samples=2,
            iterations=1,
            seed=2,
            legacy_tables=2,
            max_transitions=1,
            skip_transitions=1,
        ),
    ),
]


def _write_share(context: ExperimentContext, workload: str) -> float:
    trace = context.trace(workload)
    writes = sum(1 for q in trace if not isinstance(parse(q.sql), SelectStatement))
    return writes / len(trace)


def _run_windows(run) -> list[dict]:
    return [
        {
            "window_index": w.window_index,
            "average_ms": w.average_ms,
            "max_ms": w.max_ms,
            "design_price_bytes": w.design_price_bytes,
            "structure_count": w.structure_count,
        }
        for w in run.windows
    ]


def _comparison(workload: str, scale: ExperimentScale, backend) -> dict:
    context = ExperimentContext(scale)
    result = run_designer_comparison(
        context, workload, which=[NOMINAL, ROBUST], backend=backend
    )
    return {name: _run_windows(result.run(name)) for name in (NOMINAL, ROBUST)}


def _summary(windows: list[dict]) -> dict:
    avgs = [w["average_ms"] for w in windows]
    return {
        "mean_average_ms": sum(avgs) / len(avgs),
        "worst_window_ms": max(avgs),
        "mean_price_bytes": sum(w["design_price_bytes"] for w in windows)
        / len(windows),
    }


def run(configs, out_path: Path) -> dict:
    results = []
    for name, workload, scale in configs:
        started = time.perf_counter()
        serial = _comparison(workload, scale, SerialBackend())
        with ProcessBackend(jobs=2) as pool:
            process = _comparison(workload, scale, pool)
        if serial != process:
            raise SystemExit(f"{name}: serial and process backends diverged")
        write_share = _write_share(ExperimentContext(scale), workload)
        nominal, robust = _summary(serial[NOMINAL]), _summary(serial[ROBUST])
        worst_gap_pct = (
            (nominal["worst_window_ms"] - robust["worst_window_ms"])
            / nominal["worst_window_ms"]
            * 100.0
        )
        record = {
            "name": name,
            "workload": workload,
            "write_share": write_share,
            "transitions": len(serial[NOMINAL]),
            "nominal": nominal,
            "cliffguard": robust,
            "worst_window_gap_pct": worst_gap_pct,
            "windows": serial,
            "backends_bit_identical": True,
            "seconds": time.perf_counter() - started,
        }
        results.append(record)
        print(
            f"{name}: write_share {write_share:.2f}  "
            f"nominal worst {nominal['worst_window_ms']:.2f}ms  "
            f"cliffguard worst {robust['worst_window_ms']:.2f}ms  "
            f"gap {worst_gap_pct:+.1f}%  ({record['seconds']:.1f}s)"
        )
    payload = {"benchmark": "htap_writes", "configs": results}
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes: exercises determinism and the JSON format only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_htap_writes.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    out = args.out
    if args.smoke and out.name == "BENCH_htap_writes.json":
        # The smoke leg must not clobber the checked-in full-run record.
        out = out.with_name("BENCH_htap_writes.smoke.json")
    payload = run(configs, out)
    if not args.smoke:
        best = max(c["worst_window_gap_pct"] for c in payload["configs"])
        if best <= 0:
            print(
                "WARNING: no configuration shows a CliffGuard robustness "
                "gap over the nominal designer"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
