"""Figure 11 — effect of the distance function on CliffGuard (R1).

Paper shape: Euc-latency is best; Euc-separate ≈ Euc-union (SWGO); the
where/group clauses are the most informative single clauses; the order-by
clause is the least informative.
"""

from repro.harness.experiments import run_distance_ablation
from repro.harness.reporting import format_table


def test_fig11_distance_ablation(benchmark, context, emit):
    results = benchmark.pedantic(
        run_distance_ablation, args=(context,), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["Distance metric", "Avg latency (ms)", "Max latency (ms)"],
            [[label, avg, mx] for label, (avg, mx) in results.items()],
            title="Figure 11: CliffGuard under different distance metrics (R1)",
        )
    )
    # Every variant produces a functioning designer (non-degenerate costs).
    for label, (avg, mx) in results.items():
        assert 0 < avg <= mx, label
    # The full-union metric must not lose badly to any single-clause one
    # (the paper's default-choice justification).
    full = results["Euc-union (SWGO)"][0]
    single_best = min(
        results[k][0]
        for k in ("Euc-union (S)", "Euc-union (W)", "Euc-union (G)", "Euc-union (O)")
    )
    assert full <= single_best * 1.3
