"""Tests for the online tuning daemon: hot-swap atomicity and liveness.

Three layers:

* unit — :class:`ActiveDesign` epoch fencing under concurrent pins and
  swaps, :class:`BackgroundJob` handles over every backend;
* end-to-end — a drifting stream across several windows fires online
  re-designs on serial, thread, and process backends; no query is
  dropped and every query is priced against exactly one design epoch;
* degradation — a crashing or slow background re-design leaves the old
  design serving (``serve.degraded``), and the ``serve.*`` event family
  lands in the JSONL trace.
"""

import io
import json
import threading
import time

import pytest

import repro
import repro.serve.daemon as daemon_module
from repro import QueueSource, RunConfig, ServeConfig, TraceSource
from repro.obs import RunTracer, set_tracer
from repro.parallel import SerialBackend, ThreadBackend
from repro.parallel.jobs import BackgroundJob
from repro.serve.handle import ActiveDesign

# Tiny but non-trivial: 70 days / 14-day windows = 5 windows (4 interior
# boundaries), drifting enough for the drift policy to fire repeatedly.
TINY = dict(
    workload="R1",
    days=70,
    window_days=14,
    queries_per_day=4,
    n_samples=2,
    iterations=1,
    legacy_tables=5,
    backend=None,
)


def tiny_session(serve=None, **overrides):
    run = RunConfig(**{**TINY, **overrides})
    cfg = ServeConfig(swap_mode="boundary", min_window_queries=4)
    if serve:
        cfg = cfg.with_overrides(**serve)
    return repro.serve_session(run, cfg)


# -- ActiveDesign ------------------------------------------------------------------


class TestActiveDesign:
    def test_pin_returns_current_pair(self):
        handle = ActiveDesign("d0")
        with handle.pin() as (epoch, design):
            assert (epoch, design) == (0, "d0")
            assert handle.in_flight(0) == 1
        assert handle.in_flight() == 0

    def test_swap_bumps_epoch_and_returns_both_pairs(self):
        handle = ActiveDesign("d0")
        retired, installed = handle.swap("d1")
        assert (retired.epoch, retired.design) == (0, "d0")
        assert (installed.epoch, installed.design) == (1, "d1")
        assert handle.epoch == 1
        assert handle.swaps == 1

    def test_swap_does_not_invalidate_pins(self):
        handle = ActiveDesign("d0")
        with handle.pin() as (epoch, design):
            handle.swap("d1")
            # The pinned pair is immutable: mid-costing swaps are invisible.
            assert (epoch, design) == (0, "d0")
            assert handle.in_flight(0) == 1
            assert handle.epoch == 1
        assert handle.in_flight(0) == 0

    def test_wait_idle_blocks_until_the_epoch_drains(self):
        handle = ActiveDesign("d0")
        release = threading.Event()

        def hold():
            with handle.pin():
                release.wait(5.0)

        worker = threading.Thread(target=hold)
        worker.start()
        while handle.in_flight(0) == 0:
            time.sleep(0.001)
        handle.swap("d1")
        assert not handle.wait_idle(0, timeout=0.05)  # still pinned
        release.set()
        assert handle.wait_idle(0, timeout=5.0)
        worker.join()

    def test_restore_refuses_with_pins_in_flight(self):
        handle = ActiveDesign("d0")
        with handle.pin():
            with pytest.raises(RuntimeError, match="pinned"):
                handle.restore("d9", 9)
        handle.restore("d9", 9)
        assert handle.snapshot() == (9, "d9")

    def test_concurrent_pins_always_see_consistent_pairs(self):
        """The atomicity hammer: swaps race pins; a pin must never
        observe a torn (epoch, design) combination."""
        designs = {epoch: f"design-{epoch}" for epoch in range(50)}
        handle = ActiveDesign(designs[0])
        stop = threading.Event()
        torn: list[tuple] = []

        def pinner():
            while not stop.is_set():
                with handle.pin() as (epoch, design):
                    if designs[epoch] != design:
                        torn.append((epoch, design))

        threads = [threading.Thread(target=pinner) for _ in range(4)]
        for thread in threads:
            thread.start()
        for epoch in range(1, 50):
            handle.swap(designs[epoch])
            time.sleep(0.001)
        stop.set()
        for thread in threads:
            thread.join()
        assert torn == []
        assert handle.epoch == 49
        assert handle.in_flight() == 0


# -- BackgroundJob ------------------------------------------------------------------


def _double(task):
    return task * 2


def _boom(task):
    raise RuntimeError(f"boom on {task}")


class TestBackgroundJob:
    def test_completed_and_failed_factories(self):
        done = BackgroundJob.completed(42)
        assert done.done() and done.result() == 42 and done.exception() is None
        failed = BackgroundJob.failed(RuntimeError("x"))
        assert failed.done()
        with pytest.raises(RuntimeError):
            failed.result()

    def test_serial_backend_submit_runs_inline(self):
        job = SerialBackend().submit(_double, 21)
        assert job.done()
        assert job.result() == 42

    def test_serial_backend_submit_captures_errors(self):
        job = SerialBackend().submit(_boom, "t")
        assert job.done()
        assert isinstance(job.exception(), RuntimeError)

    def test_thread_backend_submit_runs_in_background(self):
        with ThreadBackend(jobs=1) as backend:
            job = backend.submit(_double, 10)
            assert job.wait(5.0)
            assert job.result() == 20
            assert job.exception() is None

    def test_thread_backend_submit_captures_errors(self):
        with ThreadBackend(jobs=1) as backend:
            job = backend.submit(_boom, "t")
            assert job.wait(5.0)
            with pytest.raises(RuntimeError, match="boom"):
                job.result()

    def test_cancel_of_a_done_job_is_a_noop(self):
        job = BackgroundJob.completed(1)
        assert not job.cancel()
        assert job.result() == 1


# -- end-to-end ---------------------------------------------------------------------


def check_invariants(outcome):
    """The serve guarantees every e2e test asserts."""
    # Zero dropped queries: every ingested query was priced exactly once.
    assert outcome.dropped == 0
    assert [p.position for p in outcome.priced] == list(range(outcome.position))
    # Per-query epoch consistency: epochs never run ahead of the swap
    # count and never go backwards.
    epochs = [p.epoch for p in outcome.priced]
    assert all(a <= b for a, b in zip(epochs, epochs[1:]))
    assert max(epochs) <= outcome.swaps
    assert outcome.final_epoch == outcome.swaps


class TestServeEndToEnd:
    def test_online_redesigns_and_swaps(self):
        outcome = tiny_session().serve()
        assert outcome.position == 280
        assert outcome.windows >= 3
        assert outcome.triggers >= 1
        assert outcome.redesigns_launched >= 1
        assert outcome.redesigns_failed == 0
        assert outcome.swaps >= 1
        assert outcome.final_epoch >= 1
        assert outcome.structure_count > 0
        assert len(outcome.final_design_digest) == 16
        check_invariants(outcome)
        # Queries arriving before the first swap are priced on epoch 0,
        # later ones on the swapped-in designs.
        epochs = {p.epoch for p in outcome.priced}
        assert 0 in epochs and len(epochs) >= 2

    def test_queue_source_matches_trace_source(self):
        traced = tiny_session().serve()
        source = QueueSource()
        session = tiny_session(serve=dict(source=source))
        for query in session.context.trace("R1"):
            source.put_nowait(query)
        source.close()
        queued = session.serve()
        check_invariants(queued)
        assert queued.position == traced.position
        assert queued.swaps == traced.swaps
        assert queued.final_design_digest == traced.final_design_digest
        assert [(p.position, p.epoch, p.cost_ms) for p in queued.priced] == [
            (p.position, p.epoch, p.cost_ms) for p in traced.priced
        ]

    def test_thread_backend_boundary_mode_is_deterministic(self):
        serial = tiny_session().serve()
        threaded = tiny_session(backend="thread", jobs=2).serve()
        check_invariants(threaded)
        assert threaded.final_design_digest == serial.final_design_digest
        assert threaded.swaps == serial.swaps

    def test_process_backend_end_to_end(self):
        outcome = tiny_session(backend="process", jobs=2).serve()
        check_invariants(outcome)
        assert outcome.swaps >= 1
        # Boundary mode: the background process lands on the same design
        # as the serial run (the task tuple fully determines the result).
        assert outcome.final_design_digest == tiny_session().serve().final_design_digest

    def test_periodic_policy_fires_every_window(self):
        outcome = tiny_session(serve=dict(policy="periodic", every=1)).serve()
        check_invariants(outcome)
        assert outcome.triggers == outcome.windows
        assert outcome.swaps >= 1

    def test_max_queries_stops_early(self):
        outcome = tiny_session(serve=dict(max_queries=100)).serve()
        assert outcome.position == 100
        check_invariants(outcome)

    def test_record_queries_off_drops_the_log(self):
        outcome = tiny_session(serve=dict(record_queries=False)).serve()
        assert outcome.priced is None
        assert outcome.dropped == 0


# -- degradation --------------------------------------------------------------------


def _failing_redesign(task):
    raise RuntimeError("designer crashed")


def _slow_redesign(task):
    time.sleep(1.0)
    return None, 1.0


class TestDegradation:
    def test_crashed_redesign_keeps_the_old_design_serving(self, monkeypatch):
        monkeypatch.setattr(daemon_module, "_redesign_task", _failing_redesign)
        outcome = tiny_session().serve()
        # Every trigger launched, every launch failed, nothing swapped —
        # and ingestion never stalled.
        assert outcome.redesigns_launched >= 1
        assert outcome.redesigns_failed == outcome.redesigns_launched
        assert outcome.swaps == 0
        assert outcome.final_epoch == 0
        assert outcome.dropped == 0
        assert all(p.epoch == 0 for p in outcome.priced)
        # The policy kept retrying at later boundaries.
        assert outcome.redesigns_launched >= 2

    def test_slow_redesign_times_out_and_degrades(self, monkeypatch):
        monkeypatch.setattr(daemon_module, "_redesign_task", _slow_redesign)
        # drain=False: whatever is still in flight at stream end is
        # cancelled, not awaited — a too-slow re-design must never block
        # shutdown (nor ever swap in).
        outcome = tiny_session(
            backend="thread",
            jobs=1,
            serve=dict(swap_mode="async", redesign_timeout=0.05, drain=False),
        ).serve()
        assert outcome.redesigns_failed >= 1
        assert outcome.swaps == 0
        assert outcome.dropped == 0
        assert all(p.epoch == 0 for p in outcome.priced)


# -- observability ------------------------------------------------------------------


class TestServeEvents:
    @pytest.fixture
    def events(self):
        buffer = io.StringIO()
        previous = set_tracer(RunTracer(buffer, clock=lambda: 0.0))
        try:
            tiny_session().serve()
        finally:
            set_tracer(previous)
        return [json.loads(line) for line in buffer.getvalue().splitlines()]

    def test_serve_event_family_is_emitted(self, events):
        kinds = {event["event"] for event in events}
        assert {
            "serve.start",
            "serve.window",
            "serve.trigger",
            "serve.redesign",
            "serve.swap",
            "serve.stop",
        } <= kinds

    def test_start_and_stop_carry_run_identity(self, events):
        start = next(e for e in events if e["event"] == "serve.start")
        assert start["workload"] == "R1"
        assert start["swap_mode"] == "boundary"
        assert start["resumed"] is False
        stop = next(e for e in events if e["event"] == "serve.stop")
        assert stop["position"] == 280
        assert stop["swaps"] >= 1
        assert len(stop["digest"]) == 16

    def test_swap_events_fence_epochs(self, events):
        swaps = [e for e in events if e["event"] == "serve.swap"]
        assert swaps
        for swap in swaps:
            assert swap["epoch"] == swap["retired_epoch"] + 1
            assert swap["stale_queries"] >= 0
            assert swap["structures"] > 0

    def test_degraded_event_on_failure(self, monkeypatch):
        monkeypatch.setattr(daemon_module, "_redesign_task", _failing_redesign)
        buffer = io.StringIO()
        previous = set_tracer(RunTracer(buffer, clock=lambda: 0.0))
        try:
            tiny_session().serve()
        finally:
            set_tracer(previous)
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        degraded = [e for e in events if e["event"] == "serve.degraded"]
        assert degraded
        assert "designer crashed" in degraded[0]["error"]
        assert not any(e["event"] == "serve.swap" for e in events)

    def test_serve_metrics_are_registered(self):
        from repro.obs import get_metrics

        get_metrics().reset()
        outcome = tiny_session().serve()
        snapshot = get_metrics().snapshot()
        assert snapshot["serve.ingested"] == outcome.position
        assert snapshot["serve.windows"] == outcome.windows
        assert snapshot["serve.swaps"] == outcome.swaps
        assert snapshot["serve.epoch"] == outcome.final_epoch
