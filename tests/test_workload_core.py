"""Tests for workload queries, containers, and windowing."""

import pytest

from repro.workload.query import WorkloadQuery
from repro.workload.windows import shared_template_fraction, split_windows
from repro.workload.workload import SEPARATE, Workload, template_key


def q(sql: str, day: float = 0.0, freq: float = 1.0) -> WorkloadQuery:
    return WorkloadQuery(sql=sql, timestamp=day, frequency=freq)


class TestWorkloadQuery:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            WorkloadQuery(sql="SELECT a FROM t", frequency=0)

    def test_template_extraction(self):
        query = q("SELECT t.a FROM t WHERE t.b = 1")
        assert query.template.union == frozenset({"t.a", "t.b"})

    def test_with_frequency(self):
        query = q("SELECT t.a FROM t", day=3.5)
        copy = query.with_frequency(5.0)
        assert copy.frequency == 5.0
        assert copy.timestamp == 3.5
        assert copy.sql == query.sql


class TestWorkload:
    def test_total_weight(self):
        workload = Workload([q("SELECT t.a FROM t", freq=2), q("SELECT t.b FROM t", freq=3)])
        assert workload.total_weight == 5.0

    def test_collapsed_merges_identical_sql(self):
        workload = Workload([q("SELECT t.a FROM t"), q("SELECT t.a FROM t"), q("SELECT t.b FROM t")])
        collapsed = workload.collapsed()
        assert len(collapsed) == 2
        weights = collapsed.normalized_weights()
        assert weights["SELECT t.a FROM t"] == pytest.approx(2 / 3)

    def test_template_vector_normalized(self):
        workload = Workload(
            [q("SELECT t.a FROM t", freq=3), q("SELECT t.b FROM t", freq=1)]
        )
        vector = workload.template_vector()
        assert sum(vector.values()) == pytest.approx(1.0)
        assert vector[frozenset({"t.a"})] == pytest.approx(0.75)

    def test_same_template_different_literals_share_coordinate(self):
        workload = Workload(
            [
                q("SELECT t.a FROM t WHERE t.b = 1"),
                q("SELECT t.a FROM t WHERE t.b = 2"),
            ]
        )
        assert len(workload.template_vector()) == 1

    def test_empty_templates_excluded(self):
        workload = Workload([q("SELECT COUNT(*) FROM t"), q("SELECT t.a FROM t")])
        assert len(workload.template_vector()) == 1

    def test_separate_vector_uses_clause_tuples(self):
        workload = Workload([q("SELECT t.a FROM t WHERE t.b = 1")])
        key = next(iter(workload.template_vector(SEPARATE)))
        assert isinstance(key, tuple) and len(key) == 4

    def test_clause_restriction_changes_keys(self):
        first = q("SELECT t.a FROM t WHERE t.b = 1")
        second = q("SELECT t.a FROM t WHERE t.c = 1")
        workload = Workload([first, second])
        assert len(workload.template_vector(("select",))) == 1
        assert len(workload.template_vector(("select", "where"))) == 2

    def test_query_weight(self):
        workload = Workload([q("SELECT t.a FROM t", freq=1), q("SELECT t.b FROM t", freq=3)])
        assert workload.query_weight("SELECT t.b FROM t") == pytest.approx(0.75)
        assert workload.query_weight("missing") == 0.0

    def test_reweighted(self):
        workload = Workload([q("SELECT t.a FROM t"), q("SELECT t.b FROM t")])
        rew = workload.reweighted({"SELECT t.a FROM t": 5.0})
        assert len(rew) == 1
        assert rew.total_weight == 5.0

    def test_merged_with(self):
        first = Workload([q("SELECT t.a FROM t")])
        second = Workload([q("SELECT t.b FROM t")])
        assert len(first.merged_with(second)) == 2

    def test_span_days(self):
        workload = Workload([q("SELECT t.a FROM t", day=2.0), q("SELECT t.b FROM t", day=9.5)])
        assert workload.span_days == (2.0, 9.5)

    def test_template_key_helper(self):
        template = q("SELECT t.a FROM t WHERE t.b = 1").template
        assert template_key(template, ("select",)) == frozenset({"t.a"})
        assert template_key(template, SEPARATE)[1] == frozenset({"t.b"})


class TestWindows:
    def test_split_counts(self):
        queries = [q("SELECT t.a FROM t", day=d) for d in (0.5, 1.5, 8.0, 15.0)]
        windows = split_windows(queries, 7)
        assert [len(w) for w in windows] == [2, 1, 1]

    def test_empty_interior_windows_kept(self):
        queries = [q("SELECT t.a FROM t", day=d) for d in (0.0, 20.0)]
        windows = split_windows(queries, 7)
        assert len(windows) == 3
        assert len(windows[1]) == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            split_windows([], 0)

    def test_empty_input(self):
        assert split_windows([], 7) == []

    def test_shared_fraction_identical_windows(self):
        window = Workload([q("SELECT t.a FROM t")])
        assert shared_template_fraction(window, window) == pytest.approx(1.0)

    def test_shared_fraction_disjoint(self):
        first = Workload([q("SELECT t.a FROM t")])
        second = Workload([q("SELECT t.b FROM t")])
        assert shared_template_fraction(first, second) == 0.0

    def test_shared_fraction_is_mass_weighted(self):
        first = Workload(
            [q("SELECT t.a FROM t", freq=3), q("SELECT t.b FROM t", freq=1)]
        )
        second = Workload([q("SELECT t.a FROM t")])
        assert shared_template_fraction(first, second) == pytest.approx(0.75)
