"""Tests for the ``repro.api`` facade, the designer registry, and the
deprecation shims on the old entry points."""

import dataclasses

import pytest

from repro import DesignOutcome, RobustDesignSession, RunConfig
from repro.designers import registry
from repro.designers.no_design import NoDesign
from repro.parallel import ProcessBackend, SerialBackend
from repro.parallel.backends import ENV_BACKEND, ENV_JOBS

TINY = dict(
    days=56,
    window_days=28,
    queries_per_day=4,
    n_samples=2,
    iterations=1,
    legacy_tables=5,
    max_transitions=1,
    skip_transitions=0,
    seed=7,
)


class TestRunConfig:
    def test_defaults_valid(self):
        config = RunConfig()
        assert config.workload == "R1"
        assert config.backend == "auto"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"workload": "XX"},
            {"engine": "gpu"},
            {"days": 0},
            {"days": 20, "window_days": 28},
            {"n_samples": 0},
            {"iterations": -1},
            {"gamma": -0.5},
            {"legacy_tables": -1},
            {"max_transitions": 0},
            {"skip_transitions": -1},
            {"budget_fraction": 0.0},
            {"budget_fraction": 1.5},
            {"backend": "gpu"},
            {"backend": 42},
            {"jobs": 0},
            {"task_timeout": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            RunConfig(**overrides)

    def test_frozen(self):
        config = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.days = 10

    def test_with_overrides_revalidates(self):
        config = RunConfig(days=196)
        assert config.with_overrides(days=84).days == 84
        with pytest.raises(ValueError):
            config.with_overrides(days=-1)

    def test_scale_mapping(self):
        config = RunConfig(**TINY)
        scale = config.scale()
        assert scale.days == TINY["days"]
        assert scale.n_samples == TINY["n_samples"]
        assert scale.seed == TINY["seed"]
        assert scale.max_transitions == TINY["max_transitions"]

    def test_backend_instance_accepted(self):
        config = RunConfig(backend=SerialBackend())
        assert isinstance(config.backend, SerialBackend)


class TestSession:
    def test_design_deterministic_across_sessions(self):
        def fingerprint():
            with RobustDesignSession(RunConfig(**TINY, backend="serial")) as session:
                outcome = session.design()
                assert isinstance(outcome, DesignOutcome)
                assert outcome.price_bytes > 0
                assert outcome.report is not None
                assert outcome.report.backend == "serial"
                return sorted(str(s) for s in outcome.structures)

        assert fingerprint() == fingerprint()

    def test_overrides_via_kwargs(self):
        session = RobustDesignSession(RunConfig(**TINY), seed=9)
        assert session.config.seed == 9
        session = RobustDesignSession(**TINY)
        assert session.config.days == TINY["days"]

    def test_designer_builds_from_registry(self):
        with RobustDesignSession(RunConfig(**TINY, backend=None)) as session:
            designer, sampler = session.designer("NoDesign")
            assert isinstance(designer, NoDesign)
            assert sampler is None
            cliffguard, cg_sampler = session.designer("CliffGuard")
            assert cliffguard.n_samples == TINY["n_samples"]
            assert cg_sampler is not None
        with pytest.raises(ValueError):
            session.designer("NotADesigner")

    def test_auto_backend_resolves_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "process")
        monkeypatch.setenv(ENV_JOBS, "2")
        with RobustDesignSession(RunConfig(**TINY)) as session:
            assert isinstance(session.backend, ProcessBackend)
            assert session.backend.jobs == 2

        monkeypatch.delenv(ENV_BACKEND)
        monkeypatch.delenv(ENV_JOBS)
        with RobustDesignSession(RunConfig(**TINY)) as session:
            assert session.backend is None

    def test_gamma_defaults_to_observed_drift(self):
        with RobustDesignSession(RunConfig(**TINY)) as session:
            assert session.gamma > 0
        with RobustDesignSession(RunConfig(**TINY, gamma=0.123)) as session:
            assert session.gamma == 0.123


class TestRegistry:
    def test_canonical_order(self):
        assert registry.names() == [
            "NoDesign",
            "FutureKnowingDesigner",
            "ExistingDesigner",
            "MajorityVoteDesigner",
            "OptimalLocalSearchDesigner",
            "CliffGuard",
            "BanditDesigner",
        ]

    def test_duplicate_registration_rejected(self):
        factory = registry._FACTORIES["NoDesign"]
        with pytest.raises(ValueError):
            registry.register("NoDesign", factory)
        registry.register("NoDesign", factory, replace=True)

    def test_unknown_designer_rejected(self):
        with pytest.raises(ValueError, match="unknown designer"):
            registry.get("NotADesigner", None, None, 0.0)

    def test_sampler_required_for_neighborhood_designers(self):
        with pytest.raises(ValueError, match="make_sampler"):
            registry.get("CliffGuard", None, None, 0.0, make_sampler=None)


class TestDeprecations:
    def test_designer_order_warns(self):
        import repro.harness.experiments as experiments

        with pytest.warns(DeprecationWarning, match="DESIGNER_ORDER"):
            order = experiments.DESIGNER_ORDER
        assert order == registry.names()

    def test_build_designers_warns(self):
        from repro.harness.experiments import (
            ExperimentContext,
            build_designers,
        )

        config = RunConfig(**TINY)
        context = ExperimentContext(config.scale())
        adapter = context.columnar_adapter()
        from repro.designers.columnar_nominal import ColumnarNominalDesigner

        nominal = ColumnarNominalDesigner(adapter)
        with pytest.warns(DeprecationWarning, match="build_designers"):
            designers, samplers = build_designers(
                context, adapter, nominal, 0.01, which=["NoDesign", "CliffGuard"]
            )
        assert set(designers) == {"NoDesign", "CliffGuard"}
        assert len(samplers) == 1


class TestObservabilityKnobs:
    def test_invalid_trace_path_and_metrics_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(trace_path=123)
        with pytest.raises(ValueError):
            RunConfig(metrics="not a registry")

    def test_trace_path_writes_parseable_events(self, tmp_path):
        import json

        trace_path = tmp_path / "session.jsonl"
        config = RunConfig(**TINY, backend="serial", trace_path=trace_path)
        with RobustDesignSession(config) as session:
            session.design()
        events = [json.loads(line) for line in trace_path.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert "design_start" in names and "design_finish" in names
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    def test_metrics_registry_receives_costing_gauges(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        config = RunConfig(**TINY, backend="serial", metrics=registry)
        with RobustDesignSession(config) as session:
            session.design()
        snap = registry.snapshot()
        assert snap["costing.query_requests"] > 0
        assert 0.0 <= snap["costing.hit_rate"] <= 1.0

    def test_no_tracer_leaks_without_trace_path(self):
        from repro.obs import NULL_TRACER, tracer

        with RobustDesignSession(RunConfig(**TINY, backend="serial")) as session:
            session.design()
            assert tracer() is NULL_TRACER
        assert tracer() is NULL_TRACER


class TestCheckpointKnobs:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"checkpoint_path": 123},
            {"checkpoint_every": 0},
            {"checkpoint_every": -3},
            {"resume": True},  # resume without a checkpoint path
        ],
    )
    def test_invalid_checkpoint_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            RunConfig(**overrides)

    def test_no_checkpointer_without_path(self):
        session = RobustDesignSession(RunConfig(**TINY))
        assert session.checkpointer is None

    def test_checkpointer_built_lazily_from_config(self, tmp_path):
        path = tmp_path / "run.ckpt"
        config = RunConfig(**TINY, checkpoint_path=path, checkpoint_every=2)
        session = RobustDesignSession(config)
        checkpointer = session.checkpointer
        assert checkpointer is session.checkpointer  # cached
        assert checkpointer.every == 2
        assert not checkpointer.resume

    def test_session_design_writes_and_resumes(self, tmp_path):
        path = tmp_path / "design.ckpt"
        with RobustDesignSession(
            RunConfig(**TINY, backend="serial", checkpoint_path=path)
        ) as session:
            first = session.design()
        assert path.exists()
        with RobustDesignSession(
            RunConfig(**TINY, backend="serial", checkpoint_path=path, resume=True)
        ) as session:
            resumed = session.design()
        assert sorted(str(s) for s in resumed.structures) == sorted(
            str(s) for s in first.structures
        )
        assert resumed.price_bytes == first.price_bytes
